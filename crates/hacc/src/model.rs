//! Per-simulation catalog model.
//!
//! A [`SimModel`] draws all per-halo latent variables once (masses, growth
//! rates, positions, scatter deviates, satellite populations) and then
//! produces every snapshot's catalogs as a *pure function of the step
//! number*. This gives three properties the evaluation depends on:
//!
//! 1. halo/galaxy tags are stable across timesteps, so tracking questions
//!    reduce to joins on `fof_halo_tag`;
//! 2. mass histories are smooth and monotone, so "change in mass over
//!    time" plots look physical;
//! 3. snapshot generation is embarrassingly parallel across steps.

use crate::cosmology::{scale_factor, Cosmology};
use crate::genio::GenioColumn;
use crate::params::SubgridParams;
use crate::physics;
use crate::rng::{lognormal_dex, normal, rng_for};
use crate::schema::EntityKind;
use infera_frame::DataFrame;
use rand::Rng;

/// Latent satellite-galaxy variables.
#[derive(Debug, Clone)]
struct SatSeed {
    /// Scale factor at which the satellite falls in and appears.
    infall_a: f64,
    /// Stellar mass as a fraction of the central's.
    mass_frac: f64,
    /// Positional offset direction (unit-ish vector) and radial factor.
    offset: [f64; 3],
    /// Velocity offset in units of the halo velocity dispersion.
    vel_offset: [f64; 3],
}

/// Latent per-halo variables.
#[derive(Debug, Clone)]
struct HaloSeed {
    tag: i64,
    /// z=0 FoF mass including the parameter-dependent amplitude.
    m_final: f64,
    /// Growth-history shape parameter.
    beta: f64,
    /// Comoving position at a = 0.5 (Mpc/h).
    pos: [f64; 3],
    /// Peculiar velocity (km/s).
    vel: [f64; 3],
    /// Per-halo N(0,1) deviate for SMHM scatter (fixed for all time).
    smhm_dev: f64,
    /// Log-normal deviate for the gas fraction.
    fgas_scatter: f64,
    /// Concentration deviate.
    conc_scatter: f64,
    sats: Vec<SatSeed>,
}

/// Synthetic-simulation configuration shared by all members of an
/// ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of halos seeded at z=0 (catalog rows grow toward this).
    pub n_halos: usize,
    /// Periodic box size (Mpc/h).
    pub box_size: f64,
    /// Raw particles written per snapshot.
    pub particles_per_step: usize,
    pub cosmo: Cosmology,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_halos: 2_000,
            box_size: 256.0,
            particles_per_step: 20_000,
            cosmo: Cosmology::default(),
        }
    }
}

/// The generative model of one ensemble member.
#[derive(Debug, Clone)]
pub struct SimModel {
    pub sim_index: u32,
    pub params: SubgridParams,
    pub config: SimConfig,
    seed: u64,
    halos: Vec<HaloSeed>,
}

impl SimModel {
    /// Draw all latent variables for simulation `sim_index` of the
    /// ensemble seeded by `seed`.
    pub fn new(seed: u64, sim_index: u32, params: SubgridParams, config: SimConfig) -> SimModel {
        let amp = physics::mass_amplitude(&params);
        let mut halos = Vec::with_capacity(config.n_halos);
        for i in 0..config.n_halos {
            let tag = (i64::from(sim_index) << 40) + i as i64 + 1;
            let mut rng = rng_for(&[seed, u64::from(sim_index), i as u64, u64::from(b'H')]);
            // Stratified uniform deviate for the mass function: guarantees
            // the full mass range is represented even in small catalogs.
            let u = (i as f64 + rng.random::<f64>()) / config.n_halos as f64;
            let m_final = physics::sample_halo_mass(u) * amp;
            let beta = 1.0 + 2.0 * rng.random::<f64>();
            let pos = [
                rng.random::<f64>() * config.box_size,
                rng.random::<f64>() * config.box_size,
                rng.random::<f64>() * config.box_size,
            ];
            let vel = [
                250.0 * normal(&mut rng),
                250.0 * normal(&mut rng),
                250.0 * normal(&mut rng),
            ];
            let smhm_dev = normal(&mut rng);
            let fgas_scatter = lognormal_dex(&mut rng, 0.05);
            let conc_scatter = lognormal_dex(&mut rng, 0.1);
            // Satellite population scales with final mass.
            let lambda = (m_final / 3.0e12).powf(0.85).min(24.0);
            let n_sat = lambda.floor() as usize
                + usize::from(rng.random::<f64>() < lambda.fract());
            let sats = (0..n_sat)
                .map(|_| SatSeed {
                    infall_a: 0.3 + 0.7 * rng.random::<f64>(),
                    mass_frac: 0.02 + 0.25 * rng.random::<f64>(),
                    offset: [normal(&mut rng), normal(&mut rng), normal(&mut rng)],
                    vel_offset: [normal(&mut rng), normal(&mut rng), normal(&mut rng)],
                })
                .collect();
            halos.push(HaloSeed {
                tag,
                m_final,
                beta,
                pos,
                vel,
                smhm_dev,
                fgas_scatter,
                conc_scatter,
                sats,
            });
        }
        SimModel {
            sim_index,
            params,
            config,
            seed,
            halos,
        }
    }

    fn halo_position(&self, h: &HaloSeed, a: f64) -> [f64; 3] {
        let box_size = self.config.box_size;
        let drift = 0.01 * (a - 0.5);
        [
            (h.pos[0] + h.vel[0] * drift).rem_euclid(box_size),
            (h.pos[1] + h.vel[1] * drift).rem_euclid(box_size),
            (h.pos[2] + h.vel[2] * drift).rem_euclid(box_size),
        ]
    }

    /// Indices of the halos that are resolved (above `M_MIN`) at `step`,
    /// together with their masses.
    fn resolved(&self, step: u32) -> Vec<(usize, f64)> {
        let a = scale_factor(step);
        self.halos
            .iter()
            .enumerate()
            .filter_map(|(i, h)| {
                let m = physics::mass_at(&self.config.cosmo, h.m_final, h.beta, a);
                (m >= physics::M_MIN).then_some((i, m))
            })
            .collect()
    }

    /// The halo property catalog at `step`, in genio column layout
    /// (matching [`crate::schema::HALO_SCHEMA`]).
    pub fn halo_catalog(&self, step: u32) -> Vec<GenioColumn> {
        let a = scale_factor(step);
        let cosmo = &self.config.cosmo;
        let rows = self.resolved(step);
        let n = rows.len();
        let mut tag = Vec::with_capacity(n);
        let mut count = Vec::with_capacity(n);
        let mut mass = Vec::with_capacity(n);
        let (mut cx, mut cy, mut cz) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let (mut vx, mut vy, mut vz) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let mut vdisp = Vec::with_capacity(n);
        let mut vmax = Vec::with_capacity(n);
        let mut radius = Vec::with_capacity(n);
        let mut m500 = Vec::with_capacity(n);
        let mut mgas = Vec::with_capacity(n);
        let mut mstar = Vec::with_capacity(n);
        let mut cdelta = Vec::with_capacity(n);
        let mut vdisp1d = Vec::with_capacity(n);
        let (mut px, mut py, mut pz): (Vec<f32>, Vec<f32>, Vec<f32>) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let (mut lx, mut ly, mut lz): (Vec<f32>, Vec<f32>, Vec<f32>) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let mut ke = Vec::with_capacity(n);
        for (i, m) in rows {
            let h = &self.halos[i];
            let p = self.halo_position(h, a);
            tag.push(h.tag);
            count.push((m / physics::PARTICLE_MASS).round() as i64);
            mass.push(m);
            cx.push(p[0] as f32);
            cy.push(p[1] as f32);
            cz.push(p[2] as f32);
            vx.push(h.vel[0] as f32);
            vy.push(h.vel[1] as f32);
            vz.push(h.vel[2] as f32);
            let sigma = physics::velocity_dispersion(&self.params, m);
            vdisp.push(sigma as f32);
            vmax.push((1.25 * sigma) as f32);
            let m5 = physics::m500c_of_fof(m);
            let r5 = physics::r500c(m5);
            radius.push(r5 as f32);
            m500.push(m5);
            mgas.push(physics::gas_fraction(cosmo, &self.params, m5, a) * m5 * h.fgas_scatter);
            mstar.push(1.15 * physics::smhm_median(cosmo, &self.params, m, a));
            cdelta.push((5.5 * (m / 1e14).powf(-0.1) * h.conc_scatter) as f32);
            vdisp1d.push((sigma / 3f64.sqrt()) as f32);
            // Potential minimum sits slightly off the center of mass.
            px.push((p[0] + 0.02 * r5 * h.vel[0].signum()) as f32);
            py.push((p[1] + 0.02 * r5 * h.vel[1].signum()) as f32);
            pz.push((p[2] + 0.02 * r5 * h.vel[2].signum()) as f32);
            // Spin angular momentum: lambda ~ 0.035 with per-halo scatter,
            // direction from the velocity vector.
            let v2 = h.vel[0] * h.vel[0] + h.vel[1] * h.vel[1] + h.vel[2] * h.vel[2];
            let vnorm = v2.sqrt().max(1.0);
            let l_mag = 0.035 * h.conc_scatter * m * r5 * sigma;
            lx.push((l_mag * h.vel[0] / vnorm) as f32);
            ly.push((l_mag * h.vel[1] / vnorm) as f32);
            lz.push((l_mag * h.vel[2] / vnorm) as f32);
            ke.push(0.5 * m * (v2 + 3.0 * sigma * sigma));
        }
        vec![
            GenioColumn::I64(tag),
            GenioColumn::I64(count),
            GenioColumn::F64(mass),
            GenioColumn::F32(cx),
            GenioColumn::F32(cy),
            GenioColumn::F32(cz),
            GenioColumn::F32(vx),
            GenioColumn::F32(vy),
            GenioColumn::F32(vz),
            GenioColumn::F32(vdisp),
            GenioColumn::F32(vmax),
            GenioColumn::F32(radius),
            GenioColumn::F64(m500),
            GenioColumn::F64(mgas),
            GenioColumn::F64(mstar),
            GenioColumn::F32(cdelta),
            GenioColumn::F32(vdisp1d),
            GenioColumn::F32(px),
            GenioColumn::F32(py),
            GenioColumn::F32(pz),
            GenioColumn::F32(lx),
            GenioColumn::F32(ly),
            GenioColumn::F32(lz),
            GenioColumn::F64(ke),
        ]
    }

    /// The galaxy property catalog at `step`
    /// (matching [`crate::schema::GALAXY_SCHEMA`]).
    pub fn galaxy_catalog(&self, step: u32) -> Vec<GenioColumn> {
        let a = scale_factor(step);
        let cosmo = &self.config.cosmo;
        let scatter_dex = physics::smhm_scatter(&self.params);
        let mut gtag = Vec::new();
        let mut htag = Vec::new();
        let mut gmass = Vec::new();
        let mut mstar = Vec::new();
        let mut mgas = Vec::new();
        let mut sfr: Vec<f32> = Vec::new();
        let (mut gx, mut gy, mut gz): (Vec<f32>, Vec<f32>, Vec<f32>) =
            (Vec::new(), Vec::new(), Vec::new());
        let (mut gvx, mut gvy, mut gvz): (Vec<f32>, Vec<f32>, Vec<f32>) =
            (Vec::new(), Vec::new(), Vec::new());
        let mut ke = Vec::new();
        let mut central: Vec<i32> = Vec::new();
        let mut gal_vdisp: Vec<f32> = Vec::new();
        let mut gal_rhalf: Vec<f32> = Vec::new();
        let mut gal_bh = Vec::new();
        let mut gal_age: Vec<f32> = Vec::new();

        for (i, m_h) in self.resolved(step) {
            let h = &self.halos[i];
            let p = self.halo_position(h, a);
            let sigma = physics::velocity_dispersion(&self.params, m_h);
            let r5 = physics::r500c(physics::m500c_of_fof(m_h));
            // Central galaxy: fixed per-halo scatter deviate keeps its
            // stellar-mass history smooth.
            let ms_central =
                physics::smhm_median(cosmo, &self.params, m_h, a) * 10f64.powf(scatter_dex * h.smhm_dev);
            let gas_central = physics::galaxy_gas_mass(&self.params, ms_central, m_h);
            let total_central = ms_central + gas_central;
            let v = h.vel;
            let v2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
            gtag.push(h.tag * 1000);
            htag.push(h.tag);
            gmass.push(total_central);
            mstar.push(ms_central);
            mgas.push(gas_central);
            sfr.push((gas_central / 2.0e9 * a) as f32);
            gx.push(p[0] as f32);
            gy.push(p[1] as f32);
            gz.push(p[2] as f32);
            gvx.push(v[0] as f32);
            gvy.push(v[1] as f32);
            gvz.push(v[2] as f32);
            ke.push(0.5 * total_central * v2);
            central.push(1);
            gal_vdisp.push((0.6 * sigma) as f32);
            gal_rhalf.push((0.015 * r5 * 1000.0) as f32); // kpc/h
            // Black holes grow from the AGN seed with stellar mass.
            gal_bh.push(self.params.m_seed * (ms_central / 1.0e9).max(1.0).powf(0.9));
            gal_age.push((13.8 * a * (0.6 + 0.1 * h.smhm_dev.tanh())) as f32);

            for (k, s) in h.sats.iter().enumerate() {
                if a < s.infall_a {
                    continue;
                }
                let ms = ms_central * s.mass_frac;
                let gas = physics::galaxy_gas_mass(&self.params, ms, m_h) * 0.5;
                let total = ms + gas;
                let sv = [
                    v[0] + sigma * s.vel_offset[0],
                    v[1] + sigma * s.vel_offset[1],
                    v[2] + sigma * s.vel_offset[2],
                ];
                let sv2 = sv[0] * sv[0] + sv[1] * sv[1] + sv[2] * sv[2];
                gtag.push(h.tag * 1000 + k as i64 + 1);
                htag.push(h.tag);
                gmass.push(total);
                mstar.push(ms);
                mgas.push(gas);
                sfr.push((gas / 2.0e9 * a) as f32);
                gx.push((p[0] + r5 * s.offset[0] * 0.6).rem_euclid(self.config.box_size) as f32);
                gy.push((p[1] + r5 * s.offset[1] * 0.6).rem_euclid(self.config.box_size) as f32);
                gz.push((p[2] + r5 * s.offset[2] * 0.6).rem_euclid(self.config.box_size) as f32);
                gvx.push(sv[0] as f32);
                gvy.push(sv[1] as f32);
                gvz.push(sv[2] as f32);
                ke.push(0.5 * total * sv2);
                central.push(0);
                gal_vdisp.push((0.4 * sigma) as f32);
                gal_rhalf.push((0.008 * r5 * 1000.0) as f32);
                gal_bh.push(self.params.m_seed * (ms / 1.0e9).max(1.0).powf(0.9));
                gal_age.push((13.8 * s.infall_a * 0.7) as f32);
            }
        }
        vec![
            GenioColumn::I64(gtag),
            GenioColumn::I64(htag),
            GenioColumn::F64(gmass),
            GenioColumn::F64(mstar),
            GenioColumn::F64(mgas),
            GenioColumn::F32(sfr),
            GenioColumn::F32(gx),
            GenioColumn::F32(gy),
            GenioColumn::F32(gz),
            GenioColumn::F32(gvx),
            GenioColumn::F32(gvy),
            GenioColumn::F32(gvz),
            GenioColumn::F64(ke),
            GenioColumn::I32(central),
            GenioColumn::F32(gal_vdisp),
            GenioColumn::F32(gal_rhalf),
            GenioColumn::F64(gal_bh),
            GenioColumn::F32(gal_age),
        ]
    }

    /// The core catalog at `step`
    /// (matching [`crate::schema::CORE_SCHEMA`]).
    pub fn core_catalog(&self, step: u32) -> Vec<GenioColumn> {
        let a = scale_factor(step);
        let rows = self.resolved(step);
        let n = rows.len();
        let mut ctag = Vec::with_capacity(n);
        let mut htag = Vec::with_capacity(n);
        let (mut x, mut y, mut z): (Vec<f32>, Vec<f32>, Vec<f32>) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let (mut vx, mut vy, mut vz): (Vec<f32>, Vec<f32>, Vec<f32>) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let mut infall_mass = Vec::with_capacity(n);
        let mut infall_step = Vec::with_capacity(n);
        for (i, _m) in rows {
            let h = &self.halos[i];
            let p = self.halo_position(h, a);
            ctag.push(h.tag);
            htag.push(h.tag);
            x.push(p[0] as f32);
            y.push(p[1] as f32);
            z.push(p[2] as f32);
            vx.push(h.vel[0] as f32);
            vy.push(h.vel[1] as f32);
            vz.push(h.vel[2] as f32);
            infall_mass.push(physics::M_MIN);
            // Step at which the halo first crossed M_MIN (bisect on the
            // monotone mass history).
            let mut lo = 0u32;
            let mut hi = step;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let m_mid = physics::mass_at(
                    &self.config.cosmo,
                    h.m_final,
                    h.beta,
                    scale_factor(mid),
                );
                if m_mid >= physics::M_MIN {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            infall_step.push(lo as i32);
        }
        vec![
            GenioColumn::I64(ctag),
            GenioColumn::I64(htag),
            GenioColumn::F32(x),
            GenioColumn::F32(y),
            GenioColumn::F32(z),
            GenioColumn::F32(vx),
            GenioColumn::F32(vy),
            GenioColumn::F32(vz),
            GenioColumn::F64(infall_mass),
            GenioColumn::I32(infall_step),
        ]
    }

    /// One block of raw particles at `step`
    /// (matching [`crate::schema::PARTICLE_SCHEMA`]).
    ///
    /// Particles are 70% clustered around resolved halos (mass-weighted,
    /// Gaussian with σ = R500c) and 30% uniform background. Blocks are
    /// independent so files stream out in `O(block)` memory.
    pub fn particle_block(&self, step: u32, block_index: u64, rows: usize) -> Vec<GenioColumn> {
        let a = scale_factor(step);
        let mut rng = rng_for(&[
            self.seed,
            u64::from(self.sim_index),
            u64::from(step),
            block_index,
            u64::from(b'P'),
        ]);
        let resolved = self.resolved(step);
        // Mass-weighted cumulative table over resolved halos.
        let total_mass: f64 = resolved.iter().map(|(_, m)| m).sum();
        let mut cumulative = Vec::with_capacity(resolved.len());
        let mut acc = 0.0;
        for (i, m) in &resolved {
            acc += m;
            cumulative.push((acc, *i));
        }
        let n = rows;
        let mut id = Vec::with_capacity(n);
        let (mut x, mut y, mut z): (Vec<f32>, Vec<f32>, Vec<f32>) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let (mut vx, mut vy, mut vz): (Vec<f32>, Vec<f32>, Vec<f32>) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        let mut phi = Vec::with_capacity(n);
        let mass = vec![physics::PARTICLE_MASS as f32; n];
        let box_size = self.config.box_size;
        for k in 0..n {
            id.push((block_index * n as u64 + k as u64) as i64);
            let clustered = !cumulative.is_empty() && rng.random::<f64>() < 0.7;
            if clustered {
                let target = rng.random::<f64>() * total_mass;
                let idx = cumulative
                    .partition_point(|(c, _)| *c < target)
                    .min(cumulative.len() - 1);
                let hi = cumulative[idx].1;
                let h = &self.halos[hi];
                let m = physics::mass_at(&self.config.cosmo, h.m_final, h.beta, a);
                let r5 = physics::r500c(physics::m500c_of_fof(m));
                let p = self.halo_position(h, a);
                let sigma = physics::velocity_dispersion(&self.params, m);
                x.push((p[0] + r5 * normal(&mut rng)).rem_euclid(box_size) as f32);
                y.push((p[1] + r5 * normal(&mut rng)).rem_euclid(box_size) as f32);
                z.push((p[2] + r5 * normal(&mut rng)).rem_euclid(box_size) as f32);
                vx.push((h.vel[0] + sigma * normal(&mut rng)) as f32);
                vy.push((h.vel[1] + sigma * normal(&mut rng)) as f32);
                vz.push((h.vel[2] + sigma * normal(&mut rng)) as f32);
                phi.push((-(m / 1e13).powf(2.0 / 3.0) * 1e5) as f32);
            } else {
                x.push((rng.random::<f64>() * box_size) as f32);
                y.push((rng.random::<f64>() * box_size) as f32);
                z.push((rng.random::<f64>() * box_size) as f32);
                vx.push((120.0 * normal(&mut rng)) as f32);
                vy.push((120.0 * normal(&mut rng)) as f32);
                vz.push((120.0 * normal(&mut rng)) as f32);
                phi.push((-10.0 * rng.random::<f64>()) as f32);
            }
        }
        vec![
            GenioColumn::I64(id),
            GenioColumn::F32(x),
            GenioColumn::F32(y),
            GenioColumn::F32(z),
            GenioColumn::F32(vx),
            GenioColumn::F32(vy),
            GenioColumn::F32(vz),
            GenioColumn::F32(phi),
            GenioColumn::F32(mass),
        ]
    }

    /// Generate a catalog as an in-memory [`DataFrame`] (tests and the
    /// in-process fast path of the data-loading agent).
    pub fn catalog_frame(&self, kind: EntityKind, step: u32) -> DataFrame {
        let cols = match kind {
            EntityKind::Halos => self.halo_catalog(step),
            EntityKind::Galaxies => self.galaxy_catalog(step),
            EntityKind::Cores => self.core_catalog(step),
            EntityKind::Particles => self.particle_block(step, 0, self.config.particles_per_step),
        };
        let mut df = DataFrame::new();
        for ((name, _), col) in kind.schema().iter().zip(cols) {
            df.add_column((*name).to_string(), col.into_frame_column())
                .expect("schema names are unique");
        }
        df
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_frame::AggKind;

    fn model() -> SimModel {
        SimModel::new(
            11,
            0,
            SubgridParams::default(),
            SimConfig {
                n_halos: 300,
                particles_per_step: 500,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn determinism() {
        let a = model().catalog_frame(EntityKind::Halos, 400);
        let b = model().catalog_frame(EntityKind::Halos, 400);
        assert_eq!(a, b);
    }

    #[test]
    fn halo_count_grows_with_time() {
        let m = model();
        let early = m.catalog_frame(EntityKind::Halos, 100).n_rows();
        let late = m.catalog_frame(EntityKind::Halos, 624).n_rows();
        assert!(late > early, "early={early} late={late}");
        assert!(late > 0);
    }

    #[test]
    fn tags_stable_and_masses_monotone() {
        let m = model();
        let early = m.catalog_frame(EntityKind::Halos, 300);
        let late = m.catalog_frame(EntityKind::Halos, 624);
        // Every early halo still exists later, with larger mass.
        let join = early
            .select(&["fof_halo_tag", "fof_halo_mass"])
            .unwrap()
            .join(
                &late.select(&["fof_halo_tag", "fof_halo_mass"]).unwrap(),
                "fof_halo_tag",
                "fof_halo_tag",
                infera_frame::JoinKind::Inner,
            )
            .unwrap();
        assert_eq!(join.n_rows(), early.n_rows());
        let m_early = join.column("fof_halo_mass").unwrap().as_f64_slice().unwrap();
        let m_late = join
            .column("fof_halo_mass_right")
            .unwrap()
            .as_f64_slice()
            .unwrap();
        assert!(m_early.iter().zip(m_late).all(|(e, l)| l > e));
    }

    #[test]
    fn galaxies_reference_existing_halos() {
        let m = model();
        let halos = m.catalog_frame(EntityKind::Halos, 500);
        let gals = m.catalog_frame(EntityKind::Galaxies, 500);
        let halo_tags: std::collections::HashSet<i64> = halos
            .column("fof_halo_tag")
            .unwrap()
            .as_i64_slice()
            .unwrap()
            .iter()
            .copied()
            .collect();
        let gal_halo = gals.column("fof_halo_tag").unwrap().as_i64_slice().unwrap();
        assert!(gal_halo.iter().all(|t| halo_tags.contains(t)));
        // Exactly one central per halo.
        let centrals = gals
            .filter_expr(&infera_frame::Expr::bin(
                infera_frame::Expr::col("gal_is_central"),
                infera_frame::expr::BinOp::Eq,
                infera_frame::Expr::lit(1i64),
            ))
            .unwrap();
        assert_eq!(centrals.n_rows(), halos.n_rows());
    }

    #[test]
    fn smhm_scatter_recoverable() {
        // Generate with an off-optimum seed mass; measured scatter of
        // log10(M*) at fixed log10(Mh) should be close to the model value.
        let mut params = SubgridParams::default();
        params.m_seed = 10f64.powf(6.3);
        let m = SimModel::new(
            5,
            0,
            params,
            SimConfig {
                n_halos: 1500,
                particles_per_step: 10,
                ..SimConfig::default()
            },
        );
        let gals = m.catalog_frame(EntityKind::Galaxies, 624);
        let halos = m.catalog_frame(EntityKind::Halos, 624);
        let centrals = gals
            .filter_expr(&infera_frame::Expr::bin(
                infera_frame::Expr::col("gal_is_central"),
                infera_frame::expr::BinOp::Eq,
                infera_frame::Expr::lit(1i64),
            ))
            .unwrap();
        let mut joined = centrals
            .select(&["fof_halo_tag", "gal_stellar_mass"])
            .unwrap()
            .join(
                &halos.select(&["fof_halo_tag", "fof_halo_mass"]).unwrap(),
                "fof_halo_tag",
                "fof_halo_tag",
                infera_frame::JoinKind::Inner,
            )
            .unwrap();
        joined
            .with_column(
                "lms",
                &infera_frame::Expr::Unary(
                    infera_frame::expr::UnaryFn::Log10,
                    Box::new(infera_frame::Expr::col("gal_stellar_mass")),
                ),
            )
            .unwrap();
        joined
            .with_column(
                "lmh",
                &infera_frame::Expr::Unary(
                    infera_frame::expr::UnaryFn::Log10,
                    Box::new(infera_frame::Expr::col("fof_halo_mass")),
                ),
            )
            .unwrap();
        let fit = joined.linfit("lmh", "lms").unwrap();
        let expected = physics::smhm_scatter(&params);
        assert!(
            (fit.scatter - expected).abs() < 0.12,
            "measured {} vs model {expected}",
            fit.scatter
        );
    }

    #[test]
    fn particles_inside_box() {
        let m = model();
        let p = m.catalog_frame(EntityKind::Particles, 624);
        assert_eq!(p.n_rows(), 500);
        for axis in ["x", "y", "z"] {
            let v = p.column(axis).unwrap().as_f64_slice().unwrap();
            assert!(v
                .iter()
                .all(|&c| (0.0..=m.config.box_size).contains(&c)));
        }
    }

    #[test]
    fn particle_blocks_differ() {
        let m = model();
        let b0 = m.particle_block(624, 0, 100);
        let b1 = m.particle_block(624, 1, 100);
        if let (GenioColumn::F32(x0), GenioColumn::F32(x1)) = (&b0[1], &b1[1]) {
            assert_ne!(x0, x1);
        } else {
            panic!("expected f32 position columns");
        }
    }

    #[test]
    fn cores_track_halo_centers() {
        let m = model();
        let halos = m.catalog_frame(EntityKind::Halos, 500);
        let cores = m.catalog_frame(EntityKind::Cores, 500);
        assert_eq!(halos.n_rows(), cores.n_rows());
        let hx = halos
            .column("fof_halo_center_x")
            .unwrap()
            .as_f64_slice()
            .unwrap();
        let cx = cores.column("core_x").unwrap().as_f64_slice().unwrap();
        assert!(hx.iter().zip(cx).all(|(a, b)| (a - b).abs() < 1e-3));
    }

    #[test]
    fn mean_halo_size_varies_with_time() {
        let m = model();
        let early = m.catalog_frame(EntityKind::Halos, 200);
        let late = m.catalog_frame(EntityKind::Halos, 624);
        let mean_early = early.aggregate("fof_halo_count", AggKind::Mean).unwrap();
        let mean_late = late.aggregate("fof_halo_count", AggKind::Mean).unwrap();
        assert!(mean_early > 0.0 && mean_late > 0.0);
        assert_ne!(mean_early, mean_late);
    }
}
