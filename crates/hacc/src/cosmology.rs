//! Background cosmology: snapshot ↔ scale-factor mapping and a linear
//! growth proxy.
//!
//! HACC labels its outputs with *step numbers* 0..=624 that march the
//! scale factor from `a_init = 1/(1+z_init)` to `a = 1` (z = 0) in equal
//! increments of `a`. The evaluation questions reference concrete steps
//! ("timestep 498", "timestep 624"), so the mapping here follows that
//! convention.

use serde::{Deserialize, Serialize};

/// Final HACC step number (z = 0 snapshot).
pub const FINAL_STEP: u32 = 624;
/// Initial redshift of the synthetic runs.
pub const Z_INIT: f64 = 10.0;

/// Background cosmology for the synthetic ensemble (flat ΛCDM-ish).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cosmology {
    /// Matter density parameter.
    pub omega_m: f64,
    /// Baryon density parameter.
    pub omega_b: f64,
    /// Hubble parameter / 100 km/s/Mpc.
    pub h: f64,
    /// Power-spectrum normalization proxy.
    pub sigma8: f64,
}

impl Default for Cosmology {
    fn default() -> Self {
        // Planck-like values, matching CRK-HACC production runs.
        Cosmology {
            omega_m: 0.31,
            omega_b: 0.049,
            h: 0.6766,
            sigma8: 0.81,
        }
    }
}

impl Cosmology {
    /// Cosmic baryon fraction Ω_b / Ω_m.
    pub fn baryon_fraction(&self) -> f64 {
        self.omega_b / self.omega_m
    }
}

/// Scale factor of a HACC step number (equal-`a` stepping).
pub fn scale_factor(step: u32) -> f64 {
    let a_init = 1.0 / (1.0 + Z_INIT);
    let frac = f64::from(step.min(FINAL_STEP)) / f64::from(FINAL_STEP);
    a_init + (1.0 - a_init) * frac
}

/// Redshift of a HACC step number.
pub fn redshift(step: u32) -> f64 {
    1.0 / scale_factor(step) - 1.0
}

/// Inverse mapping: the step whose scale factor is closest to `a`.
pub fn step_for_scale_factor(a: f64) -> u32 {
    let a_init = 1.0 / (1.0 + Z_INIT);
    let frac = ((a - a_init) / (1.0 - a_init)).clamp(0.0, 1.0);
    (frac * f64::from(FINAL_STEP)).round() as u32
}

/// Linear growth-factor proxy `D(a)`, normalized to `D(1) = 1`.
///
/// Uses the common Carroll–Press–Turner fitting form; adequate for
/// shaping halo mass growth in the synthetic catalogs.
pub fn growth_factor(cosmo: &Cosmology, a: f64) -> f64 {
    fn g(omega_m: f64, a: f64) -> f64 {
        // Ω_m(a) for flat ΛCDM.
        let om_a = omega_m / (omega_m + (1.0 - omega_m) * a * a * a);
        let ol_a = 1.0 - om_a;
        2.5 * a * om_a
            / (om_a.powf(4.0 / 7.0) - ol_a + (1.0 + om_a / 2.0) * (1.0 + ol_a / 70.0))
    }
    g(cosmo.omega_m, a) / g(cosmo.omega_m, 1.0)
}

/// Given a requested step (possibly one that is not among the generated
/// snapshots), return the nearest available snapshot step.
pub fn nearest_snapshot(available: &[u32], requested: u32) -> Option<u32> {
    available
        .iter()
        .copied()
        .min_by_key(|&s| (i64::from(s) - i64::from(requested)).unsigned_abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor_endpoints() {
        assert!((scale_factor(0) - 1.0 / 11.0).abs() < 1e-12);
        assert!((scale_factor(FINAL_STEP) - 1.0).abs() < 1e-12);
        assert!((redshift(FINAL_STEP)).abs() < 1e-12);
        assert!((redshift(0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn scale_factor_monotonic() {
        let mut prev = 0.0;
        for step in (0..=FINAL_STEP).step_by(13) {
            let a = scale_factor(step);
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn step_roundtrip() {
        for step in [0u32, 100, 312, 498, 624] {
            assert_eq!(step_for_scale_factor(scale_factor(step)), step);
        }
    }

    #[test]
    fn growth_factor_normalized_and_monotonic() {
        let c = Cosmology::default();
        assert!((growth_factor(&c, 1.0) - 1.0).abs() < 1e-12);
        let mut prev = 0.0;
        for i in 1..=20 {
            let a = i as f64 / 20.0;
            let d = growth_factor(&c, a);
            assert!(d > prev, "D({a}) = {d} not increasing");
            prev = d;
        }
        // Early-time growth roughly proportional to a in matter domination.
        let d_small = growth_factor(&c, 0.1);
        assert!(d_small > 0.08 && d_small < 0.15, "D(0.1) = {d_small}");
    }

    #[test]
    fn nearest_snapshot_picks_closest() {
        let avail = [0u32, 100, 200, 300, 624];
        assert_eq!(nearest_snapshot(&avail, 498), Some(624));
        assert_eq!(nearest_snapshot(&avail, 120), Some(100));
        assert_eq!(nearest_snapshot(&avail, 150), Some(100)); // ties -> lower
        assert_eq!(nearest_snapshot(&[], 5), None);
    }

    #[test]
    fn baryon_fraction_sane() {
        let c = Cosmology::default();
        let fb = c.baryon_fraction();
        assert!(fb > 0.1 && fb < 0.2);
    }
}
