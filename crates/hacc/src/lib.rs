//! # infera-hacc
//!
//! A synthetic reproduction of the HACC (Hardware/Hybrid Accelerated
//! Cosmology Code) ensemble data products that the InferA paper analyzes.
//!
//! The original evaluation runs on a 1.4 TB (4-run) and an 11.2 TB
//! (32-run) CRK-HACC hydrodynamics ensemble — proprietary data at a scale
//! this reproduction cannot ship. Instead, this crate *generates* an
//! ensemble with the same observable structure:
//!
//! * a hierarchical file layout (simulations × timesteps × entity files),
//! * a GenericIO-like block/columnar binary format with selective column
//!   reads and CRC checksums ([`genio`]),
//! * halo / galaxy / core / particle catalogs with realistic column names
//!   and physically shaped correlations ([`schema`], [`model`],
//!   [`physics`]),
//! * sub-grid parameter ensembles (f_SN, log v_SN, log T_AGN, beta_BH,
//!   M_seed) drawn from a Latin hypercube ([`params`]),
//! * the metadata dictionaries that InferA's RAG layer retrieves over
//!   ([`metadata`]).
//!
//! Everything is deterministic given the ensemble seed.

pub mod cosmology;
pub mod ensemble;
pub mod error;
pub mod genio;
pub mod metadata;
pub mod model;
pub mod params;
pub mod physics;
pub mod rng;
pub mod schema;

pub use cosmology::{scale_factor, Cosmology, FINAL_STEP};
pub use ensemble::{generate, EnsembleSpec, FileEntry, Manifest};
pub use error::{HaccError, HaccResult};
pub use genio::{GenioColumn, GenioDType, GenioReader, GenioWriter};
pub use metadata::{column_dictionary, structure_dictionary, ColumnDoc, StructureDoc};
pub use model::{SimConfig, SimModel};
pub use params::{latin_hypercube, SubgridParams};
pub use schema::EntityKind;
