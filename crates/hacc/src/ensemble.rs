//! Ensemble generation: write a full synthetic HACC ensemble to disk and
//! describe it with a manifest.
//!
//! On-disk layout (HACC-portal style):
//!
//! ```text
//! root/
//!   ensemble.json                    # the Manifest
//!   metadata/columns.json            # column-description dictionary
//!   metadata/structure.json          # file-structure dictionary
//!   sim_0000/
//!     params.json                    # SubgridParams of this member
//!     step_0009/m000p.haloproperties
//!     step_0009/m000p.galaxyproperties
//!     step_0009/m000p.coreproperties
//!     step_0009/m000p.particles
//!     ...
//!   sim_0001/ ...
//! ```

use crate::cosmology::{nearest_snapshot, FINAL_STEP};
use crate::error::{HaccError, HaccResult};
use crate::genio::GenioWriter;
use crate::metadata;
use crate::model::{SimConfig, SimModel};
use crate::params::{latin_hypercube, SubgridParams};
use crate::schema::EntityKind;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Specification of a synthetic ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSpec {
    /// Number of ensemble members (simulations).
    pub n_sims: usize,
    /// Snapshot step labels (HACC step numbers, ascending, ending at 624).
    pub steps: Vec<u32>,
    /// Per-simulation catalog configuration.
    pub sim: SimConfig,
    /// Master seed.
    pub seed: u64,
    /// Rows per particle block (GenericIO "rank block" size).
    pub particle_block_rows: usize,
}

impl EnsembleSpec {
    /// `n` snapshot labels evenly spaced over (0, 624], always including
    /// the final z=0 step.
    pub fn evenly_spaced_steps(n: usize) -> Vec<u32> {
        assert!(n >= 1);
        (1..=n)
            .map(|j| ((j as f64 / n as f64) * f64::from(FINAL_STEP)).round() as u32)
            .collect()
    }

    /// Minimal spec for unit tests: fast to generate, still covers
    /// multi-sim / multi-step structure.
    pub fn tiny(seed: u64) -> EnsembleSpec {
        EnsembleSpec {
            n_sims: 2,
            steps: Self::evenly_spaced_steps(4),
            sim: SimConfig {
                n_halos: 120,
                particles_per_step: 400,
                ..SimConfig::default()
            },
            seed,
            particle_block_rows: 256,
        }
    }

    /// The default evaluation-scale ensemble (stands in for the paper's
    /// 4-run, 1.4 TB LANL dataset at reduced absolute size).
    pub fn eval_scale(seed: u64) -> EnsembleSpec {
        EnsembleSpec {
            n_sims: 4,
            steps: Self::evenly_spaced_steps(32),
            sim: SimConfig {
                n_halos: 4_000,
                particles_per_step: 60_000,
                ..SimConfig::default()
            },
            seed,
            particle_block_rows: 16_384,
        }
    }

    /// The 32-member scalability ensemble of Fig. 4 (reduced scale).
    ///
    /// Particle counts are chosen so raw particles dominate the on-disk
    /// bytes the way they do in real CRK-HACC outputs — that ratio is what
    /// makes the selective-loading overhead a sub-percent fraction.
    pub fn case_study_scale(seed: u64) -> EnsembleSpec {
        EnsembleSpec {
            n_sims: 32,
            steps: Self::evenly_spaced_steps(24),
            sim: SimConfig {
                n_halos: 2_000,
                particles_per_step: 150_000,
                ..SimConfig::default()
            },
            seed,
            particle_block_rows: 16_384,
        }
    }

    fn validate(&self) -> HaccResult<()> {
        if self.n_sims == 0 {
            return Err(HaccError::Spec("n_sims must be > 0".into()));
        }
        if self.steps.is_empty() {
            return Err(HaccError::Spec("steps must be non-empty".into()));
        }
        if self.steps.windows(2).any(|w| w[0] >= w[1]) {
            return Err(HaccError::Spec("steps must be strictly ascending".into()));
        }
        if *self.steps.last().expect("non-empty") > FINAL_STEP {
            return Err(HaccError::Spec(format!("steps must be <= {FINAL_STEP}")));
        }
        if self.particle_block_rows == 0 {
            return Err(HaccError::Spec("particle_block_rows must be > 0".into()));
        }
        Ok(())
    }

    /// Construct the generative model of ensemble member `sim_index`
    /// without touching the filesystem.
    pub fn model(&self, sim_index: u32) -> SimModel {
        let params = latin_hypercube(self.n_sims, self.seed)[sim_index as usize];
        SimModel::new(self.seed, sim_index, params, self.sim)
    }
}

/// One generated file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileEntry {
    pub sim: u32,
    pub step: u32,
    /// Entity label ("halos", "galaxies", "cores", "particles").
    pub kind: String,
    /// Path relative to the ensemble root.
    pub rel_path: String,
    pub n_rows: u64,
    pub n_bytes: u64,
}

/// Ensemble description, persisted as `ensemble.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Manifest {
    pub seed: u64,
    pub n_sims: u32,
    pub steps: Vec<u32>,
    pub box_size: f64,
    pub n_halos: usize,
    pub particles_per_step: usize,
    pub params: Vec<SubgridParams>,
    pub files: Vec<FileEntry>,
    /// Root directory (absolute), set on generate/load.
    #[serde(default)]
    pub root: PathBuf,
}

impl Manifest {
    /// Deterministic fingerprint of the ensemble's content identity:
    /// an FNV-1a digest over the generation seed, shape, and per-file
    /// inventory. The root path is deliberately excluded — the same
    /// ensemble copied elsewhere keeps its fingerprint, while any change
    /// to the data (regeneration, different spec) changes it. The serve
    /// result cache keys on this to invalidate across ensemble swaps.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&self.seed.to_le_bytes());
        eat(&self.n_sims.to_le_bytes());
        eat(&self.box_size.to_le_bytes());
        eat(&(self.n_halos as u64).to_le_bytes());
        eat(&(self.particles_per_step as u64).to_le_bytes());
        for s in &self.steps {
            eat(&s.to_le_bytes());
        }
        for p in &self.params {
            for v in [p.f_sn, p.log_v_sn, p.log_t_agn, p.beta_bh, p.m_seed] {
                eat(&v.to_le_bytes());
            }
        }
        for f in &self.files {
            eat(&f.sim.to_le_bytes());
            eat(&f.step.to_le_bytes());
            eat(f.kind.as_bytes());
            eat(&f.n_rows.to_le_bytes());
            eat(&f.n_bytes.to_le_bytes());
        }
        h
    }

    /// Total bytes across all data files.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.n_bytes).sum()
    }

    /// Total bytes of one entity kind.
    pub fn bytes_of_kind(&self, kind: EntityKind) -> u64 {
        self.files
            .iter()
            .filter(|f| f.kind == kind.label())
            .map(|f| f.n_bytes)
            .sum()
    }

    /// Absolute path of a data file.
    pub fn file_path(&self, sim: u32, step: u32, kind: EntityKind) -> HaccResult<PathBuf> {
        self.files
            .iter()
            .find(|f| f.sim == sim && f.step == step && f.kind == kind.label())
            .map(|f| self.root.join(&f.rel_path))
            .ok_or_else(|| {
                HaccError::Spec(format!(
                    "no {} file for sim {sim} step {step}",
                    kind.label()
                ))
            })
    }

    /// Resolve a requested step to the nearest generated snapshot.
    pub fn nearest_step(&self, requested: u32) -> u32 {
        nearest_snapshot(&self.steps, requested).unwrap_or(FINAL_STEP)
    }

    /// Load a manifest from `root/ensemble.json`.
    pub fn load(root: &Path) -> HaccResult<Manifest> {
        let path = root.join("ensemble.json");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| HaccError::Io(format!("read {}: {e}", path.display())))?;
        let mut m: Manifest = serde_json::from_str(&text)
            .map_err(|e| HaccError::Format(format!("parse {}: {e}", path.display())))?;
        m.root = root.to_path_buf();
        Ok(m)
    }

    /// Reconstruct the spec that generated this manifest.
    pub fn spec(&self) -> EnsembleSpec {
        EnsembleSpec {
            n_sims: self.n_sims as usize,
            steps: self.steps.clone(),
            sim: SimConfig {
                n_halos: self.n_halos,
                particles_per_step: self.particles_per_step,
                box_size: self.box_size,
                ..SimConfig::default()
            },
            seed: self.seed,
            particle_block_rows: 16_384,
        }
    }
}

fn write_catalog(
    path: &Path,
    kind: EntityKind,
    model: &SimModel,
    step: u32,
    particle_block_rows: usize,
) -> HaccResult<(u64, u64)> {
    let mut w = GenioWriter::create(path, kind.schema())?;
    let mut n_rows = 0u64;
    match kind {
        EntityKind::Particles => {
            let total = model.config.particles_per_step;
            let mut block_index = 0u64;
            let mut written = 0usize;
            while written < total {
                let rows = particle_block_rows.min(total - written);
                let block = model.particle_block(step, block_index, rows);
                n_rows += rows as u64;
                w.write_block(&block)?;
                written += rows;
                block_index += 1;
            }
        }
        _ => {
            let cols = match kind {
                EntityKind::Halos => model.halo_catalog(step),
                EntityKind::Galaxies => model.galaxy_catalog(step),
                EntityKind::Cores => model.core_catalog(step),
                EntityKind::Particles => unreachable!(),
            };
            n_rows = cols.first().map_or(0, |c| c.len() as u64);
            w.write_block(&cols)?;
        }
    }
    let bytes = w.finish()?;
    Ok((n_rows, bytes))
}

/// Generate the full ensemble under `root`. Parallel across
/// (simulation, step) pairs. Returns the manifest (also written to
/// `root/ensemble.json`).
pub fn generate(spec: &EnsembleSpec, root: &Path) -> HaccResult<Manifest> {
    spec.validate()?;
    std::fs::create_dir_all(root)
        .map_err(|e| HaccError::Io(format!("mkdir {}: {e}", root.display())))?;
    let params = latin_hypercube(spec.n_sims, spec.seed);

    // Write per-sim directories and params.json up front.
    for (i, p) in params.iter().enumerate() {
        let sim_dir = root.join(format!("sim_{i:04}"));
        std::fs::create_dir_all(&sim_dir)
            .map_err(|e| HaccError::Io(format!("mkdir {}: {e}", sim_dir.display())))?;
        let text = serde_json::to_string_pretty(p).expect("params serialize");
        std::fs::write(sim_dir.join("params.json"), text)
            .map_err(|e| HaccError::Io(e.to_string()))?;
        for &step in &spec.steps {
            let step_dir = sim_dir.join(format!("step_{step:04}"));
            std::fs::create_dir_all(&step_dir)
                .map_err(|e| HaccError::Io(format!("mkdir {}: {e}", step_dir.display())))?;
        }
    }

    // Generate all (sim, step, kind) files in parallel. Models are built
    // once per sim and shared by reference.
    let models: Vec<SimModel> = (0..spec.n_sims)
        .map(|i| SimModel::new(spec.seed, i as u32, params[i], spec.sim))
        .collect();
    let jobs: Vec<(u32, u32)> = (0..spec.n_sims as u32)
        .flat_map(|s| spec.steps.iter().map(move |&t| (s, t)))
        .collect();
    let mut files: Vec<FileEntry> = jobs
        .par_iter()
        .map(|&(sim, step)| -> HaccResult<Vec<FileEntry>> {
            let model = &models[sim as usize];
            let mut entries = Vec::with_capacity(4);
            for kind in EntityKind::ALL {
                let rel = format!("sim_{sim:04}/step_{step:04}/{}", kind.file_name());
                let path = root.join(&rel);
                let (n_rows, n_bytes) =
                    write_catalog(&path, kind, model, step, spec.particle_block_rows)?;
                entries.push(FileEntry {
                    sim,
                    step,
                    kind: kind.label().to_string(),
                    rel_path: rel,
                    n_rows,
                    n_bytes,
                });
            }
            Ok(entries)
        })
        .collect::<HaccResult<Vec<_>>>()?
        .into_iter()
        .flatten()
        .collect();
    files.sort_by(|a, b| (a.sim, a.step, &a.kind).cmp(&(b.sim, b.step, &b.kind)));

    let manifest = Manifest {
        seed: spec.seed,
        n_sims: spec.n_sims as u32,
        steps: spec.steps.clone(),
        box_size: spec.sim.box_size,
        n_halos: spec.sim.n_halos,
        particles_per_step: spec.sim.particles_per_step,
        params,
        files,
        root: root.to_path_buf(),
    };
    let text = serde_json::to_string_pretty(&manifest).expect("manifest serialize");
    std::fs::write(root.join("ensemble.json"), text)
        .map_err(|e| HaccError::Io(e.to_string()))?;

    // Metadata dictionaries for the RAG layer.
    let meta_dir = root.join("metadata");
    std::fs::create_dir_all(&meta_dir).map_err(|e| HaccError::Io(e.to_string()))?;
    std::fs::write(
        meta_dir.join("columns.json"),
        serde_json::to_string_pretty(&metadata::column_dictionary()).expect("columns serialize"),
    )
    .map_err(|e| HaccError::Io(e.to_string()))?;
    std::fs::write(
        meta_dir.join("structure.json"),
        serde_json::to_string_pretty(&metadata::structure_dictionary(&manifest))
            .expect("structure serialize"),
    )
    .map_err(|e| HaccError::Io(e.to_string()))?;

    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genio::GenioReader;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("infera_ensemble_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fingerprint_ignores_root_but_tracks_content() {
        let a = crate::generate(&EnsembleSpec::tiny(7), &tmp_root("fp_a")).unwrap();
        let b = crate::generate(&EnsembleSpec::tiny(7), &tmp_root("fp_b")).unwrap();
        assert_ne!(a.root, b.root);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same print");
        let c = crate::generate(&EnsembleSpec::tiny(8), &tmp_root("fp_c")).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint(), "different seed diverges");
    }

    #[test]
    fn evenly_spaced_steps_end_at_final() {
        let s = EnsembleSpec::evenly_spaced_steps(8);
        assert_eq!(s.len(), 8);
        assert_eq!(*s.last().unwrap(), FINAL_STEP);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generate_and_load_roundtrip() {
        let root = tmp_root("roundtrip");
        let spec = EnsembleSpec::tiny(3);
        let manifest = generate(&spec, &root).unwrap();
        assert_eq!(manifest.files.len(), 2 * 4 * 4); // sims × steps × kinds
        assert!(manifest.total_bytes() > 0);

        let loaded = Manifest::load(&root).unwrap();
        assert_eq!(loaded.n_sims, 2);
        assert_eq!(loaded.steps, spec.steps);
        assert_eq!(loaded.files.len(), manifest.files.len());

        // Read a halo file back and check row counts match the manifest.
        let halo_entry = manifest
            .files
            .iter()
            .find(|f| f.kind == "halos" && f.sim == 0 && f.step == FINAL_STEP)
            .unwrap();
        let mut r = GenioReader::open(&root.join(&halo_entry.rel_path)).unwrap();
        assert_eq!(r.header().n_rows(), halo_entry.n_rows);
        let df = r.read_columns(&["fof_halo_mass", "fof_halo_tag"]).unwrap();
        assert_eq!(df.n_rows() as u64, halo_entry.n_rows);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn file_contents_match_in_memory_model() {
        let root = tmp_root("matches_model");
        let spec = EnsembleSpec::tiny(9);
        let manifest = generate(&spec, &root).unwrap();
        let model = spec.model(1);
        let step = spec.steps[2];
        let expected = model.catalog_frame(EntityKind::Galaxies, step);
        let path = manifest.file_path(1, step, EntityKind::Galaxies).unwrap();
        let actual = GenioReader::open(&path).unwrap().read_all().unwrap();
        assert_eq!(actual.n_rows(), expected.n_rows());
        // f64 columns identical; f32 columns were rounded on write, so
        // compare those with a tolerance.
        assert_eq!(
            actual.column("gal_stellar_mass").unwrap(),
            expected.column("gal_stellar_mass").unwrap()
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn particles_written_in_blocks() {
        let root = tmp_root("blocks");
        let mut spec = EnsembleSpec::tiny(4);
        spec.sim.particles_per_step = 1000;
        spec.particle_block_rows = 300;
        let manifest = generate(&spec, &root).unwrap();
        let path = manifest
            .file_path(0, spec.steps[0], EntityKind::Particles)
            .unwrap();
        let r = GenioReader::open(&path).unwrap();
        assert_eq!(r.header().blocks.len(), 4); // 300+300+300+100
        assert_eq!(r.header().n_rows(), 1000);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn nearest_step_resolution() {
        let root = tmp_root("nearest");
        let spec = EnsembleSpec::tiny(5);
        let manifest = generate(&spec, &root).unwrap();
        assert_eq!(manifest.nearest_step(624), 624);
        let s = manifest.nearest_step(10);
        assert!(spec.steps.contains(&s));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn invalid_specs_rejected() {
        let root = tmp_root("invalid");
        let mut spec = EnsembleSpec::tiny(1);
        spec.n_sims = 0;
        assert!(generate(&spec, &root).is_err());
        let mut spec = EnsembleSpec::tiny(1);
        spec.steps = vec![100, 100];
        assert!(generate(&spec, &root).is_err());
        let mut spec = EnsembleSpec::tiny(1);
        spec.steps = vec![900];
        assert!(generate(&spec, &root).is_err());
    }

    #[test]
    fn params_json_written_per_sim() {
        let root = tmp_root("params");
        let spec = EnsembleSpec::tiny(8);
        generate(&spec, &root).unwrap();
        let text = std::fs::read_to_string(root.join("sim_0001/params.json")).unwrap();
        let p: SubgridParams = serde_json::from_str(&text).unwrap();
        let expected = latin_hypercube(2, 8)[1];
        assert_eq!(p, expected);
        std::fs::remove_dir_all(&root).ok();
    }
}
