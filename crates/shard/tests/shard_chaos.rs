//! Chaos tests for the shard-worker fault boundary.
//!
//! Contract under faults:
//! * transient failures (injected errors, torn fragment sends) are
//!   retried and the final answer is bit-identical to the no-fault run;
//! * permanent corruption of a shard's partition surfaces as a typed
//!   [`DbError::CorruptChunk`]-class error — **never** a partial
//!   answer;
//! * exhausted retries surface the underlying error, also never a
//!   partial answer.
//!
//! Fault plans are process-global, so every scenario lives in one test
//! function and tears its plan down before the next.

use infera_columnar::{Database, DbError};
use infera_frame::{Column, DataFrame};
use infera_shard::{ShardLayout, ShardedDb};
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("infera_shard_chaos")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn load(db: &ShardedDb) {
    let n_sims = db.layout().n_sims;
    let mut sim = Vec::new();
    let mut mass = Vec::new();
    let mut tag = Vec::new();
    for s in 0..n_sims {
        for r in 0..30u32 {
            sim.push(i64::from(s));
            mass.push(f64::from((s * 31 + r) % 97));
            tag.push(format!("t{}", (s + r) % 3));
        }
    }
    let frame = DataFrame::from_columns([
        ("sim", Column::I64(sim)),
        ("mass", Column::F64(mass)),
        ("tag", Column::Str(tag)),
    ])
    .unwrap();
    db.create_table("halos", &frame.schema()).unwrap();
    db.append("halos", &frame).unwrap();
}

fn digest(frame: &DataFrame) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in frame.to_csv_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const SQL: &str =
    "SELECT tag, COUNT(*) AS n, SUM(mass) AS m, MEDIAN(mass) AS med \
     FROM halos GROUP BY tag ORDER BY tag";

fn install(spec: &str) {
    infera_faults::install(infera_faults::FaultPlan::parse(spec).unwrap());
}

#[test]
fn faults_retry_or_fail_typed_never_partial() {
    infera_faults::clear();
    let dir = fresh_dir("db");
    let layout = ShardLayout::build(4, 8, 0xabcd);
    let obs = infera_obs::Obs::new();
    let db = ShardedDb::create(&dir, layout, obs.clone()).unwrap();
    load(&db);

    // Anchor: the no-fault answer, cross-checked against a serial run.
    let baseline = db.query(SQL).unwrap();
    let anchor = digest(&baseline);
    {
        let serial_dir = fresh_dir("serial");
        let serial = Database::create(&serial_dir).unwrap();
        let schema = db.table_schema("halos").unwrap();
        serial.create_table("halos", &schema).unwrap();
        let cols: Vec<&str> = schema.iter().map(|(n, _)| n.as_str()).collect();
        for shard in db.shards() {
            serial
                .append("halos", &shard.scan_all("halos", &cols).unwrap())
                .unwrap();
        }
        assert_eq!(digest(&serial.query(SQL).unwrap()), anchor, "serial anchor");
        std::fs::remove_dir_all(&serial_dir).ok();
    }

    // 1. Transient send failure: retried, bit-identical digest.
    install("seed=7;shard.send=nth1:error");
    let (frame, _, info) = db.query_traced(SQL).unwrap();
    assert_eq!(digest(&frame), anchor, "transient send error");
    assert_eq!(
        info.per_shard.iter().map(|s| s.retries).sum::<u32>(),
        1,
        "one retry consumed"
    );
    infera_faults::clear();

    // 2. Torn send (corrupt wire bytes): deserialization fails on the
    //    worker, the combiner re-sends, digest unchanged.
    install("seed=7;shard.send=nth1:corrupt");
    let (frame, _, info) = db.query_traced(SQL).unwrap();
    assert_eq!(digest(&frame), anchor, "torn send retried");
    assert!(info.per_shard.iter().any(|s| s.retries > 0));
    infera_faults::clear();

    // 3. Transient execute failure on a shard: retried, digest unchanged.
    install("seed=7;shard.exec=nth2:error");
    let frame = db.query(SQL).unwrap();
    assert_eq!(digest(&frame), anchor, "transient exec error");
    infera_faults::clear();

    // 4. Permanently corrupt shard partition: a typed CorruptChunk
    //    error naming the shard — never retried, never a partial frame.
    install("seed=7;shard.exec=nth1:corrupt");
    let before = obs.metrics.counter(infera_obs::metric_names::RETRY_ATTEMPTS);
    let err = db.query(SQL).unwrap_err();
    match &err {
        DbError::CorruptChunk {
            table,
            column,
            chunk,
            reason,
        } => {
            assert_eq!(table, "halos");
            assert_eq!(column, "<shard-partition>");
            assert_eq!(*chunk, 0, "first shard's partition");
            assert!(
                reason.contains(infera_faults::INJECTED_MARKER),
                "reason carries the injection marker: {reason}"
            );
        }
        other => panic!("expected CorruptChunk, got {other:?}"),
    }
    assert_eq!(
        obs.metrics.counter(infera_obs::metric_names::RETRY_ATTEMPTS),
        before,
        "corruption is permanent: no retry burned"
    );
    infera_faults::clear();

    // 5. Persistent transient failure: retries exhaust, the error
    //    propagates (not a partial answer) and the exhaustion counter
    //    moves.
    install("seed=7;shard.exec=every1:error");
    let before = obs.metrics.counter(infera_obs::metric_names::RETRY_EXHAUSTED);
    let err = db.query(SQL).unwrap_err();
    assert!(
        matches!(err, DbError::Io(ref m) if m.contains(infera_faults::INJECTED_MARKER)),
        "exhausted retries surface the injected error: {err:?}"
    );
    assert!(
        obs.metrics.counter(infera_obs::metric_names::RETRY_EXHAUSTED) > before,
        "retry exhaustion recorded"
    );
    infera_faults::clear();

    // 6. Transient merge failure: combine retries, digest unchanged.
    install("seed=7;shard.merge=nth1:error");
    let frame = db.query(SQL).unwrap();
    assert_eq!(digest(&frame), anchor, "transient merge error");
    infera_faults::clear();

    // 7. Corrupt merge: typed corruption error, no partial answer.
    install("seed=7;shard.merge=nth1:corrupt");
    let err = db.query(SQL).unwrap_err();
    assert!(
        matches!(err, DbError::Corrupt(_)),
        "merge corruption is typed: {err:?}"
    );
    infera_faults::clear();

    // After all that chaos the database still answers correctly.
    assert_eq!(digest(&db.query(SQL).unwrap()), anchor, "post-chaos run");
    std::fs::remove_dir_all(&dir).ok();
}
