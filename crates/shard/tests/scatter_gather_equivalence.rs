//! Scatter-gather equivalence: a [`ShardedDb`] must produce results
//! bit-identical to a single [`Database`] holding the same rows, for
//! every execution strategy (scatter, shard-local, gather fallback),
//! every shard count 1..=8 (including layouts with empty shards), and
//! the full query surface: filters, joins, grouped aggregates
//! (including the value-shipping MEDIAN/FIRST/LAST), projections and
//! LIMIT.
//!
//! Measures are integer-valued f64 so that sums are exact: bitwise
//! equality across accumulation orders is only meaningful when the
//! arithmetic itself is order-independent.

use infera_columnar::Database;
use infera_frame::{Column, DataFrame};
use infera_shard::{ShardLayout, ShardedDb};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("infera_shard_equiv")
        .join(format!("{tag}_{id}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Both sides of the comparison, loaded with identical batches.
struct Pair {
    single: Database,
    sharded: ShardedDb,
    single_dir: PathBuf,
    sharded_dir: PathBuf,
}

impl Pair {
    fn new(n_shards: usize, n_sims: u32) -> Pair {
        let single_dir = fresh_dir("single");
        let sharded_dir = fresh_dir("sharded");
        let single = Database::create(&single_dir).unwrap();
        let layout = ShardLayout::build(n_shards, n_sims, 0xfeed);
        let sharded = ShardedDb::create(&sharded_dir, layout, infera_obs::Obs::new()).unwrap();
        Pair {
            single,
            sharded,
            single_dir,
            sharded_dir,
        }
    }

    fn create_table(&self, name: &str, schema: &[(String, infera_frame::DType)]) {
        self.single.create_table(name, schema).unwrap();
        self.sharded.create_table(name, schema).unwrap();
    }

    fn append(&self, name: &str, batch: &DataFrame) {
        self.single.append(name, batch).unwrap();
        self.sharded.append(name, batch).unwrap();
    }

    fn check(&self, sql: &str) {
        let expected = self.single.query(sql).unwrap();
        let actual = self.sharded.query(sql).unwrap();
        assert_frames_bit_identical(&expected, &actual, sql);
    }
}

impl Drop for Pair {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.single_dir).ok();
        std::fs::remove_dir_all(&self.sharded_dir).ok();
    }
}

/// Bit-exact frame equality: same schema, same row count, and f64
/// columns compared by bit pattern (NaN payloads and signed zeros
/// included), which `PartialEq` cannot express.
fn assert_frames_bit_identical(expected: &DataFrame, actual: &DataFrame, sql: &str) {
    assert_eq!(expected.schema(), actual.schema(), "schema for {sql}");
    assert_eq!(expected.n_rows(), actual.n_rows(), "row count for {sql}");
    for (name, _) in expected.schema() {
        let e = expected.column(&name).unwrap();
        let a = actual.column(&name).unwrap();
        match (e, a) {
            (Column::F64(x), Column::F64(y)) => {
                for (i, (p, q)) in x.iter().zip(y.iter()).enumerate() {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "column '{name}' row {i} for {sql}: {p} vs {q}"
                    );
                }
            }
            _ => assert_eq!(e, a, "column '{name}' for {sql}"),
        }
    }
}

/// Deterministic halo-like table, ordered by sim ascending so that the
/// single database's global row order equals the shard-order
/// concatenation (the invariant the combiner relies on).
fn halos_frame(n_sims: u32, rows_per_sim: usize) -> DataFrame {
    halos_frame_range(0, n_sims, rows_per_sim, 0x9e37)
}

fn halos_frame_range(sim_lo: u32, sim_hi: u32, rows_per_sim: usize, salt: u64) -> DataFrame {
    let mut sim = Vec::new();
    let mut step = Vec::new();
    let mut mass = Vec::new();
    let mut npart = Vec::new();
    let mut tag = Vec::new();
    let mut state = salt;
    for s in sim_lo..sim_hi {
        for r in 0..rows_per_sim {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            sim.push(i64::from(s));
            step.push((r % 3) as i64);
            mass.push(f64::from((state >> 33) as u32 % 1000));
            npart.push((state >> 17) as i64 % 500);
            tag.push(format!("t{}", state % 4));
        }
    }
    DataFrame::from_columns([
        ("sim", Column::I64(sim)),
        ("step", Column::I64(step)),
        ("mass", Column::F64(mass)),
        ("npart", Column::I64(npart)),
        ("tag", Column::Str(tag)),
    ])
    .unwrap()
}

/// Replicated dimension table (no `sim` column → copied to all shards).
fn dim_frame() -> DataFrame {
    DataFrame::from_columns([
        (
            "tag",
            Column::Str((0..4).map(|t| format!("t{t}")).collect()),
        ),
        ("weight", Column::F64(vec![2.0, 5.0, 7.0, 11.0])),
        (
            "label",
            Column::Str(["low", "low", "high", "high"].map(String::from).to_vec()),
        ),
    ])
    .unwrap()
}

/// The query surface under test. Every strategy appears: scatter
/// (partitioned base), shard-local (replicated only), gather fallback
/// (partitioned build side).
const QUERIES: &[&str] = &[
    // Grouped aggregates over the partitioned table.
    "SELECT sim, COUNT(*) AS n FROM halos GROUP BY sim ORDER BY sim",
    "SELECT tag, SUM(mass) AS m, MIN(mass) AS lo, MAX(mass) AS hi \
     FROM halos GROUP BY tag ORDER BY tag",
    "SELECT tag, AVG(mass) AS avg_m, STD(mass) AS std_m \
     FROM halos GROUP BY tag ORDER BY tag",
    // Value-shipping aggregates: exact across any partitioning.
    "SELECT tag, MEDIAN(mass) AS med, FIRST(mass) AS f, LAST(mass) AS l \
     FROM halos GROUP BY tag ORDER BY tag",
    "SELECT step, MEDIAN(npart) AS med_n, FIRST(sim) AS f, LAST(sim) AS l \
     FROM halos GROUP BY step ORDER BY step",
    // Whole-table aggregates, including the zero-row synthesis path.
    "SELECT COUNT(*) AS n, SUM(mass) AS m, MEDIAN(mass) AS med FROM halos",
    "SELECT COUNT(*) AS n, MAX(mass) AS hi, FIRST(mass) AS f FROM halos WHERE mass < -1",
    // Filters and projections, with and without ORDER BY / LIMIT.
    "SELECT sim, mass FROM halos WHERE mass > 500 ORDER BY sim, mass LIMIT 20",
    "SELECT sim, step, mass FROM halos WHERE step = 1 LIMIT 17",
    "SELECT sim, tag, mass FROM halos WHERE tag = 't2' AND npart > 100 \
     ORDER BY mass, sim LIMIT 9",
    // Joins against the replicated dimension (scatter with build side).
    "SELECT tag, SUM(weight) AS w, COUNT(*) AS n \
     FROM halos JOIN dim ON halos.tag = dim.tag GROUP BY tag ORDER BY tag",
    "SELECT label, COUNT(*) AS n, MEDIAN(mass) AS med \
     FROM halos JOIN dim ON halos.tag = dim.tag GROUP BY label ORDER BY label",
    "SELECT sim, mass, weight FROM halos JOIN dim ON halos.tag = dim.tag \
     WHERE mass > 300 ORDER BY sim, mass, weight LIMIT 50",
    // Replicated-only query: shard-local strategy.
    "SELECT tag, SUM(weight) AS w FROM dim GROUP BY tag ORDER BY tag",
    // Partitioned build side: gather fallback.
    "SELECT tag, COUNT(*) AS n FROM dim JOIN halos ON dim.tag = halos.tag \
     GROUP BY tag ORDER BY tag",
];

fn run_suite(n_shards: usize, n_sims: u32, rows_per_sim: usize) {
    let pair = Pair::new(n_shards, n_sims);
    let halos = halos_frame(n_sims, rows_per_sim);
    let dim = dim_frame();
    pair.create_table("halos", &halos.schema());
    pair.create_table("dim", &dim.schema());
    pair.append("halos", &halos);
    pair.append("dim", &dim);
    for sql in QUERIES {
        pair.check(sql);
    }
}

#[test]
fn equivalence_across_shard_counts() {
    for n_shards in 1..=8 {
        run_suite(n_shards, 6, 40);
    }
}

#[test]
fn equivalence_with_empty_shards() {
    // More shards than sims: some shards own empty ranges and ship
    // zero-row partials; the combiner must be indifferent.
    run_suite(8, 3, 25);
    run_suite(5, 2, 30);
}

/// Queries whose result depends on physical row order: FIRST/LAST ship
/// the first/last value *in append order*, and a LIMIT without a total
/// ORDER BY picks whichever rows come first. These are bit-identical
/// only under the loader's append discipline (sims non-decreasing
/// across batches); everything else is order-insensitive and exact for
/// any append order.
const ORDER_SENSITIVE: &[&str] = &[
    "SELECT tag, MEDIAN(mass) AS med, FIRST(mass) AS f, LAST(mass) AS l \
     FROM halos GROUP BY tag ORDER BY tag",
    "SELECT step, MEDIAN(npart) AS med_n, FIRST(sim) AS f, LAST(sim) AS l \
     FROM halos GROUP BY step ORDER BY step",
    "SELECT sim, step, mass FROM halos WHERE step = 1 LIMIT 17",
];

#[test]
fn equivalence_with_multiple_batches() {
    // Appends arrive in several sim-monotonic batches (the ensemble
    // loader's discipline: one batch per file, files in sim order) —
    // routing must keep per-shard row order equal to the serial append
    // order, so even FIRST/LAST agree.
    let pair = Pair::new(4, 8);
    let dim = dim_frame();
    let schema = halos_frame(1, 1).schema();
    pair.create_table("halos", &schema);
    pair.create_table("dim", &dim.schema());
    pair.append("dim", &dim);
    pair.append("halos", &halos_frame_range(0, 3, 10, 1));
    pair.append("halos", &halos_frame_range(3, 6, 7, 2));
    pair.append("halos", &halos_frame_range(6, 8, 5, 3));
    for sql in QUERIES {
        pair.check(sql);
    }
}

#[test]
fn equivalence_with_out_of_order_batches() {
    // Batches revisit earlier sims, so shard-order concatenation is a
    // permutation of the serial append order. Order-insensitive results
    // (counts, exact sums, min/max, median, ordered projections) must
    // still be bit-identical.
    let pair = Pair::new(4, 8);
    let dim = dim_frame();
    let schema = halos_frame(1, 1).schema();
    pair.create_table("halos", &schema);
    pair.create_table("dim", &dim.schema());
    pair.append("dim", &dim);
    pair.append("halos", &halos_frame_range(0, 8, 10, 4));
    pair.append("halos", &halos_frame_range(0, 8, 7, 5));
    pair.append("halos", &halos_frame_range(2, 4, 5, 6));
    for sql in QUERIES {
        if !ORDER_SENSITIVE.contains(sql) {
            pair.check(sql);
        }
    }
}

#[test]
fn create_table_as_matches() {
    let pair = Pair::new(3, 6);
    let halos = halos_frame(6, 20);
    pair.create_table("halos", &halos.schema());
    pair.append("halos", &halos);
    let sql = "CREATE TABLE per_sim AS \
               SELECT sim, COUNT(*) AS n, SUM(mass) AS m FROM halos GROUP BY sim ORDER BY sim";
    pair.single.execute_sql(sql).unwrap();
    pair.sharded.execute_sql(sql).unwrap();
    // The derived table carries `sim` so it partitions too; reading it
    // back must agree.
    pair.check("SELECT sim, n, m FROM per_sim ORDER BY sim");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random data shapes and shard counts: the full query list must be
    /// bit-identical between single and sharded execution.
    #[test]
    fn random_data_is_bit_identical(
        n_shards in 1usize..=8,
        n_sims in 1u32..=10,
        rows_per_sim in 1usize..=60,
    ) {
        run_suite(n_shards, n_sims, rows_per_sim);
    }
}
