//! Golden-file test pinning the serialized plan-fragment wire format,
//! plus hygiene checks for the shard observability counters.
//!
//! The fragment JSON is what travels from combiner to shard workers; a
//! change to its shape is a wire-protocol change and must be made
//! deliberately (bump `WIRE_VERSION`, regenerate the golden with
//! `UPDATE_GOLDEN=1`). The comparison is structural (parsed JSON), so
//! formatting differences between serializers don't count as drift.

use infera_columnar::sql::ast::Statement;
use infera_columnar::sql::physical::PhysicalPlan;
use infera_columnar::sql::{logical, parser, physical, plan as sql_plan};
use infera_columnar::{Database, FragmentMode, PlanFragment};
use infera_frame::{Column, DataFrame};
use infera_obs::metric_names;
use infera_shard::{ShardLayout, ShardedDb};
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fragment_plan.json")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("infera_shard_golden")
        .join(format!("{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Fixed dataset → fixed statistics → a deterministic physical plan.
fn fixture_frame() -> DataFrame {
    let n = 48usize;
    DataFrame::from_columns([
        (
            "sim",
            Column::I64((0..n).map(|i| (i / 12) as i64).collect()),
        ),
        (
            "mass",
            Column::F64((0..n).map(|i| f64::from((i as u32 * 37) % 100)).collect()),
        ),
        (
            "tag",
            Column::Str((0..n).map(|i| format!("t{}", i % 3)).collect()),
        ),
    ])
    .unwrap()
}

const SQL: &str = "SELECT tag, COUNT(*) AS n, SUM(mass) AS m, MEDIAN(mass) AS med \
                   FROM halos WHERE mass > 10 GROUP BY tag ORDER BY tag";

fn plan_of(db: &Database, sql: &str) -> PhysicalPlan {
    let sel = match parser::parse(sql).unwrap() {
        Statement::Select(sel) => sel,
        other => panic!("expected SELECT, got {other:?}"),
    };
    let resolved = sql_plan::resolve(&sel, db).unwrap();
    let lp = logical::build(resolved);
    physical::optimize(db, &lp)
}

fn representative_fragment(db: &Database) -> PlanFragment {
    PlanFragment::from_plan(&plan_of(db, SQL))
}

#[test]
fn fragment_wire_format_matches_golden() {
    let dir = fresh_dir("db");
    let db = Database::create(&dir).unwrap();
    let frame = fixture_frame();
    db.create_table("halos", &frame.schema()).unwrap();
    db.append("halos", &frame).unwrap();

    let frag = representative_fragment(&db);
    assert_eq!(frag.mode, FragmentMode::PartialAggregate);
    let wire = frag.to_json().unwrap();

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), &wire).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1");

    // Structural comparison: parsed JSON values, not bytes.
    let got: serde_json::Value = serde_json::from_str(&wire).unwrap();
    let want: serde_json::Value = serde_json::from_str(&golden).unwrap();
    assert_eq!(
        got, want,
        "plan-fragment wire format drifted; if intentional, bump WIRE_VERSION \
         and regenerate with UPDATE_GOLDEN=1"
    );

    // The golden bytes must round-trip into an executable fragment with
    // the same plan hash as a freshly planned one.
    let reloaded = PlanFragment::from_json(&golden).unwrap();
    assert_eq!(reloaded.plan_hash(), frag.plan_hash());

    // Hash is a pure function of the serialized plan: identical across
    // repeated planning, different for a different query.
    assert_eq!(representative_fragment(&db).plan_hash(), frag.plan_hash());
    let other = plan_of(&db, "SELECT COUNT(*) AS n FROM halos");
    assert_ne!(PlanFragment::from_plan(&other).plan_hash(), frag.plan_hash());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_metrics_are_declared_and_move() {
    // Hygiene: every shard counter is declared in the metric registry's
    // canonical name list (undeclared names panic in debug builds
    // elsewhere; here we pin the names themselves).
    for name in [
        "shard.fragments_sent",
        "shard.partials_merged",
        "shard.combine_ms",
        "shard.plan_cache_hits",
    ] {
        assert!(
            metric_names::is_declared(name),
            "metric '{name}' not declared in metric_names::all()"
        );
    }
    assert_eq!(metric_names::SHARD_FRAGMENTS_SENT, "shard.fragments_sent");
    assert_eq!(metric_names::SHARD_PARTIALS_MERGED, "shard.partials_merged");
    assert_eq!(metric_names::SHARD_COMBINE_MS, "shard.combine_ms");
    assert_eq!(metric_names::SHARD_PLAN_CACHE_HITS, "shard.plan_cache_hits");

    // And they move under a real scatter-gather run.
    let dir = fresh_dir("metrics");
    let obs = infera_obs::Obs::new();
    let db = ShardedDb::create(&dir, ShardLayout::build(3, 6, 1), obs.clone()).unwrap();
    let frame = fixture_frame();
    db.create_table("halos", &frame.schema()).unwrap();
    db.append("halos", &frame).unwrap();

    db.query(SQL).unwrap();
    assert_eq!(
        obs.metrics.counter(metric_names::SHARD_FRAGMENTS_SENT),
        3,
        "one fragment per shard"
    );
    assert!(obs.metrics.counter(metric_names::SHARD_PARTIALS_MERGED) > 0);
    let combine = obs
        .metrics
        .histogram(metric_names::SHARD_COMBINE_MS)
        .expect("combine_ms histogram populated");
    assert_eq!(combine.count, 1);
    assert_eq!(obs.metrics.counter(metric_names::SHARD_PLAN_CACHE_HITS), 0);

    // Same query again: the serialized fragment comes from the cache.
    db.query(SQL).unwrap();
    assert_eq!(obs.metrics.counter(metric_names::SHARD_PLAN_CACHE_HITS), 1);
    assert_eq!(obs.metrics.counter(metric_names::SHARD_FRAGMENTS_SENT), 6);

    // EXPLAIN renders the shard split: the scatter header, one line per
    // shard with estimated vs actual rows, and the combine step.
    let explain = db.explain(SQL).unwrap();
    assert!(
        explain.contains("Shard split: scatter-gather over 3 shard(s)"),
        "missing shard split header:\n{explain}"
    );
    for shard in 0..3 {
        assert!(
            explain.contains(&format!("shard {shard} [sims ")),
            "missing per-shard line {shard}:\n{explain}"
        );
    }
    assert!(explain.contains("fragment=partial-aggregate plan_hash="));
    assert!(explain.contains("est_rows=") && explain.contains("actual_rows="));
    assert!(
        explain.contains("Combine: final aggregate merge (shard order)"),
        "missing combine step:\n{explain}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
