//! Fragment-plan cache: serialized plan fragments keyed by
//! `(plan hash, shard-layout fingerprint)`.
//!
//! Serializing a fragment is pure (the same plan always yields the same
//! JSON), so repeated questions against an unchanged ensemble reuse the
//! wire bytes instead of re-serializing per query. The layout
//! fingerprint in the key invalidates entries across ensemble swaps or
//! re-partitioning, mirroring how the serve result cache keys on the
//! manifest fingerprint.

use infera_columnar::{DbResult, PlanFragment};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Bounded fragment cache. Eviction is whole-sale (clear on overflow):
/// entries are tiny and the working set is the question set, so an LRU
/// would be machinery without a workload.
pub struct FragmentCache {
    entries: Mutex<HashMap<(u64, u64), Arc<String>>>,
    capacity: usize,
}

impl FragmentCache {
    pub fn new(capacity: usize) -> FragmentCache {
        FragmentCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
        }
    }

    /// Serialized wire bytes for `frag`, from cache when present.
    /// Returns `(bytes, was_hit)`.
    pub fn get_or_serialize(
        &self,
        plan_hash: u64,
        layout_fingerprint: u64,
        frag: &PlanFragment,
    ) -> DbResult<(Arc<String>, bool)> {
        let key = (plan_hash, layout_fingerprint);
        if let Some(hit) = self.entries.lock().get(&key).cloned() {
            return Ok((hit, true));
        }
        let bytes = Arc::new(frag.to_json()?);
        let mut entries = self.entries.lock();
        if entries.len() >= self.capacity {
            entries.clear();
        }
        entries.insert(key, bytes.clone());
        Ok((bytes, false))
    }

    /// Number of cached fragments.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

impl Default for FragmentCache {
    fn default() -> Self {
        FragmentCache::new(256)
    }
}
