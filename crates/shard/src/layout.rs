//! Ensemble partitioning: contiguous simulation ranges per shard.
//!
//! A [`ShardLayout`] splits the `n_sims` ensemble members into
//! `n_shards` contiguous, non-overlapping ranges. Contiguity is what
//! makes scatter-gather bit-identical to serial execution: concatenating
//! shard results in shard order reproduces the global sim order, which
//! is the order the loader appends rows in.
//!
//! The layout persists as `shard_layout.json` under the sharded
//! database root; its presence is how callers detect a sharded layout.

use infera_columnar::{DbError, DbResult};
use infera_hacc::Manifest;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// File name of the persisted layout marker.
pub const LAYOUT_FILE: &str = "shard_layout.json";

/// Layout format version.
pub const LAYOUT_VERSION: u32 = 1;

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// One shard's slice of the ensemble.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    pub shard: usize,
    /// First simulation index (inclusive).
    pub sim_lo: u32,
    /// Last simulation index (exclusive).
    pub sim_hi: u32,
    /// Content fingerprint of this shard's partition: ensemble
    /// fingerprint folded with the shard's identity and sim range.
    pub fingerprint: u64,
}

/// Partitioning of an ensemble across shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLayout {
    pub version: u32,
    pub n_shards: usize,
    pub n_sims: u32,
    /// Fingerprint of the whole ensemble (see [`Manifest::fingerprint`]).
    pub ensemble_fingerprint: u64,
    pub shards: Vec<ShardSpec>,
}

impl ShardLayout {
    /// Build a layout splitting `n_sims` members into `n_shards`
    /// contiguous ranges (sizes differ by at most one).
    pub fn build(n_shards: usize, n_sims: u32, ensemble_fingerprint: u64) -> ShardLayout {
        let n_shards = n_shards.max(1);
        let shards = (0..n_shards)
            .map(|s| {
                let lo = (u64::from(n_sims) * s as u64 / n_shards as u64) as u32;
                let hi = (u64::from(n_sims) * (s as u64 + 1) / n_shards as u64) as u32;
                let mut h = ensemble_fingerprint;
                fnv(&mut h, &(n_shards as u64).to_le_bytes());
                fnv(&mut h, &(s as u64).to_le_bytes());
                fnv(&mut h, &lo.to_le_bytes());
                fnv(&mut h, &hi.to_le_bytes());
                ShardSpec {
                    shard: s,
                    sim_lo: lo,
                    sim_hi: hi,
                    fingerprint: h,
                }
            })
            .collect();
        ShardLayout {
            version: LAYOUT_VERSION,
            n_shards,
            n_sims,
            ensemble_fingerprint,
            shards,
        }
    }

    /// Layout derived from an ensemble manifest.
    pub fn from_manifest(manifest: &Manifest, n_shards: usize) -> ShardLayout {
        ShardLayout::build(n_shards, manifest.n_sims, manifest.fingerprint())
    }

    /// Which shard holds simulation `sim`. Out-of-range sims clamp to
    /// the nearest end (they cannot occur for a well-formed ensemble).
    /// When `n_shards > n_sims` some shards own empty ranges; those are
    /// never returned.
    pub fn shard_of_sim(&self, sim: i64) -> usize {
        if self.n_sims == 0 {
            return 0;
        }
        let sim = sim.clamp(0, i64::from(self.n_sims) - 1) as u64;
        // Inverse of the contiguous range construction in `build`.
        self.shards
            .iter()
            .position(|s| sim >= u64::from(s.sim_lo) && sim < u64::from(s.sim_hi))
            .unwrap_or(self.n_shards - 1)
    }

    /// Fingerprint of the whole layout (cache-key component): folds the
    /// ensemble fingerprint with every shard's fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.ensemble_fingerprint;
        fnv(&mut h, &(self.n_shards as u64).to_le_bytes());
        fnv(&mut h, &self.n_sims.to_le_bytes());
        for s in &self.shards {
            fnv(&mut h, &s.fingerprint.to_le_bytes());
        }
        h
    }

    /// Path of the persisted layout under a sharded database root.
    pub fn path(root: &Path) -> PathBuf {
        root.join(LAYOUT_FILE)
    }

    /// Whether `root` holds a sharded layout.
    pub fn exists(root: &Path) -> bool {
        ShardLayout::path(root).is_file()
    }

    /// Persist as `shard_layout.json` under `root`.
    pub fn save(&self, root: &Path) -> DbResult<()> {
        let text = serde_json::to_string_pretty(self)
            .map_err(|e| DbError::Io(format!("serialize shard layout: {e}")))?;
        std::fs::write(ShardLayout::path(root), text)
            .map_err(|e| DbError::Io(format!("write shard layout: {e}")))
    }

    /// Load the persisted layout from `root`.
    pub fn load(root: &Path) -> DbResult<ShardLayout> {
        let path = ShardLayout::path(root);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| DbError::Io(format!("read {}: {e}", path.display())))?;
        let layout: ShardLayout = serde_json::from_str(&text)
            .map_err(|e| DbError::Io(format!("parse {}: {e}", path.display())))?;
        if layout.version != LAYOUT_VERSION {
            return Err(DbError::Io(format!(
                "shard layout version {} unsupported (expected {LAYOUT_VERSION})",
                layout.version
            )));
        }
        Ok(layout)
    }

    /// Per-shard manifest subsets: each holds only the files of its sim
    /// range, so a shard worker can open its partition as a stand-alone
    /// (smaller) ensemble. Params and steps are restricted accordingly;
    /// fingerprints therefore differ per shard and from the whole.
    pub fn per_shard_manifests(&self, manifest: &Manifest) -> Vec<Manifest> {
        self.shards
            .iter()
            .map(|s| {
                let mut m = manifest.clone();
                m.files
                    .retain(|f| f.sim >= s.sim_lo && f.sim < s.sim_hi);
                m.params = manifest
                    .params
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i as u32 >= s.sim_lo && (*i as u32) < s.sim_hi)
                    .map(|(_, p)| *p)
                    .collect();
                m.n_sims = s.sim_hi - s.sim_lo;
                m
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_contiguous_and_cover() {
        for n_shards in 1..=8 {
            for n_sims in [1u32, 2, 3, 7, 8, 32] {
                let l = ShardLayout::build(n_shards, n_sims, 99);
                assert_eq!(l.shards[0].sim_lo, 0);
                assert_eq!(l.shards.last().unwrap().sim_hi, n_sims);
                for w in l.shards.windows(2) {
                    assert_eq!(w[0].sim_hi, w[1].sim_lo, "contiguous");
                }
                for sim in 0..n_sims {
                    let s = l.shard_of_sim(i64::from(sim));
                    assert!(sim >= l.shards[s].sim_lo && sim < l.shards[s].sim_hi);
                }
            }
        }
    }

    #[test]
    fn fingerprints_distinguish_shards_and_layouts() {
        let a = ShardLayout::build(4, 32, 7);
        let b = ShardLayout::build(8, 32, 7);
        let c = ShardLayout::build(4, 32, 8);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        let fps: std::collections::HashSet<u64> =
            a.shards.iter().map(|s| s.fingerprint).collect();
        assert_eq!(fps.len(), 4, "per-shard fingerprints distinct");
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("infera_shard_layout_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let l = ShardLayout::build(3, 10, 42);
        assert!(!ShardLayout::exists(&dir));
        l.save(&dir).unwrap();
        assert!(ShardLayout::exists(&dir));
        assert_eq!(ShardLayout::load(&dir).unwrap(), l);
        std::fs::remove_dir_all(&dir).ok();
    }
}
