//! Sharded scatter-gather execution.
//!
//! A [`ShardedDb`] holds one columnar [`Database`] per ensemble
//! partition (`shard_0000/`, `shard_0001/`, ... under one root, plus a
//! persisted [`ShardLayout`]). Queries scatter as serialized
//! [`PlanFragment`]s to each shard, execute over only that shard's
//! partition, and gather partial results into a combiner that merges
//! them in shard order — bit-identical to executing the same SQL on a
//! single database holding all the rows (see the determinism argument
//! on [`infera_columnar::sql::fragment::combine`]).
//!
//! ## Table disposition
//!
//! A table is **partitioned** iff its schema carries an `I64` `sim`
//! column: appends route each row to the shard owning its simulation.
//! Every other table is **replicated** to all shards. The disposition
//! is derived from the schema alone, so it never needs separate
//! bookkeeping and cannot drift.
//!
//! ## Strategy selection
//!
//! * partitioned base scan, replicated build sides → **scatter**;
//! * no partitioned table anywhere → **shard 0 only** (all data local);
//! * a partitioned table on a join's build side → **gather fallback**:
//!   the referenced tables are merged (in shard order) into a scratch
//!   database and the query runs serially there. Shard-local joins
//!   would miss cross-sim key matches, so this is the only safe plan.

use crate::cache::FragmentCache;
use crate::layout::ShardLayout;
use infera_columnar::sql::ast::{SelectStmt, Statement};
use infera_columnar::sql::cost::Stats;
use infera_columnar::sql::exec::{self as sql_exec};
use infera_columnar::sql::fragment::{self, FragmentOutput, PlanFragment};
use infera_columnar::sql::physical::{ExplainActuals, PhysicalPlan};
use infera_columnar::sql::{logical, parser, physical, plan as sql_plan};
use infera_columnar::{Database, DbError, DbResult, ExecOutcome, ExecStats, FragmentMode};
use infera_frame::{BinOp, DType, DataFrame, Expr};
use infera_obs::metric_names;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Retries per shard fragment on transient failure (injected or
/// organic I/O errors). Corruption is never retried.
const FRAGMENT_RETRIES: u32 = 2;

/// How one statement was executed across the shard set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fragments scattered to every shard, partials combined.
    Scatter,
    /// All referenced tables replicated: executed on shard 0 only.
    ShardLocal,
    /// Partitioned build side: tables gathered into a scratch database
    /// and executed serially.
    Gather,
}

impl Strategy {
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Scatter => "scatter",
            Strategy::ShardLocal => "shard-local",
            Strategy::Gather => "gather-fallback",
        }
    }
}

/// Per-shard execution record (explain / bench surface).
#[derive(Debug, Clone)]
pub struct ShardExecInfo {
    pub shard: usize,
    pub sim_lo: u32,
    pub sim_hi: u32,
    /// Rows the fragment shipped back (partial groups or rows).
    pub partial_rows: u64,
    pub morsels: u64,
    pub workers: u64,
    pub rows_scanned: u64,
    /// Wall-clock of this shard's send + execute, milliseconds.
    pub wall_ms: f64,
    /// Transient-failure retries consumed.
    pub retries: u32,
}

/// Full record of one scatter-gather run.
#[derive(Debug, Clone)]
pub struct ShardRunInfo {
    pub strategy: Strategy,
    pub fragment_mode: Option<FragmentMode>,
    pub plan_hash: u64,
    pub cache_hit: bool,
    pub est_rows: u64,
    pub per_shard: Vec<ShardExecInfo>,
    pub combine_ms: f64,
    pub rows_output: u64,
}

/// A columnar database split across ensemble partitions.
pub struct ShardedDb {
    root: PathBuf,
    layout: ShardLayout,
    shards: Vec<Database>,
    obs: infera_obs::Obs,
    cache: FragmentCache,
}

fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard_{shard:04}"))
}

/// Cap each shard's morsel pool so N co-resident shard workers don't
/// oversubscribe one machine.
fn per_shard_worker_cap(n_shards: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores / n_shards.max(1)).max(1)
}

impl ShardedDb {
    /// Create (or reopen) a sharded database under `root`.
    pub fn create(root: &Path, layout: ShardLayout, obs: infera_obs::Obs) -> DbResult<ShardedDb> {
        std::fs::create_dir_all(root)
            .map_err(|e| DbError::Io(format!("mkdir {}: {e}", root.display())))?;
        layout.save(root)?;
        let cap = per_shard_worker_cap(layout.n_shards);
        let mut shards = Vec::with_capacity(layout.n_shards);
        for s in 0..layout.n_shards {
            let mut db = Database::create(&shard_dir(root, s))?;
            db.set_obs(obs.clone());
            db.worker_cap = Some(cap);
            shards.push(db);
        }
        Ok(ShardedDb {
            root: root.to_path_buf(),
            layout,
            shards,
            obs,
            cache: FragmentCache::default(),
        })
    }

    /// Open an existing sharded database (its layout marker must exist).
    pub fn open(root: &Path) -> DbResult<ShardedDb> {
        let layout = ShardLayout::load(root)?;
        ShardedDb::create(root, layout, infera_obs::Obs::new())
    }

    /// Whether `root` holds a sharded layout.
    pub fn is_sharded(root: &Path) -> bool {
        ShardLayout::exists(root)
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    pub fn obs(&self) -> &infera_obs::Obs {
        &self.obs
    }

    /// Re-home the shard set onto a different observability context.
    pub fn set_obs(&mut self, obs: infera_obs::Obs) {
        for db in &mut self.shards {
            db.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// The shard databases, in shard order.
    pub fn shards(&self) -> &[Database] {
        &self.shards
    }

    // ---------------------------------------------------------- tables

    /// Whether `table` is partitioned by simulation (schema rule: it
    /// carries an `I64` `sim` column).
    pub fn is_partitioned(&self, table: &str) -> DbResult<bool> {
        let schema = self.shards[0].table_schema(table)?;
        Ok(schema
            .iter()
            .any(|(n, d)| n == "sim" && *d == DType::I64))
    }

    /// Create `name` on every shard.
    pub fn create_table(&self, name: &str, schema: &[(String, DType)]) -> DbResult<()> {
        for db in &self.shards {
            db.create_table(name, schema)?;
        }
        Ok(())
    }

    /// Append a batch. Partitioned tables route rows to the shard
    /// owning each row's `sim`; replicated tables append everywhere.
    pub fn append(&self, name: &str, batch: &DataFrame) -> DbResult<()> {
        if !self.is_partitioned(name)? {
            for db in &self.shards {
                db.append(name, batch)?;
            }
            return Ok(());
        }
        if !batch.schema().iter().any(|(n, d)| n == "sim" && *d == DType::I64) {
            return Err(DbError::Exec(format!(
                "append to partitioned table '{name}' requires an I64 'sim' column"
            )));
        }
        // Boundary shards take unbounded ends so out-of-range sims (which
        // a well-formed loader never produces) still land deterministically
        // instead of vanishing.
        let first = self.layout.shard_of_sim(0);
        let last = self
            .layout
            .shard_of_sim(i64::from(self.layout.n_sims.max(1)) - 1);
        for spec in &self.layout.shards {
            let lower = (spec.shard != first).then(|| {
                Expr::bin(
                    Expr::col("sim"),
                    BinOp::Ge,
                    Expr::lit(i64::from(spec.sim_lo)),
                )
            });
            let upper = (spec.shard != last).then(|| {
                Expr::bin(
                    Expr::col("sim"),
                    BinOp::Lt,
                    Expr::lit(i64::from(spec.sim_hi)),
                )
            });
            let sub = match (lower, upper) {
                (Some(lo), Some(hi)) => batch.filter_expr(&Expr::bin(lo, BinOp::And, hi))?,
                (Some(p), None) | (None, Some(p)) => batch.filter_expr(&p)?,
                (None, None) => batch.clone(),
            };
            if sub.n_rows() > 0 {
                self.shards[spec.shard].append(name, &sub)?;
            }
        }
        Ok(())
    }

    /// Tables present (identical across shards; shard 0 is canonical).
    pub fn list_tables(&self) -> Vec<String> {
        self.shards[0].list_tables()
    }

    /// Schema of `table` (identical across shards).
    pub fn table_schema(&self, table: &str) -> DbResult<Vec<(String, DType)>> {
        self.shards[0].table_schema(table)
    }

    /// Row count: summed across shards for partitioned tables, shard
    /// 0's count for replicated ones.
    pub fn n_rows(&self, table: &str) -> DbResult<u64> {
        if self.is_partitioned(table)? {
            let mut total = 0u64;
            for db in &self.shards {
                total += db.n_rows(table)?;
            }
            Ok(total)
        } else {
            self.shards[0].n_rows(table)
        }
    }

    /// Encoded bytes actually stored, summed over all shards
    /// (replicated tables genuinely occupy space on each).
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(Database::total_bytes).sum()
    }

    /// Logical bytes represented, summed over all shards.
    pub fn total_logical_bytes(&self) -> u64 {
        self.shards.iter().map(Database::total_logical_bytes).sum()
    }

    // ----------------------------------------------------------- query

    /// Parse and execute a SELECT, returning the result frame.
    pub fn query(&self, sql: &str) -> DbResult<DataFrame> {
        Ok(self.query_with_stats(sql)?.0)
    }

    /// Parse and execute a SELECT, returning frame + merged stats.
    pub fn query_with_stats(&self, sql: &str) -> DbResult<(DataFrame, ExecStats)> {
        let (frame, stats, _) = self.query_traced(sql)?;
        Ok((frame, stats))
    }

    /// [`ShardedDb::query_with_stats`] plus the scatter-gather record
    /// (strategy, per-shard counters, combine time).
    pub fn query_traced(&self, sql: &str) -> DbResult<(DataFrame, ExecStats, ShardRunInfo)> {
        match parser::parse(sql)? {
            Statement::Select(sel) => self.run_select(&sel),
            other => Err(DbError::Plan(format!(
                "query() expects SELECT, got {other:?}; use execute_sql()"
            ))),
        }
    }

    /// Parse and execute any SQL statement across the shard set.
    pub fn execute_sql(&self, sql: &str) -> DbResult<ExecOutcome> {
        match parser::parse(sql)? {
            Statement::Select(sel) => {
                let (frame, stats, _) = self.run_select(&sel)?;
                Ok(ExecOutcome { frame, stats })
            }
            Statement::CreateTableAs { name, select } => {
                let (frame, stats, _) = self.run_select(&select)?;
                if frame.n_cols() == 0 {
                    return Err(DbError::Plan(format!(
                        "CREATE TABLE {name} AS produced no columns"
                    )));
                }
                self.create_table(&name, &frame.schema())?;
                self.append(&name, &frame)?;
                Ok(ExecOutcome {
                    frame: DataFrame::new(),
                    stats,
                })
            }
            stmt @ Statement::DropTable { .. } => {
                let mut last = ExecOutcome {
                    frame: DataFrame::new(),
                    stats: ExecStats::default(),
                };
                for db in &self.shards {
                    last = sql_exec::execute(db, &stmt)?;
                }
                Ok(last)
            }
        }
    }

    /// EXPLAIN: execute and render the physical plan tree followed by
    /// the shard-split section (fragments per shard, partial-vs-final
    /// aggregation steps, estimated vs actual rows per tier).
    pub fn explain(&self, sql: &str) -> DbResult<String> {
        let sel = match parser::parse(sql)? {
            Statement::Select(sel) => sel,
            other => {
                return Err(DbError::Plan(format!(
                    "explain() expects SELECT, got {other:?}"
                )))
            }
        };
        let plan = self.plan_select(&sel)?;
        let (_, stats, info) = self.run_select(&sel)?;
        let actuals = ExplainActuals {
            stats,
            morsels: info.per_shard.iter().map(|s| s.morsels).sum(),
            workers: info.per_shard.iter().map(|s| s.workers).max().unwrap_or(1),
        };
        let mut out = plan.render(Some(&actuals));
        out.push_str(&render_shard_split(&plan, &info));
        Ok(out)
    }

    /// Resolve + cost-optimize a SELECT against combined shard stats.
    fn plan_select(&self, sel: &SelectStmt) -> DbResult<PhysicalPlan> {
        let resolved = sql_plan::resolve(sel, &self.shards[0])?;
        let lp = logical::build(resolved);
        let stats = CombinedStats { db: self };
        Ok(physical::optimize(&stats, &lp))
    }

    /// Pick the execution strategy for a planned SELECT.
    fn strategy_for(&self, plan: &PhysicalPlan) -> DbResult<Strategy> {
        let base_partitioned = self.is_partitioned(&plan.scans[0].spec.table)?;
        let mut build_partitioned = false;
        for j in &plan.joins {
            if self.is_partitioned(&plan.scans[j.scan_idx].spec.table)? {
                build_partitioned = true;
            }
        }
        Ok(if build_partitioned {
            // Shard-local joins would miss cross-sim key matches.
            Strategy::Gather
        } else if base_partitioned {
            Strategy::Scatter
        } else {
            Strategy::ShardLocal
        })
    }

    fn run_select(&self, sel: &SelectStmt) -> DbResult<(DataFrame, ExecStats, ShardRunInfo)> {
        let plan = self.plan_select(sel)?;
        match self.strategy_for(&plan)? {
            Strategy::Scatter => self.run_scatter(&plan),
            Strategy::ShardLocal => {
                let (frame, stats) = sql_exec::run_select(&self.shards[0], sel)?;
                let rows = frame.n_rows() as u64;
                let info = ShardRunInfo {
                    strategy: Strategy::ShardLocal,
                    fragment_mode: None,
                    plan_hash: plan.plan_hash(),
                    cache_hit: false,
                    est_rows: plan.est.rows,
                    per_shard: Vec::new(),
                    combine_ms: 0.0,
                    rows_output: rows,
                };
                Ok((frame, stats, info))
            }
            Strategy::Gather => self.run_gather(sel, &plan),
        }
    }

    /// Scatter the plan as fragments, execute per shard, combine.
    fn run_scatter(&self, plan: &PhysicalPlan) -> DbResult<(DataFrame, ExecStats, ShardRunInfo)> {
        let span = self.obs.tracer.span("shard:scatter");
        let frag = PlanFragment::from_plan(plan);
        let plan_hash = frag.plan_hash();
        let (wire, cache_hit) =
            self.cache
                .get_or_serialize(plan_hash, self.layout.fingerprint(), &frag)?;
        if cache_hit {
            self.obs.metrics.inc(metric_names::SHARD_PLAN_CACHE_HITS, 1);
        }

        let mut outputs: Vec<FragmentOutput> = Vec::with_capacity(self.layout.n_shards);
        let mut per_shard: Vec<ShardExecInfo> = Vec::with_capacity(self.layout.n_shards);
        for spec in &self.layout.shards {
            let t0 = Instant::now();
            let (out, retries) = self.run_fragment_with_retry(spec.shard, &wire)?;
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            self.obs.metrics.inc(metric_names::SHARD_FRAGMENTS_SENT, 1);
            per_shard.push(ShardExecInfo {
                shard: spec.shard,
                sim_lo: spec.sim_lo,
                sim_hi: spec.sim_hi,
                partial_rows: out.payload_rows() as u64,
                morsels: out.morsels,
                workers: out.workers,
                rows_scanned: out.stats.rows_scanned,
                wall_ms,
                retries,
            });
            outputs.push(out);
        }

        let t0 = Instant::now();
        // Combine against the *original* plan: the fragment's copy has
        // final-only steps (LIMIT without a safe per-shard head) stripped.
        let frame = self.combine_with_retry(plan, &outputs)?;
        let combine_ms = t0.elapsed().as_secs_f64() * 1e3;
        let partials: u64 = per_shard.iter().map(|s| s.partial_rows).sum();
        self.obs
            .metrics
            .inc(metric_names::SHARD_PARTIALS_MERGED, partials);
        self.obs
            .metrics
            .observe(metric_names::SHARD_COMBINE_MS, combine_ms);

        let mut stats = ExecStats::default();
        for out in &outputs {
            stats.chunks_total += out.stats.chunks_total;
            stats.chunks_skipped += out.stats.chunks_skipped;
            stats.rows_scanned += out.stats.rows_scanned;
            stats.rows_pruned += out.stats.rows_pruned;
        }
        stats.rows_output = frame.n_rows() as u64;
        span.set_attr("shards", self.layout.n_shards as u64);
        span.set_attr("rows_output", stats.rows_output);

        let info = ShardRunInfo {
            strategy: Strategy::Scatter,
            fragment_mode: Some(frag.mode),
            plan_hash,
            cache_hit,
            est_rows: plan.est.rows,
            per_shard,
            combine_ms,
            rows_output: stats.rows_output,
        };
        Ok((frame, stats, info))
    }

    /// Send + execute one fragment on one shard, retrying transient
    /// failures. Corruption (`CorruptChunk` / `Corrupt`) is permanent:
    /// it propagates immediately rather than risking a partial answer.
    fn run_fragment_with_retry(
        &self,
        shard: usize,
        wire: &str,
    ) -> DbResult<(FragmentOutput, u32)> {
        let mut retries = 0u32;
        loop {
            match self.run_fragment_once(shard, wire) {
                Ok(out) => return Ok((out, retries)),
                Err(e) if is_transient(&e) && retries < FRAGMENT_RETRIES => {
                    retries += 1;
                    self.obs.metrics.inc(metric_names::RETRY_ATTEMPTS, 1);
                }
                Err(e) => {
                    if is_transient(&e) {
                        self.obs.metrics.inc(metric_names::RETRY_EXHAUSTED, 1);
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One send → execute → reply round trip through the real wire
    /// format, with fault-injection sites at each boundary.
    fn run_fragment_once(&self, shard: usize, wire: &str) -> DbResult<FragmentOutput> {
        // Send boundary: the fragment bytes leave the combiner.
        let mut sent = std::borrow::Cow::Borrowed(wire);
        if let Some(mode) = infera_faults::check(infera_faults::sites::SHARD_SEND) {
            self.obs.metrics.inc(metric_names::FAULT_INJECTED, 1);
            match mode {
                infera_faults::FaultMode::Corrupt => {
                    // A torn transfer: the worker sees garbage and the
                    // combiner retries the send.
                    let mut bytes = wire.to_string();
                    bytes.truncate(bytes.len() / 2);
                    sent = std::borrow::Cow::Owned(bytes);
                }
                _ => {
                    return Err(DbError::Io(infera_faults::injected_error(
                        infera_faults::sites::SHARD_SEND,
                    )))
                }
            }
        }
        let frag = PlanFragment::from_json(&sent)?;

        // Execute boundary: the shard worker runs the fragment.
        if let Some(mode) = infera_faults::check(infera_faults::sites::SHARD_EXEC) {
            self.obs.metrics.inc(metric_names::FAULT_INJECTED, 1);
            match mode {
                infera_faults::FaultMode::Corrupt => {
                    // The shard's partition is unreadable: a permanent,
                    // typed corruption error — never retried, never a
                    // partial answer.
                    return Err(DbError::CorruptChunk {
                        table: frag.plan.scans[0].spec.table.clone(),
                        column: "<shard-partition>".into(),
                        chunk: shard,
                        reason: infera_faults::injected_error(infera_faults::sites::SHARD_EXEC),
                    });
                }
                _ => {
                    return Err(DbError::Io(infera_faults::injected_error(
                        infera_faults::sites::SHARD_EXEC,
                    )))
                }
            }
        }
        let out = fragment::execute_fragment(&self.shards[shard], &frag)?;

        // Reply boundary: partials come back through the wire format.
        let reply = out.to_json()?;
        FragmentOutput::from_json(&reply)
    }

    /// Combine shard partials, with a fault site at the merge boundary.
    fn combine_with_retry(
        &self,
        plan: &PhysicalPlan,
        outputs: &[FragmentOutput],
    ) -> DbResult<DataFrame> {
        let mut retries = 0u32;
        loop {
            match self.combine_once(plan, outputs) {
                Ok(frame) => return Ok(frame),
                Err(e) if is_transient(&e) && retries < FRAGMENT_RETRIES => {
                    retries += 1;
                    self.obs.metrics.inc(metric_names::RETRY_ATTEMPTS, 1);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn combine_once(&self, plan: &PhysicalPlan, outputs: &[FragmentOutput]) -> DbResult<DataFrame> {
        if let Some(mode) = infera_faults::check(infera_faults::sites::SHARD_MERGE) {
            self.obs.metrics.inc(metric_names::FAULT_INJECTED, 1);
            match mode {
                infera_faults::FaultMode::Corrupt => {
                    return Err(DbError::Corrupt(infera_faults::injected_error(
                        infera_faults::sites::SHARD_MERGE,
                    )))
                }
                _ => {
                    return Err(DbError::Io(infera_faults::injected_error(
                        infera_faults::sites::SHARD_MERGE,
                    )))
                }
            }
        }
        fragment::combine(plan, outputs, &self.shards[0])
    }

    /// Gather fallback: merge every referenced table into a scratch
    /// database (partitioned tables concatenated in shard order, which
    /// is the serial row order) and execute there.
    fn run_gather(
        &self,
        sel: &SelectStmt,
        plan: &PhysicalPlan,
    ) -> DbResult<(DataFrame, ExecStats, ShardRunInfo)> {
        let span = self.obs.tracer.span("shard:gather");
        let scratch_dir = self
            .root
            .join(format!(".gather_{:016x}", plan.plan_hash()));
        std::fs::remove_dir_all(&scratch_dir).ok();
        let scratch = Database::create(&scratch_dir)?;
        let mut tables: Vec<&str> = plan.scans.iter().map(|s| s.spec.table.as_str()).collect();
        tables.sort_unstable();
        tables.dedup();
        let result = self.gather_into(&scratch, &tables).and_then(|()| {
            let (frame, stats) = sql_exec::run_select(&scratch, sel)?;
            Ok((frame, stats))
        });
        drop(scratch);
        std::fs::remove_dir_all(&scratch_dir).ok();
        let (frame, stats) = result?;
        span.set_attr("tables", tables.len() as u64);
        let rows = frame.n_rows() as u64;
        let info = ShardRunInfo {
            strategy: Strategy::Gather,
            fragment_mode: None,
            plan_hash: plan.plan_hash(),
            cache_hit: false,
            est_rows: plan.est.rows,
            per_shard: Vec::new(),
            combine_ms: 0.0,
            rows_output: rows,
        };
        Ok((frame, stats, info))
    }

    fn gather_into(&self, scratch: &Database, tables: &[&str]) -> DbResult<()> {
        for table in tables {
            let schema = self.shards[0].table_schema(table)?;
            scratch.create_table(table, &schema)?;
            let cols: Vec<&str> = schema.iter().map(|(n, _)| n.as_str()).collect();
            if self.is_partitioned(table)? {
                for db in &self.shards {
                    if db.n_rows(table)? == 0 {
                        continue;
                    }
                    let frame = db.scan_all(table, &cols)?;
                    scratch.append(table, &frame)?;
                }
            } else {
                if self.shards[0].n_rows(table)? == 0 {
                    continue;
                }
                let frame = self.shards[0].scan_all(table, &cols)?;
                scratch.append(table, &frame)?;
            }
        }
        Ok(())
    }
}

/// Whether an error is worth retrying: anything except typed
/// corruption, which is permanent by definition.
fn is_transient(e: &DbError) -> bool {
    !matches!(e, DbError::CorruptChunk { .. } | DbError::Corrupt(_))
}

/// Render the shard-split section appended to EXPLAIN output.
fn render_shard_split(plan: &PhysicalPlan, info: &ShardRunInfo) -> String {
    let mut out = String::new();
    match info.strategy {
        Strategy::ShardLocal => {
            out.push_str("Shard split: none (all tables replicated; executed on shard 0)\n");
            return out;
        }
        Strategy::Gather => {
            out.push_str(
                "Shard split: gather fallback (partitioned build side; tables merged \
                 in shard order, executed serially)\n",
            );
            return out;
        }
        Strategy::Scatter => {}
    }
    let mode = match info.fragment_mode {
        Some(FragmentMode::PartialAggregate) => "partial-aggregate",
        Some(FragmentMode::Rows) => "rows",
        None => "?",
    };
    let n = info.per_shard.len();
    out.push_str(&format!(
        "Shard split: scatter-gather over {n} shard(s); base '{}' partitioned by sim; \
         fragment={mode} plan_hash={:016x}{}\n",
        plan.scans[0].spec.table,
        info.plan_hash,
        if info.cache_hit { " (fragment cache hit)" } else { "" },
    ));
    let est_per_shard = info.est_rows / (n.max(1) as u64);
    for s in &info.per_shard {
        out.push_str(&format!(
            "  shard {} [sims {}..{}): 1 fragment, partial est_rows={} actual_rows={} \
             morsels={} workers={} rows_scanned={}{}\n",
            s.shard,
            s.sim_lo,
            s.sim_hi,
            est_per_shard,
            s.partial_rows,
            s.morsels,
            s.workers,
            s.rows_scanned,
            if s.retries > 0 {
                format!(" retries={}", s.retries)
            } else {
                String::new()
            },
        ));
    }
    let step = match info.fragment_mode {
        Some(FragmentMode::PartialAggregate) => "final aggregate merge (shard order)",
        _ => "row concatenation (shard order)",
    };
    out.push_str(&format!(
        "  Combine: {step} est_rows={} actual_rows={} combine_ms={:.3}\n",
        info.est_rows, info.rows_output, info.combine_ms,
    ));
    out
}

/// Planner statistics summed across the shard set: partitioned tables
/// aggregate over every shard, replicated tables read shard 0.
struct CombinedStats<'a> {
    db: &'a ShardedDb,
}

impl CombinedStats<'_> {
    fn partitioned(&self, table: &str) -> bool {
        self.db.is_partitioned(table).unwrap_or(false)
    }
}

impl Stats for CombinedStats<'_> {
    fn row_count(&self, table: &str) -> DbResult<u64> {
        self.db.n_rows(table)
    }

    fn byte_count(&self, table: &str) -> DbResult<u64> {
        if self.partitioned(table) {
            let mut total = 0u64;
            for db in self.db.shards() {
                total += db.table_logical_bytes(table)?;
            }
            Ok(total)
        } else {
            self.db.shards()[0].table_logical_bytes(table)
        }
    }

    fn column_count(&self, table: &str) -> DbResult<usize> {
        Ok(self.db.shards()[0].table_schema(table)?.len())
    }

    fn distinct(&self, table: &str, column: &str) -> DbResult<u64> {
        if self.partitioned(table) {
            let mut total = 0u64;
            for db in self.db.shards() {
                total += db.distinct_estimate(table, column)?;
            }
            Ok(total.min(self.row_count(table)?.max(1)))
        } else {
            self.db.shards()[0].distinct_estimate(table, column)
        }
    }

    fn zone_match_fraction(
        &self,
        table: &str,
        zf: &infera_columnar::sql::plan::ZoneFilter,
    ) -> DbResult<f64> {
        if !self.partitioned(table) {
            return <Database as Stats>::zone_match_fraction(&self.db.shards()[0], table, zf);
        }
        // Chunk-weighted mean of per-shard zone survival.
        let mut matched = 0.0f64;
        let mut chunks = 0u64;
        for db in self.db.shards() {
            let n = db.n_chunks(table)? as u64;
            let frac = <Database as Stats>::zone_match_fraction(db, table, zf)?;
            matched += frac * n as f64;
            chunks += n;
        }
        Ok(if chunks == 0 {
            1.0
        } else {
            matched / chunks as f64
        })
    }
}
