//! # infera-shard
//!
//! Sharded scatter-gather execution across ensemble partitions.
//!
//! The paper's ensembles are embarrassingly partitionable: every
//! simulation member is independent, and the assistant's aggregate
//! queries decompose into per-partition partials plus a cheap merge.
//! This crate exploits that: a [`ShardedDb`] splits the session
//! database into contiguous sim-range partitions ([`ShardLayout`]),
//! scatters serialized plan fragments to per-shard workers, and
//! combines partial aggregates in deterministic shard order — producing
//! results bit-identical to a single-database execution while each
//! shard scans only `1/N` of the ensemble.
//!
//! Layering:
//!
//! * [`layout`] — partitioning, per-shard manifests, fingerprints;
//! * [`cache`] — fragment-plan cache keyed by plan hash + layout
//!   fingerprint;
//! * [`exec`] — [`ShardedDb`]: scatter, per-shard execution with fault
//!   injection + retry, deterministic combine, EXPLAIN shard split;
//! * [`engine`] — [`SessionDb`], the single-vs-sharded facade the
//!   agents and the serving layer use.

pub mod cache;
pub mod engine;
pub mod exec;
pub mod layout;

pub use cache::FragmentCache;
pub use engine::SessionDb;
pub use exec::{ShardExecInfo, ShardRunInfo, ShardedDb, Strategy};
pub use layout::{ShardLayout, ShardSpec, LAYOUT_FILE};
