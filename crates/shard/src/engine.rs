//! Session-level database facade: single or sharded, one surface.
//!
//! Agents and the serving layer talk to a [`SessionDb`]; whether the
//! session's storage is one [`Database`] or a [`ShardedDb`] is decided
//! once at session setup (`shards` in the run configuration) and
//! transparent afterwards — `ask` scatter-gathers exactly when a
//! sharded layout exists.

use crate::exec::ShardedDb;
use crate::layout::ShardLayout;
use infera_columnar::{Database, DbResult, ExecOutcome, ExecStats};
use infera_frame::{DType, DataFrame};
use std::path::Path;

/// A session's storage: one database or a sharded set.
pub enum SessionDb {
    Single(Database),
    Sharded(ShardedDb),
}

impl SessionDb {
    /// Create a session database under `root`. `shards <= 1` yields a
    /// plain single database; more yields a sharded layout partitioning
    /// `n_sims` ensemble members with `ensemble_fingerprint` identity.
    pub fn create(
        root: &Path,
        shards: usize,
        n_sims: u32,
        ensemble_fingerprint: u64,
        obs: infera_obs::Obs,
    ) -> DbResult<SessionDb> {
        if shards <= 1 {
            let mut db = Database::create(root)?;
            db.set_obs(obs);
            Ok(SessionDb::Single(db))
        } else {
            let layout = ShardLayout::build(shards, n_sims, ensemble_fingerprint);
            Ok(SessionDb::Sharded(ShardedDb::create(root, layout, obs)?))
        }
    }

    /// Open whatever lives at `root`: a sharded set when the layout
    /// marker exists, a plain database otherwise.
    pub fn open_auto(root: &Path) -> DbResult<SessionDb> {
        if ShardedDb::is_sharded(root) {
            Ok(SessionDb::Sharded(ShardedDb::open(root)?))
        } else {
            Ok(SessionDb::Single(Database::open(root)?))
        }
    }

    /// Number of shards (1 for a single database).
    pub fn n_shards(&self) -> usize {
        match self {
            SessionDb::Single(_) => 1,
            SessionDb::Sharded(s) => s.layout().n_shards,
        }
    }

    pub fn root(&self) -> &Path {
        match self {
            SessionDb::Single(db) => db.root(),
            SessionDb::Sharded(s) => s.root(),
        }
    }

    pub fn set_obs(&mut self, obs: infera_obs::Obs) {
        match self {
            SessionDb::Single(db) => db.set_obs(obs),
            SessionDb::Sharded(s) => s.set_obs(obs),
        }
    }

    pub fn list_tables(&self) -> Vec<String> {
        match self {
            SessionDb::Single(db) => db.list_tables(),
            SessionDb::Sharded(s) => s.list_tables(),
        }
    }

    pub fn create_table(&self, name: &str, schema: &[(String, DType)]) -> DbResult<()> {
        match self {
            SessionDb::Single(db) => db.create_table(name, schema),
            SessionDb::Sharded(s) => s.create_table(name, schema),
        }
    }

    pub fn append(&self, name: &str, batch: &DataFrame) -> DbResult<()> {
        match self {
            SessionDb::Single(db) => db.append(name, batch),
            SessionDb::Sharded(s) => s.append(name, batch),
        }
    }

    pub fn n_rows(&self, table: &str) -> DbResult<u64> {
        match self {
            SessionDb::Single(db) => db.n_rows(table),
            SessionDb::Sharded(s) => s.n_rows(table),
        }
    }

    pub fn table_schema(&self, table: &str) -> DbResult<Vec<(String, DType)>> {
        match self {
            SessionDb::Single(db) => db.table_schema(table),
            SessionDb::Sharded(s) => s.table_schema(table),
        }
    }

    pub fn query(&self, sql: &str) -> DbResult<DataFrame> {
        match self {
            SessionDb::Single(db) => db.query(sql),
            SessionDb::Sharded(s) => s.query(sql),
        }
    }

    pub fn query_with_stats(&self, sql: &str) -> DbResult<(DataFrame, ExecStats)> {
        match self {
            SessionDb::Single(db) => db.query_with_stats(sql),
            SessionDb::Sharded(s) => s.query_with_stats(sql),
        }
    }

    pub fn execute_sql(&self, sql: &str) -> DbResult<ExecOutcome> {
        match self {
            SessionDb::Single(db) => db.execute_sql(sql),
            SessionDb::Sharded(s) => s.execute_sql(sql),
        }
    }

    pub fn explain(&self, sql: &str) -> DbResult<String> {
        match self {
            SessionDb::Single(db) => db.explain(sql),
            SessionDb::Sharded(s) => s.explain(sql),
        }
    }

    pub fn total_bytes(&self) -> u64 {
        match self {
            SessionDb::Single(db) => db.total_bytes(),
            SessionDb::Sharded(s) => s.total_bytes(),
        }
    }

    pub fn total_logical_bytes(&self) -> u64 {
        match self {
            SessionDb::Single(db) => db.total_logical_bytes(),
            SessionDb::Sharded(s) => s.total_logical_bytes(),
        }
    }
}
