//! The analysis DSL: lexer + parser.
//!
//! The original InferA executes LLM-generated *Python over pandas* in its
//! sandbox server. A Rust reproduction cannot embed CPython, so programs
//! are written in a small dataframe DSL with the same operational
//! vocabulary (the calls the Python agent's generated code makes). One
//! statement per line, assignment or `return`:
//!
//! ```text
//! big    = filter(halos, fof_halo_count > 1000 and sim == 0)
//! top    = top_n(big, fof_halo_mass, 100)
//! joined = join(top, galaxies, on=fof_halo_tag)
//! g      = group_agg(joined, by=[sim], mean(gal_mass), count())
//! return g
//! ```

use crate::error::{ErrorKind, SandboxError, SandboxResult};

/// Tokens of the DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Assign,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Newline,
    Eof,
}

fn lex(src: &str) -> SandboxResult<Vec<Tok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let n = chars.len();
    let err = |m: String| SandboxError::new(ErrorKind::Parse, m);
    while i < n {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '\n' => {
                out.push(Tok::Newline);
                i += 1;
            }
            '#' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '%' => {
                out.push(Tok::Percent);
                i += 1;
            }
            '=' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Tok::Eq);
                    i += 2;
                } else {
                    out.push(Tok::Assign);
                    i += 1;
                }
            }
            '!' if i + 1 < n && chars[i + 1] == '=' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '<' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1] == '=' {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                while i < n && chars[i] != quote {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= n {
                    return Err(err("unterminated string literal".into()));
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    if chars[i] == '.' {
                        is_float = true;
                    }
                    i += 1;
                }
                if i < n && (chars[i] == 'e' || chars[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (chars[j] == '+' || chars[j] == '-') {
                        j += 1;
                    }
                    if j < n && chars[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(Tok::Float(
                        text.parse().map_err(|_| err(format!("bad number '{text}'")))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        text.parse().map_err(|_| err(format!("bad number '{text}'")))?,
                    ));
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            _ => return Err(err(format!("unexpected character '{c}'"))),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

/// DSL expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum DslExpr {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    List(Vec<DslExpr>),
    Call { name: String, args: Vec<DslArg> },
    Binary(Box<DslExpr>, DslOp, Box<DslExpr>),
    Neg(Box<DslExpr>),
    Not(Box<DslExpr>),
}

/// A (possibly named) call argument.
#[derive(Debug, Clone, PartialEq)]
pub struct DslArg {
    pub name: Option<String>,
    pub value: DslExpr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DslOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// One program statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = expr`
    Assign { target: String, expr: DslExpr },
    /// `return expr`
    Return(DslExpr),
}

/// Parse a whole program: newline-separated statements.
pub fn parse_program(src: &str) -> SandboxResult<Vec<Stmt>> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut stmts = Vec::new();
    loop {
        p.skip_newlines();
        if p.peek() == &Tok::Eof {
            break;
        }
        stmts.push(p.statement()?);
        match p.peek() {
            Tok::Newline => {}
            Tok::Eof => {}
            other => {
                return Err(SandboxError::new(
                    ErrorKind::Parse,
                    format!("unexpected token after statement: {other:?}"),
                ))
            }
        }
    }
    if stmts.is_empty() {
        return Err(SandboxError::new(ErrorKind::Parse, "empty program"));
    }
    Ok(stmts)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> SandboxResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SandboxError::new(
                ErrorKind::Parse,
                format!("expected {t:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn skip_newlines(&mut self) {
        while self.peek() == &Tok::Newline {
            self.pos += 1;
        }
    }

    fn statement(&mut self) -> SandboxResult<Stmt> {
        if let Tok::Ident(name) = self.peek().clone() {
            if name == "return" {
                self.next();
                let expr = self.expr()?;
                return Ok(Stmt::Return(expr));
            }
            // Lookahead for '='.
            if self.toks.get(self.pos + 1) == Some(&Tok::Assign) {
                self.next();
                self.next();
                let expr = self.expr()?;
                return Ok(Stmt::Assign { target: name, expr });
            }
        }
        // Bare expression statement: treated as `_ = expr` result sink.
        let expr = self.expr()?;
        Ok(Stmt::Assign {
            target: "_".into(),
            expr,
        })
    }

    fn expr(&mut self) -> SandboxResult<DslExpr> {
        self.or_expr()
    }

    fn kw(&self, k: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == k)
    }

    fn or_expr(&mut self) -> SandboxResult<DslExpr> {
        let mut lhs = self.and_expr()?;
        while self.kw("or") {
            self.next();
            let rhs = self.and_expr()?;
            lhs = DslExpr::Binary(Box::new(lhs), DslOp::Or, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> SandboxResult<DslExpr> {
        let mut lhs = self.not_expr()?;
        while self.kw("and") {
            self.next();
            let rhs = self.not_expr()?;
            lhs = DslExpr::Binary(Box::new(lhs), DslOp::And, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> SandboxResult<DslExpr> {
        if self.kw("not") {
            self.next();
            Ok(DslExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> SandboxResult<DslExpr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => DslOp::Eq,
            Tok::Ne => DslOp::Ne,
            Tok::Lt => DslOp::Lt,
            Tok::Le => DslOp::Le,
            Tok::Gt => DslOp::Gt,
            Tok::Ge => DslOp::Ge,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(DslExpr::Binary(Box::new(lhs), op, Box::new(rhs)))
    }

    fn add_expr(&mut self) -> SandboxResult<DslExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => DslOp::Add,
                Tok::Minus => DslOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = DslExpr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> SandboxResult<DslExpr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => DslOp::Mul,
                Tok::Slash => DslOp::Div,
                Tok::Percent => DslOp::Mod,
                _ => break,
            };
            self.next();
            let rhs = self.unary()?;
            lhs = DslExpr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> SandboxResult<DslExpr> {
        if self.eat(&Tok::Minus) {
            Ok(DslExpr::Neg(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> SandboxResult<DslExpr> {
        match self.next() {
            Tok::Int(v) => Ok(DslExpr::Int(v)),
            Tok::Float(v) => Ok(DslExpr::Float(v)),
            Tok::Str(s) => Ok(DslExpr::Str(s)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                Ok(DslExpr::List(items))
            }
            Tok::Ident(name) => {
                if name == "true" {
                    return Ok(DslExpr::Bool(true));
                }
                if name == "false" {
                    return Ok(DslExpr::Bool(false));
                }
                if self.peek() == &Tok::LParen {
                    self.next();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.call_arg()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    return Ok(DslExpr::Call { name, args });
                }
                Ok(DslExpr::Ident(name))
            }
            Tok::Star => Ok(DslExpr::Str("*".into())), // count(*) convenience
            other => Err(SandboxError::new(
                ErrorKind::Parse,
                format!("unexpected token in expression: {other:?}"),
            )),
        }
    }

    fn call_arg(&mut self) -> SandboxResult<DslArg> {
        // named argument lookahead: ident '=' ...
        if let Tok::Ident(name) = self.peek().clone() {
            if self.toks.get(self.pos + 1) == Some(&Tok::Assign) {
                self.next();
                self.next();
                let value = self.expr()?;
                return Ok(DslArg {
                    name: Some(name),
                    value,
                });
            }
        }
        Ok(DslArg {
            name: None,
            value: self.expr()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_assignment_pipeline() {
        let src = "\
# comment line
big = filter(halos, fof_halo_count > 1000 and sim == 0)
top = top_n(big, fof_halo_mass, 100)
return top
";
        let stmts = parse_program(src).unwrap();
        assert_eq!(stmts.len(), 3);
        match &stmts[0] {
            Stmt::Assign { target, expr } => {
                assert_eq!(target, "big");
                assert!(matches!(expr, DslExpr::Call { name, .. } if name == "filter"));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(&stmts[2], Stmt::Return(_)));
    }

    #[test]
    fn named_args_and_lists() {
        let stmts =
            parse_program("g = group_agg(df, by=[sim, step], mean(mass), count())").unwrap();
        match &stmts[0] {
            Stmt::Assign { expr: DslExpr::Call { args, .. }, .. } => {
                assert_eq!(args.len(), 4);
                assert_eq!(args[1].name.as_deref(), Some("by"));
                assert!(matches!(args[1].value, DslExpr::List(_)));
                assert!(matches!(
                    &args[2].value,
                    DslExpr::Call { name, .. } if name == "mean"
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let stmts = parse_program("x = filter(df, a + b * 2 > c and d < 1 or e == 'q')").unwrap();
        let Stmt::Assign { expr: DslExpr::Call { args, .. }, .. } = &stmts[0] else {
            panic!()
        };
        // Top must be OR.
        assert!(matches!(
            &args[1].value,
            DslExpr::Binary(_, DslOp::Or, _)
        ));
    }

    #[test]
    fn count_star() {
        let stmts = parse_program("g = group_agg(df, by=[a], count(*))").unwrap();
        let Stmt::Assign { expr: DslExpr::Call { args, .. }, .. } = &stmts[0] else {
            panic!()
        };
        assert!(matches!(
            &args[2].value,
            DslExpr::Call { name, args } if name == "count" && args.len() == 1
        ));
    }

    #[test]
    fn errors() {
        assert!(parse_program("").is_err());
        assert!(parse_program("x = ").is_err());
        assert!(parse_program("x = foo(").is_err());
        assert!(parse_program("x = 'unterminated").is_err());
        assert!(parse_program("x = $bad").is_err());
    }

    #[test]
    fn negative_numbers_and_scientific() {
        let stmts = parse_program("x = filter(df, mass > -1.5e14)").unwrap();
        let Stmt::Assign { expr: DslExpr::Call { args, .. }, .. } = &stmts[0] else {
            panic!()
        };
        match &args[1].value {
            DslExpr::Binary(_, DslOp::Gt, rhs) => {
                assert!(matches!(**rhs, DslExpr::Neg(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_expression_assigned_to_underscore() {
        let stmts = parse_program("describe(df)").unwrap();
        assert!(matches!(
            &stmts[0],
            Stmt::Assign { target, .. } if target == "_"
        ));
    }
}
