//! Structured sandbox errors.
//!
//! The execution gateway never panics across the boundary: every failure
//! becomes a [`SandboxError`] with a machine-readable kind, which is what
//! the quality-assurance agent's error-guided redo loop keys on (§3.2).

use infera_frame::FrameError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias.
pub type SandboxResult<T> = Result<T, SandboxError>;

/// Failure category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Program text failed to lex/parse.
    Parse,
    /// Referenced dataframe name not found in the environment.
    UnknownFrame,
    /// Referenced column not found (the paper's dominant failure mode).
    UnknownColumn,
    /// Called function/tool not registered.
    UnknownFunction,
    /// Argument shape/type problems.
    BadArguments,
    /// Type error during evaluation.
    Type,
    /// Any other runtime failure.
    Runtime,
    /// Execution exceeded the gateway deadline.
    Timeout,
}

/// A structured error returned by the sandbox gateway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SandboxError {
    pub kind: ErrorKind,
    pub message: String,
    /// Did-you-mean candidate, when one exists.
    pub suggestion: Option<String>,
    /// 1-based statement index where the failure occurred, if known.
    pub statement: Option<usize>,
}

impl SandboxError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> SandboxError {
        SandboxError {
            kind,
            message: message.into(),
            suggestion: None,
            statement: None,
        }
    }

    pub fn with_suggestion(mut self, s: Option<String>) -> SandboxError {
        self.suggestion = s;
        self
    }

    pub fn at_statement(mut self, idx: usize) -> SandboxError {
        self.statement = Some(idx);
        self
    }
}

impl fmt::Display for SandboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} error: {}", self.kind, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " — did you mean '{s}'?")?;
        }
        if let Some(i) = self.statement {
            write!(f, " (statement {i})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SandboxError {}

impl From<FrameError> for SandboxError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::UnknownColumn { name, suggestion } => SandboxError {
                kind: ErrorKind::UnknownColumn,
                message: format!("unknown column '{name}'"),
                suggestion,
                statement: None,
            },
            FrameError::TypeMismatch { .. } => {
                SandboxError::new(ErrorKind::Type, e.to_string())
            }
            other => SandboxError::new(ErrorKind::Runtime, other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_suggestion_and_statement() {
        let e = SandboxError::new(ErrorKind::UnknownColumn, "unknown column 'center_x'")
            .with_suggestion(Some("fof_halo_center_x".into()))
            .at_statement(3);
        let s = e.to_string();
        assert!(s.contains("did you mean 'fof_halo_center_x'"));
        assert!(s.contains("statement 3"));
    }

    #[test]
    fn frame_error_conversion_preserves_suggestion() {
        let fe = infera_frame::error::unknown_column("center_x", ["fof_halo_center_x"]);
        let se = SandboxError::from(fe);
        assert_eq!(se.kind, ErrorKind::UnknownColumn);
        assert_eq!(se.suggestion.as_deref(), Some("fof_halo_center_x"));
    }

    #[test]
    fn serde_roundtrip() {
        let e = SandboxError::new(ErrorKind::Timeout, "deadline exceeded");
        let json = serde_json::to_string(&e).unwrap();
        let back: SandboxError = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
