//! Domain-specific custom tools (§3: halo tracking across timesteps and
//! other "domain-specific capabilities that would be too specialized and
//! complex for an agent to develop").
//!
//! All tools here are pure dataframe→dataframe functions so they can run
//! inside the sandbox; the ParaView scene tool (which writes files) lives
//! with the visualization agent.

use crate::error::{ErrorKind, SandboxError, SandboxResult};
use crate::tool::{Tool, ToolArgs, ToolRegistry, ToolValue};
use infera_frame::{Column, DataFrame, SortOrder};
use std::sync::Arc;

/// Resolve a tag argument: either a literal integer or a frame whose
/// first row's `fof_halo_tag` is the target (lets generated programs pass
/// `head(top, 1)` as the target selector without scalar extraction).
fn tag_value(v: &ToolValue) -> SandboxResult<i64> {
    match v {
        ToolValue::Frame(f) => {
            if f.is_empty() {
                return Err(SandboxError::new(
                    ErrorKind::BadArguments,
                    "tag frame is empty",
                ));
            }
            let col = f.column("fof_halo_tag").map_err(SandboxError::from)?;
            col.get(0).as_i64().ok_or_else(|| {
                SandboxError::new(ErrorKind::BadArguments, "fof_halo_tag is not integral")
            })
        }
        other => other.as_int(),
    }
}

/// `track_halo(frame, tag)` — extract one halo's rows across timesteps.
///
/// The input frame must carry a `step` column (the data-loading agent adds
/// one when it loads multiple snapshots) and a `fof_halo_tag` column. The
/// output is that halo's history ordered by step — the "particle
/// coordinate tracking tool" of the paper.
pub struct TrackHalo;

impl Tool for TrackHalo {
    fn name(&self) -> &str {
        "track_halo"
    }

    fn description(&self) -> &str {
        "track one halo across timesteps: track_halo(frame, tag) -> the halo's rows ordered by step; frame needs 'step' and 'fof_halo_tag' columns"
    }

    fn call(&self, args: &ToolArgs) -> SandboxResult<DataFrame> {
        let frame = args.pos(0)?.as_frame()?;
        let tag = tag_value(args.named_or_pos("tag", 1)?)?;
        for required in ["step", "fof_halo_tag"] {
            if !frame.has_column(required) {
                return Err(SandboxError::new(
                    ErrorKind::BadArguments,
                    format!(
                        "track_halo: input frame lacks the '{required}' column (load multiple timesteps first)"
                    ),
                ));
            }
        }
        let tags = frame.column("fof_halo_tag")?.to_f64_vec()?;
        let mask: Vec<bool> = tags.iter().map(|&t| t == tag as f64).collect();
        let track = frame.filter_mask(&mask)?;
        if track.is_empty() {
            return Err(SandboxError::new(
                ErrorKind::Runtime,
                format!("track_halo: no rows for halo tag {tag}"),
            ));
        }
        Ok(track.sort_by(&[("step", SortOrder::Ascending)])?)
    }
}

/// `interestingness_score(frame, [columns], n)` — z-score the given
/// columns, score each row by the Euclidean norm of its z-vector, and
/// return the top `n` rows with an added `interestingness` column
/// (descending). This is the custom scoring the UMAP question uses.
pub struct InterestingnessScore;

impl Tool for InterestingnessScore {
    fn name(&self) -> &str {
        "interestingness_score"
    }

    fn description(&self) -> &str {
        "rank rows by joint outlierness of the given columns: interestingness_score(frame, [cols], n) -> top n rows with an 'interestingness' column"
    }

    fn call(&self, args: &ToolArgs) -> SandboxResult<DataFrame> {
        let frame = args.pos(0)?.as_frame()?;
        let cols = args.named_or_pos("columns", 1)?.as_str_list()?;
        let n = args.named_or_pos("n", 2).map_or(Ok(frame.n_rows() as i64), |v| v.as_int())? as usize;
        if cols.is_empty() {
            return Err(SandboxError::new(
                ErrorKind::BadArguments,
                "interestingness_score: no columns given",
            ));
        }
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let z = frame.zscore(&refs)?;
        let mut norm2 = vec![0.0f64; frame.n_rows()];
        for c in &cols {
            let zc = z.column(&format!("{c}_z"))?.to_f64_vec()?;
            for (acc, v) in norm2.iter_mut().zip(zc) {
                *acc += v * v;
            }
        }
        let mut out = frame.clone();
        out.set_column(
            "interestingness",
            Column::F64(norm2.iter().map(|v| v.sqrt()).collect()),
        )?;
        Ok(out.top_n("interestingness", n)?)
    }
}

/// `umap_embed(frame, [columns])` — a deterministic 2-D embedding of the
/// given numeric columns (stand-in for UMAP): PCA onto the two leading
/// principal axes via power iteration, outputs `umap_x` / `umap_y`.
pub struct UmapEmbed;

impl UmapEmbed {
    /// Power iteration for the leading eigenvector of a small symmetric
    /// matrix; deflation gives the second.
    fn leading_eigvec(cov: &[Vec<f64>], deflate: Option<&[f64]>) -> Vec<f64> {
        let d = cov.len();
        let mut v: Vec<f64> = (0..d).map(|i| 1.0 + 0.1 * i as f64).collect();
        if let Some(prev) = deflate {
            let dot: f64 = v.iter().zip(prev).map(|(a, b)| a * b).sum();
            for (x, p) in v.iter_mut().zip(prev) {
                *x -= dot * p;
            }
        }
        for _ in 0..200 {
            let mut next = vec![0.0; d];
            for i in 0..d {
                for j in 0..d {
                    next[i] += cov[i][j] * v[j];
                }
            }
            if let Some(prev) = deflate {
                let dot: f64 = next.iter().zip(prev).map(|(a, b)| a * b).sum();
                for (x, p) in next.iter_mut().zip(prev) {
                    *x -= dot * p;
                }
            }
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                break;
            }
            for x in &mut next {
                *x /= norm;
            }
            v = next;
        }
        v
    }
}

impl Tool for UmapEmbed {
    fn name(&self) -> &str {
        "umap_embed"
    }

    fn description(&self) -> &str {
        "project rows to 2-D for scatter visualization: umap_embed(frame, [cols]) -> frame with 'umap_x' and 'umap_y' columns"
    }

    fn call(&self, args: &ToolArgs) -> SandboxResult<DataFrame> {
        let frame = args.pos(0)?.as_frame()?;
        let cols = args.named_or_pos("columns", 1)?.as_str_list()?;
        if cols.len() < 2 {
            return Err(SandboxError::new(
                ErrorKind::BadArguments,
                "umap_embed: need at least two columns",
            ));
        }
        if frame.n_rows() < 3 {
            return Err(SandboxError::new(
                ErrorKind::Runtime,
                "umap_embed: need at least three rows",
            ));
        }
        // Standardize columns.
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        let z = frame.zscore(&refs)?;
        let data: Vec<Vec<f64>> = cols
            .iter()
            .map(|c| z.column(&format!("{c}_z")).and_then(|col| col.to_f64_vec()))
            .collect::<Result<_, _>>()?;
        let d = data.len();
        let n = frame.n_rows() as f64;
        // Covariance matrix of standardized columns.
        let mut cov = vec![vec![0.0; d]; d];
        #[allow(clippy::needless_range_loop)]
        for i in 0..d {
            for j in 0..d {
                cov[i][j] = data[i]
                    .iter()
                    .zip(&data[j])
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
                    / n;
            }
        }
        let e1 = Self::leading_eigvec(&cov, None);
        let e2 = Self::leading_eigvec(&cov, Some(&e1));
        let project = |e: &[f64], row: usize| -> f64 {
            e.iter()
                .enumerate()
                .map(|(k, &w)| w * data[k][row])
                .sum()
        };
        let mut out = frame.clone();
        let ux: Vec<f64> = (0..frame.n_rows()).map(|r| project(&e1, r)).collect();
        let uy: Vec<f64> = (0..frame.n_rows()).map(|r| project(&e2, r)).collect();
        out.set_column("umap_x", Column::F64(ux))?;
        out.set_column("umap_y", Column::F64(uy))?;
        Ok(out)
    }
}

/// `radius_query(frame, tag, radius [, box_size])` — all rows within
/// `radius` Mpc/h of the tagged halo's center (minimum-image distance when
/// `box_size` is given). Implements the Fig. 5 "all halos within 20 Mpc"
/// selection.
pub struct RadiusQuery;

impl Tool for RadiusQuery {
    fn name(&self) -> &str {
        "radius_query"
    }

    fn description(&self) -> &str {
        "spatial neighborhood selection: radius_query(frame, tag, radius_mpc [, box_size]) -> rows within the radius of the tagged halo's center"
    }

    fn call(&self, args: &ToolArgs) -> SandboxResult<DataFrame> {
        let frame = args.pos(0)?.as_frame()?;
        let tag = tag_value(args.named_or_pos("tag", 1)?)?;
        let radius = args.named_or_pos("radius", 2)?.as_num()?;
        let box_size = match args.opt_named("box_size") {
            Some(v) => Some(v.as_num()?),
            None => args.positional.get(3).map(ToolValue::as_num).transpose()?,
        };
        for required in [
            "fof_halo_tag",
            "fof_halo_center_x",
            "fof_halo_center_y",
            "fof_halo_center_z",
        ] {
            if !frame.has_column(required) {
                return Err(SandboxError::new(
                    ErrorKind::BadArguments,
                    format!("radius_query: input frame lacks '{required}'"),
                ));
            }
        }
        let tags = frame.column("fof_halo_tag")?.to_f64_vec()?;
        let xs = frame.column("fof_halo_center_x")?.to_f64_vec()?;
        let ys = frame.column("fof_halo_center_y")?.to_f64_vec()?;
        let zs = frame.column("fof_halo_center_z")?.to_f64_vec()?;
        let target = tags
            .iter()
            .position(|&t| t == tag as f64)
            .ok_or_else(|| {
                SandboxError::new(
                    ErrorKind::Runtime,
                    format!("radius_query: halo tag {tag} not found"),
                )
            })?;
        let (cx, cy, cz) = (xs[target], ys[target], zs[target]);
        let dist1 = |a: f64, b: f64| -> f64 {
            let d = (a - b).abs();
            match box_size {
                Some(l) => d.min(l - d),
                None => d,
            }
        };
        let mut dist = Vec::with_capacity(frame.n_rows());
        let mask: Vec<bool> = (0..frame.n_rows())
            .map(|i| {
                let dx = dist1(xs[i], cx);
                let dy = dist1(ys[i], cy);
                let dz = dist1(zs[i], cz);
                let d = (dx * dx + dy * dy + dz * dz).sqrt();
                dist.push(d);
                d <= radius
            })
            .collect();
        let mut out = frame.clone();
        out.set_column("distance_mpc", Column::F64(dist))?;
        Ok(out
            .filter_mask(&mask)?
            .sort_by(&[("distance_mpc", SortOrder::Ascending)])?)
    }
}

/// Register all domain tools into a registry.
pub fn register_domain_tools(reg: &mut ToolRegistry) {
    reg.register(Arc::new(TrackHalo));
    reg.register(Arc::new(InterestingnessScore));
    reg.register(Arc::new(UmapEmbed));
    reg.register(Arc::new(RadiusQuery));
}

/// A registry pre-loaded with every domain tool.
pub fn domain_registry() -> ToolRegistry {
    let mut reg = ToolRegistry::new();
    register_domain_tools(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{ExecutionRequest, SandboxServer};
    use std::collections::HashMap;

    fn multi_step_halos() -> DataFrame {
        DataFrame::from_columns([
            ("step", Column::from(vec![100i64, 100, 300, 300, 624, 624])),
            ("fof_halo_tag", Column::from(vec![1i64, 2, 1, 2, 1, 2])),
            (
                "fof_halo_mass",
                Column::from(vec![1e12, 2e12, 3e12, 4e12, 6e12, 8e12]),
            ),
            (
                "fof_halo_center_x",
                Column::from(vec![10.0, 50.0, 11.0, 50.5, 12.0, 51.0]),
            ),
            (
                "fof_halo_center_y",
                Column::from(vec![10.0, 50.0, 10.0, 50.0, 10.0, 50.0]),
            ),
            (
                "fof_halo_center_z",
                Column::from(vec![10.0, 50.0, 10.0, 50.0, 10.0, 50.0]),
            ),
        ])
        .unwrap()
    }

    fn run(program: &str) -> SandboxResult<DataFrame> {
        let server = SandboxServer::new(domain_registry());
        let mut inputs = HashMap::new();
        inputs.insert("halos".to_string(), multi_step_halos());
        server
            .execute(ExecutionRequest {
                program: program.into(),
                inputs,
            })
            .map(|r| r.result)
    }

    #[test]
    fn track_halo_orders_by_step() {
        let out = run("return track_halo(halos, 1)").unwrap();
        assert_eq!(out.n_rows(), 3);
        let steps = out.column("step").unwrap().as_i64_slice().unwrap().to_vec();
        assert_eq!(steps, vec![100, 300, 624]);
        let masses = out
            .column("fof_halo_mass")
            .unwrap()
            .as_f64_slice()
            .unwrap();
        assert!(masses.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn track_halo_missing_step_column_errors() {
        let server = SandboxServer::new(domain_registry());
        let mut inputs = HashMap::new();
        inputs.insert(
            "halos".to_string(),
            DataFrame::from_columns([("fof_halo_tag", Column::from(vec![1i64]))]).unwrap(),
        );
        let err = server
            .execute(ExecutionRequest {
                program: "return track_halo(halos, 1)".into(),
                inputs,
            })
            .unwrap_err();
        assert!(err.message.contains("step"));
    }

    #[test]
    fn track_halo_unknown_tag_errors() {
        let err = run("return track_halo(halos, 999)").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Runtime);
    }

    #[test]
    fn interestingness_ranks_outliers_first() {
        let df = DataFrame::from_columns([
            ("id", Column::from(vec![1i64, 2, 3, 4, 5])),
            ("a", Column::from(vec![1.0, 1.1, 0.9, 1.0, 10.0])),
            ("b", Column::from(vec![2.0, 2.1, 1.9, 2.0, -5.0])),
        ])
        .unwrap();
        let server = SandboxServer::new(domain_registry());
        let mut inputs = HashMap::new();
        inputs.insert("df".to_string(), df);
        let out = server
            .execute(ExecutionRequest {
                program: "return interestingness_score(df, [a, b], 3)".into(),
                inputs,
            })
            .unwrap()
            .result;
        assert_eq!(out.n_rows(), 3);
        assert_eq!(out.cell("id", 0).unwrap(), infera_frame::Value::I64(5));
        assert!(out.has_column("interestingness"));
    }

    #[test]
    fn umap_embed_adds_coordinates() {
        let out = run("return umap_embed(halos, [fof_halo_mass, fof_halo_center_x])").unwrap();
        assert!(out.has_column("umap_x"));
        assert!(out.has_column("umap_y"));
        // Deterministic across calls.
        let again = run("return umap_embed(halos, [fof_halo_mass, fof_halo_center_x])").unwrap();
        assert_eq!(out, again);
        // The embedding separates the two halos' mass scales along some
        // axis: not all coordinates identical.
        let ux = out.column("umap_x").unwrap().as_f64_slice().unwrap();
        assert!(ux.iter().any(|&v| (v - ux[0]).abs() > 1e-9));
    }

    #[test]
    fn radius_query_selects_neighbors() {
        let out = run(
            "latest = filter(halos, step == 624)\nreturn radius_query(latest, 1, 20.0)",
        )
        .unwrap();
        // Only halo 1 itself is within 20 Mpc (halo 2 is ~55 Mpc away).
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.cell("fof_halo_tag", 0).unwrap(), infera_frame::Value::I64(1));
        assert!(out.has_column("distance_mpc"));
        // Wider radius catches both.
        let out = run(
            "latest = filter(halos, step == 624)\nreturn radius_query(latest, 1, 100.0)",
        )
        .unwrap();
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn radius_query_periodic_wrap() {
        let df = DataFrame::from_columns([
            ("fof_halo_tag", Column::from(vec![1i64, 2])),
            ("fof_halo_center_x", Column::from(vec![1.0, 255.0])),
            ("fof_halo_center_y", Column::from(vec![0.0, 0.0])),
            ("fof_halo_center_z", Column::from(vec![0.0, 0.0])),
        ])
        .unwrap();
        let server = SandboxServer::new(domain_registry());
        let mut inputs = HashMap::new();
        inputs.insert("h".to_string(), df);
        // Without box: distance 254 -> not within 10. With box 256: 2.
        let out = server
            .execute(ExecutionRequest {
                program: "return radius_query(h, 1, 10.0)".into(),
                inputs: inputs.clone(),
            })
            .unwrap()
            .result;
        assert_eq!(out.n_rows(), 1);
        let out = server
            .execute(ExecutionRequest {
                program: "return radius_query(h, 1, 10.0, box_size=256.0)".into(),
                inputs,
            })
            .unwrap()
            .result;
        assert_eq!(out.n_rows(), 2);
    }

    #[test]
    fn registry_catalog_lists_tools() {
        let reg = domain_registry();
        assert_eq!(reg.names().len(), 4);
        let cat = reg.catalog();
        assert!(cat.contains("track_halo"));
        assert!(cat.contains("radius_query"));
    }
}
