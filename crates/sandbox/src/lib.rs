//! # infera-sandbox
//!
//! The sandboxed code-execution environment of InferA (§3.2 of the
//! paper). The original system generates *Python over pandas* and runs it
//! on an isolated FastAPI/Uvicorn server against temporary data copies;
//! this crate reproduces the same contract with a small dataframe DSL:
//!
//! * [`lang`] — the analysis language (lexer/parser), with the operational
//!   vocabulary of the generated pandas code (filter/sort/join/group_agg/
//!   linfit/...);
//! * [`interp`] — the interpreter with ~20 built-in dataframe operations;
//! * [`tool`] — the custom-tool registry ("multi-tool functionality"),
//!   letting domain algorithms plug into generated programs;
//! * [`domain`] — the paper's domain tools: halo tracking across
//!   timesteps, interestingness scoring, 2-D embedding, radius queries;
//! * [`gateway`] — the execution server: deep-copied inputs, worker
//!   thread, hard deadline, structured errors. Ground truth is immutable
//!   by construction.

pub mod domain;
pub mod error;
pub mod gateway;
pub mod interp;
pub mod lang;
pub mod tool;

pub use error::{ErrorKind, SandboxError, SandboxResult};
pub use gateway::{ExecutionReport, ExecutionRequest, SandboxServer};
pub use interp::{ProgramOutput, StepLog, BUILTINS};
pub use tool::{Tool, ToolArgs, ToolRegistry, ToolValue};
