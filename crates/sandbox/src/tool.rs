//! Custom-tool plumbing (§3: "custom algorithmic functions operating on
//! pandas dataframes can be added to the system, and the agents will be
//! able to apply these custom functions when appropriate").

use crate::error::{ErrorKind, SandboxError, SandboxResult};
use infera_frame::DataFrame;
use std::collections::HashMap;
use std::sync::Arc;

/// An evaluated tool-call argument.
#[derive(Debug, Clone)]
pub enum ToolValue {
    Frame(DataFrame),
    Int(i64),
    Num(f64),
    Str(String),
    List(Vec<ToolValue>),
}

impl ToolValue {
    pub fn as_frame(&self) -> SandboxResult<&DataFrame> {
        match self {
            ToolValue::Frame(f) => Ok(f),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("expected a dataframe argument, got {other:?}"),
            )),
        }
    }

    pub fn as_num(&self) -> SandboxResult<f64> {
        match self {
            ToolValue::Num(v) => Ok(*v),
            ToolValue::Int(v) => Ok(*v as f64),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("expected a number argument, got {other:?}"),
            )),
        }
    }

    pub fn as_int(&self) -> SandboxResult<i64> {
        match self {
            ToolValue::Int(v) => Ok(*v),
            ToolValue::Num(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("expected an integer argument, got {other:?}"),
            )),
        }
    }

    /// Strings and bare identifiers both surface as `Str`.
    pub fn as_str(&self) -> SandboxResult<&str> {
        match self {
            ToolValue::Str(s) => Ok(s),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("expected a string/column argument, got {other:?}"),
            )),
        }
    }

    /// A list of column names.
    pub fn as_str_list(&self) -> SandboxResult<Vec<String>> {
        match self {
            ToolValue::List(items) => items
                .iter()
                .map(|i| i.as_str().map(str::to_string))
                .collect(),
            ToolValue::Str(s) => Ok(vec![s.clone()]),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("expected a list of columns, got {other:?}"),
            )),
        }
    }
}

/// Evaluated arguments of one tool call.
#[derive(Debug, Clone, Default)]
pub struct ToolArgs {
    pub positional: Vec<ToolValue>,
    pub named: HashMap<String, ToolValue>,
}

impl ToolArgs {
    /// Positional argument by index.
    pub fn pos(&self, idx: usize) -> SandboxResult<&ToolValue> {
        self.positional.get(idx).ok_or_else(|| {
            SandboxError::new(
                ErrorKind::BadArguments,
                format!("missing positional argument {idx}"),
            )
        })
    }

    /// Named argument, or positional fallback.
    pub fn named_or_pos(&self, name: &str, idx: usize) -> SandboxResult<&ToolValue> {
        if let Some(v) = self.named.get(name) {
            return Ok(v);
        }
        self.positional.get(idx).ok_or_else(|| {
            SandboxError::new(
                ErrorKind::BadArguments,
                format!("missing argument '{name}'"),
            )
        })
    }

    /// Optional named argument.
    pub fn opt_named(&self, name: &str) -> Option<&ToolValue> {
        self.named.get(name)
    }
}

/// A callable custom tool.
pub trait Tool: Send + Sync {
    /// Call name used in generated programs.
    fn name(&self) -> &str;
    /// One-line description exposed to the planning/programming agents.
    fn description(&self) -> &str;
    /// Execute on evaluated arguments, producing a dataframe.
    fn call(&self, args: &ToolArgs) -> SandboxResult<DataFrame>;
}

/// A registry of custom tools, shared by the sandbox and the agents (which
/// list tool descriptions in their prompts).
#[derive(Clone, Default)]
pub struct ToolRegistry {
    tools: HashMap<String, Arc<dyn Tool>>,
}

impl ToolRegistry {
    pub fn new() -> ToolRegistry {
        ToolRegistry::default()
    }

    /// Register a tool; replaces any previous tool of the same name.
    pub fn register(&mut self, tool: Arc<dyn Tool>) {
        self.tools.insert(tool.name().to_string(), tool);
    }

    pub fn get(&self, name: &str) -> Option<&Arc<dyn Tool>> {
        self.tools.get(name)
    }

    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tools.keys().cloned().collect();
        names.sort();
        names
    }

    /// `name: description` lines for agent prompts.
    pub fn catalog(&self) -> String {
        let mut lines: Vec<String> = self
            .tools
            .values()
            .map(|t| format!("{}: {}", t.name(), t.description()))
            .collect();
        lines.sort();
        lines.join("\n")
    }
}

impl std::fmt::Debug for ToolRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolRegistry")
            .field("tools", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_frame::Column;

    struct Doubler;
    impl Tool for Doubler {
        fn name(&self) -> &str {
            "double_mass"
        }
        fn description(&self) -> &str {
            "double the mass column"
        }
        fn call(&self, args: &ToolArgs) -> SandboxResult<DataFrame> {
            let f = args.pos(0)?.as_frame()?;
            let mut out = f.clone();
            let doubled: Vec<f64> = f
                .column("mass")
                .map_err(SandboxError::from)?
                .to_f64_vec()
                .map_err(SandboxError::from)?
                .iter()
                .map(|v| v * 2.0)
                .collect();
            out.set_column("mass", Column::F64(doubled))
                .map_err(SandboxError::from)?;
            Ok(out)
        }
    }

    #[test]
    fn registry_register_and_call() {
        let mut reg = ToolRegistry::new();
        reg.register(Arc::new(Doubler));
        assert_eq!(reg.names(), vec!["double_mass".to_string()]);
        assert!(reg.catalog().contains("double the mass"));
        let df = DataFrame::from_columns([("mass", Column::from(vec![1.0, 2.0]))]).unwrap();
        let args = ToolArgs {
            positional: vec![ToolValue::Frame(df)],
            named: HashMap::new(),
        };
        let out = reg.get("double_mass").unwrap().call(&args).unwrap();
        assert_eq!(out.column("mass").unwrap(), &Column::F64(vec![2.0, 4.0]));
    }

    #[test]
    fn tool_value_coercions() {
        assert_eq!(ToolValue::Int(3).as_num().unwrap(), 3.0);
        assert_eq!(ToolValue::Num(3.0).as_int().unwrap(), 3);
        assert!(ToolValue::Num(3.5).as_int().is_err());
        assert_eq!(
            ToolValue::Str("a".into()).as_str_list().unwrap(),
            vec!["a".to_string()]
        );
        let list = ToolValue::List(vec![
            ToolValue::Str("a".into()),
            ToolValue::Str("b".into()),
        ]);
        assert_eq!(list.as_str_list().unwrap(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn args_accessors() {
        let mut named = HashMap::new();
        named.insert("n".to_string(), ToolValue::Int(5));
        let args = ToolArgs {
            positional: vec![ToolValue::Str("x".into())],
            named,
        };
        assert_eq!(args.named_or_pos("n", 9).unwrap().as_int().unwrap(), 5);
        assert!(args.pos(1).is_err());
        assert!(args.opt_named("missing").is_none());
    }
}
