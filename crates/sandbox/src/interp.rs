//! DSL interpreter: builtin dataframe operations + custom-tool dispatch.

use crate::error::{ErrorKind, SandboxError, SandboxResult};
use crate::lang::{DslArg, DslExpr, DslOp, Stmt};
use crate::tool::{ToolArgs, ToolRegistry, ToolValue};
use infera_frame::expr::{BinOp, UnaryFn};
use infera_frame::{AggKind, AggSpec, Column, DataFrame, Expr, JoinKind, SortOrder, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-statement execution record (feeds provenance and QA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepLog {
    pub index: usize,
    pub target: String,
    pub call: String,
    pub rows_out: usize,
    pub cols_out: usize,
}

/// Successful program execution.
#[derive(Debug, Clone)]
pub struct ProgramOutput {
    /// The returned (or last assigned) frame.
    pub result: DataFrame,
    pub steps: Vec<StepLog>,
    /// Final environment: every named frame, for checkpointing.
    pub env: HashMap<String, DataFrame>,
}

/// Built-in function names (kept in sync with `call_builtin`); used by the
/// programming agents to describe capabilities and by tests.
pub const BUILTINS: &[&str] = &[
    "filter", "select", "drop", "rename", "with_column", "sort", "top_n", "top_n_by", "head",
    "tail", "limit", "join", "group_agg", "agg", "describe", "linfit", "linfit_by",
    "fit_residuals", "peak_decline", "corr", "corr_matrix", "zscore", "quantile", "nrows",
    "union", "unique",
];

/// Run a parsed program against (copies of) the input frames.
pub fn run_program(
    stmts: &[Stmt],
    inputs: HashMap<String, DataFrame>,
    tools: &ToolRegistry,
) -> SandboxResult<ProgramOutput> {
    let mut interp = Interp {
        env: inputs,
        tools,
        steps: Vec::new(),
    };
    let mut last: Option<DataFrame> = None;
    for (i, stmt) in stmts.iter().enumerate() {
        let idx = i + 1;
        match stmt {
            Stmt::Assign { target, expr } => {
                let frame = interp
                    .eval_frame(expr)
                    .map_err(|e| e.at_statement(idx))?;
                interp.steps.push(StepLog {
                    index: idx,
                    target: target.clone(),
                    call: call_name(expr),
                    rows_out: frame.n_rows(),
                    cols_out: frame.n_cols(),
                });
                interp.env.insert(target.clone(), frame.clone());
                last = Some(frame);
            }
            Stmt::Return(expr) => {
                let frame = interp
                    .eval_frame(expr)
                    .map_err(|e| e.at_statement(idx))?;
                interp.steps.push(StepLog {
                    index: idx,
                    target: "return".into(),
                    call: call_name(expr),
                    rows_out: frame.n_rows(),
                    cols_out: frame.n_cols(),
                });
                return Ok(ProgramOutput {
                    result: frame,
                    steps: interp.steps,
                    env: interp.env,
                });
            }
        }
    }
    match last {
        Some(result) => Ok(ProgramOutput {
            result,
            steps: interp.steps,
            env: interp.env,
        }),
        None => Err(SandboxError::new(
            ErrorKind::Runtime,
            "program produced no result",
        )),
    }
}

fn call_name(expr: &DslExpr) -> String {
    match expr {
        DslExpr::Call { name, .. } => name.clone(),
        DslExpr::Ident(n) => format!("ref {n}"),
        _ => "expr".into(),
    }
}

struct Interp<'a> {
    env: HashMap<String, DataFrame>,
    tools: &'a ToolRegistry,
    steps: Vec<StepLog>,
}

impl Interp<'_> {
    fn frame(&self, name: &str) -> SandboxResult<DataFrame> {
        self.env.get(name).cloned().ok_or_else(|| {
            SandboxError::new(
                ErrorKind::UnknownFrame,
                format!("unknown dataframe '{name}'"),
            )
            .with_suggestion(infera_frame::error::suggest(
                name,
                self.env.keys().map(String::as_str),
            ))
        })
    }

    /// Evaluate a top-level expression to a frame.
    fn eval_frame(&self, expr: &DslExpr) -> SandboxResult<DataFrame> {
        match expr {
            DslExpr::Ident(name) => self.frame(name),
            DslExpr::Call { name, args } => self.call(name, args),
            other => Err(SandboxError::new(
                ErrorKind::Type,
                format!("statement must be a dataframe expression, got {other:?}"),
            )),
        }
    }

    fn call(&self, name: &str, args: &[DslArg]) -> SandboxResult<DataFrame> {
        if BUILTINS.contains(&name) {
            return self.call_builtin(name, args);
        }
        if let Some(tool) = self.tools.get(name) {
            let targs = self.eval_tool_args(args)?;
            return tool.call(&targs);
        }
        let mut candidates: Vec<String> = BUILTINS.iter().map(|s| s.to_string()).collect();
        candidates.extend(self.tools.names());
        Err(SandboxError::new(
            ErrorKind::UnknownFunction,
            format!("unknown function '{name}'"),
        )
        .with_suggestion(infera_frame::error::suggest(
            name,
            candidates.iter().map(String::as_str),
        )))
    }

    // ---------------- argument helpers ----------------

    fn positional<'b>(&self, args: &'b [DslArg]) -> Vec<&'b DslExpr> {
        args.iter()
            .filter(|a| a.name.is_none())
            .map(|a| &a.value)
            .collect()
    }

    fn named<'b>(&self, args: &'b [DslArg], key: &str) -> Option<&'b DslExpr> {
        args.iter()
            .find(|a| a.name.as_deref() == Some(key))
            .map(|a| &a.value)
    }

    fn arg_frame(&self, args: &[DslArg], idx: usize, fname: &str) -> SandboxResult<DataFrame> {
        let pos = self.positional(args);
        let expr = pos.get(idx).ok_or_else(|| {
            SandboxError::new(
                ErrorKind::BadArguments,
                format!("{fname}: missing dataframe argument {}", idx + 1),
            )
        })?;
        match expr {
            DslExpr::Ident(n) => self.frame(n),
            DslExpr::Call { name, args } => self.call(name, args),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("{fname}: argument {} must be a dataframe, got {other:?}", idx + 1),
            )),
        }
    }

    /// A column name: bare identifier or string literal.
    fn colname(expr: &DslExpr, fname: &str) -> SandboxResult<String> {
        match expr {
            DslExpr::Ident(n) | DslExpr::Str(n) => Ok(n.clone()),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("{fname}: expected a column name, got {other:?}"),
            )),
        }
    }

    fn colname_list(expr: &DslExpr, fname: &str) -> SandboxResult<Vec<String>> {
        match expr {
            DslExpr::List(items) => items.iter().map(|i| Self::colname(i, fname)).collect(),
            single => Ok(vec![Self::colname(single, fname)?]),
        }
    }

    fn int_arg(expr: &DslExpr, fname: &str) -> SandboxResult<usize> {
        match expr {
            DslExpr::Int(v) if *v >= 0 => Ok(*v as usize),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("{fname}: expected a non-negative integer, got {other:?}"),
            )),
        }
    }

    fn num_arg(expr: &DslExpr, fname: &str) -> SandboxResult<f64> {
        match expr {
            DslExpr::Int(v) => Ok(*v as f64),
            DslExpr::Float(v) => Ok(*v),
            DslExpr::Neg(inner) => Ok(-Self::num_arg(inner, fname)?),
            other => Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("{fname}: expected a number, got {other:?}"),
            )),
        }
    }

    /// Convert a DSL expression to a frame row-wise expression.
    fn to_expr(e: &DslExpr) -> SandboxResult<Expr> {
        Ok(match e {
            DslExpr::Ident(n) => Expr::Col(n.clone()),
            DslExpr::Int(v) => Expr::Lit(Value::I64(*v)),
            DslExpr::Float(v) => Expr::Lit(Value::F64(*v)),
            DslExpr::Str(s) => Expr::Lit(Value::Str(s.clone())),
            DslExpr::Bool(b) => Expr::Lit(Value::Bool(*b)),
            DslExpr::Neg(a) => Expr::Unary(UnaryFn::Neg, Box::new(Self::to_expr(a)?)),
            DslExpr::Not(a) => Expr::Unary(UnaryFn::Not, Box::new(Self::to_expr(a)?)),
            DslExpr::Binary(a, op, b) => {
                let fop = match op {
                    DslOp::Add => BinOp::Add,
                    DslOp::Sub => BinOp::Sub,
                    DslOp::Mul => BinOp::Mul,
                    DslOp::Div => BinOp::Div,
                    DslOp::Mod => BinOp::Mod,
                    DslOp::Eq => BinOp::Eq,
                    DslOp::Ne => BinOp::Ne,
                    DslOp::Lt => BinOp::Lt,
                    DslOp::Le => BinOp::Le,
                    DslOp::Gt => BinOp::Gt,
                    DslOp::Ge => BinOp::Ge,
                    DslOp::And => BinOp::And,
                    DslOp::Or => BinOp::Or,
                };
                Expr::bin(Self::to_expr(a)?, fop, Self::to_expr(b)?)
            }
            DslExpr::Call { name, args } => {
                let pos: Vec<&DslExpr> = args
                    .iter()
                    .filter(|a| a.name.is_none())
                    .map(|a| &a.value)
                    .collect();
                let unary = |f: UnaryFn| -> SandboxResult<Expr> {
                    if pos.len() != 1 {
                        return Err(SandboxError::new(
                            ErrorKind::BadArguments,
                            format!("{name} takes one argument"),
                        ));
                    }
                    Ok(Expr::Unary(f, Box::new(Self::to_expr(pos[0])?)))
                };
                match name.as_str() {
                    "abs" => unary(UnaryFn::Abs)?,
                    "sqrt" => unary(UnaryFn::Sqrt)?,
                    "log" | "ln" => unary(UnaryFn::Log)?,
                    "log10" => unary(UnaryFn::Log10)?,
                    "exp" => unary(UnaryFn::Exp)?,
                    "floor" => unary(UnaryFn::Floor)?,
                    "ceil" => unary(UnaryFn::Ceil)?,
                    "pow" => {
                        if pos.len() != 2 {
                            return Err(SandboxError::new(
                                ErrorKind::BadArguments,
                                "pow takes two arguments",
                            ));
                        }
                        Expr::bin(Self::to_expr(pos[0])?, BinOp::Pow, Self::to_expr(pos[1])?)
                    }
                    "least" | "greatest" => {
                        if pos.len() != 2 {
                            return Err(SandboxError::new(
                                ErrorKind::BadArguments,
                                format!("{name} takes two arguments"),
                            ));
                        }
                        let a = Box::new(Self::to_expr(pos[0])?);
                        let b = Box::new(Self::to_expr(pos[1])?);
                        if name == "least" {
                            Expr::Min2(a, b)
                        } else {
                            Expr::Max2(a, b)
                        }
                    }
                    other => {
                        return Err(SandboxError::new(
                            ErrorKind::UnknownFunction,
                            format!("unknown scalar function '{other}' in expression"),
                        ))
                    }
                }
            }
            DslExpr::List(_) => {
                return Err(SandboxError::new(
                    ErrorKind::Type,
                    "a list is not a row-wise expression",
                ))
            }
        })
    }

    /// Parse an aggregate call like `mean(mass)` / `count()` / `count(*)`.
    fn agg_spec(e: &DslExpr) -> SandboxResult<AggSpec> {
        let DslExpr::Call { name, args } = e else {
            return Err(SandboxError::new(
                ErrorKind::BadArguments,
                format!("expected an aggregate call like mean(column), got {e:?}"),
            ));
        };
        let kind = AggKind::parse(name).ok_or_else(|| {
            SandboxError::new(
                ErrorKind::BadArguments,
                format!("unknown aggregate '{name}'"),
            )
        })?;
        let pos: Vec<&DslExpr> = args
            .iter()
            .filter(|a| a.name.is_none())
            .map(|a| &a.value)
            .collect();
        let column = match pos.first() {
            None => "*".to_string(),
            Some(DslExpr::Str(s)) if s == "*" => "*".to_string(),
            Some(e) => Self::colname(e, name)?,
        };
        let mut spec = AggSpec::new(column, kind);
        if let Some(alias) = args.iter().find(|a| a.name.as_deref() == Some("alias")) {
            spec = spec.with_alias(Self::colname(&alias.value, "alias")?);
        } else if spec.column == "*" {
            spec = spec.with_alias(format!("{}_rows", kind.name()));
        }
        Ok(spec)
    }

    fn eval_tool_args(&self, args: &[DslArg]) -> SandboxResult<ToolArgs> {
        let mut out = ToolArgs::default();
        for a in args {
            let v = self.eval_tool_value(&a.value)?;
            match &a.name {
                Some(n) => {
                    out.named.insert(n.clone(), v);
                }
                None => out.positional.push(v),
            }
        }
        Ok(out)
    }

    fn eval_tool_value(&self, e: &DslExpr) -> SandboxResult<ToolValue> {
        Ok(match e {
            // Bare identifier: a frame if one exists, else a column name.
            DslExpr::Ident(n) => match self.env.get(n) {
                Some(f) => ToolValue::Frame(f.clone()),
                None => ToolValue::Str(n.clone()),
            },
            DslExpr::Int(v) => ToolValue::Int(*v),
            DslExpr::Float(v) => ToolValue::Num(*v),
            DslExpr::Neg(inner) => match self.eval_tool_value(inner)? {
                ToolValue::Int(v) => ToolValue::Int(-v),
                ToolValue::Num(v) => ToolValue::Num(-v),
                other => {
                    return Err(SandboxError::new(
                        ErrorKind::BadArguments,
                        format!("cannot negate {other:?}"),
                    ))
                }
            },
            DslExpr::Str(s) => ToolValue::Str(s.clone()),
            DslExpr::List(items) => ToolValue::List(
                items
                    .iter()
                    .map(|i| self.eval_tool_value(i))
                    .collect::<SandboxResult<_>>()?,
            ),
            DslExpr::Call { name, args } => ToolValue::Frame(self.call(name, args)?),
            other => {
                return Err(SandboxError::new(
                    ErrorKind::BadArguments,
                    format!("unsupported tool argument: {other:?}"),
                ))
            }
        })
    }

    // ---------------- builtins ----------------

    fn call_builtin(&self, name: &str, args: &[DslArg]) -> SandboxResult<DataFrame> {
        let pos = self.positional(args);
        match name {
            "filter" => {
                let f = self.arg_frame(args, 0, name)?;
                let pred = pos.get(1).ok_or_else(|| {
                    SandboxError::new(ErrorKind::BadArguments, "filter: missing predicate")
                })?;
                let expr = Self::to_expr(pred)?;
                Ok(f.filter_expr(&expr)?)
            }
            "select" => {
                let f = self.arg_frame(args, 0, name)?;
                let mut cols = Vec::new();
                for p in pos.iter().skip(1) {
                    cols.extend(Self::colname_list(p, name)?);
                }
                if cols.is_empty() {
                    return Err(SandboxError::new(
                        ErrorKind::BadArguments,
                        "select: no columns given",
                    ));
                }
                Ok(f.select(&cols)?)
            }
            "drop" => {
                let mut f = self.arg_frame(args, 0, name)?;
                for p in pos.iter().skip(1) {
                    for c in Self::colname_list(p, name)? {
                        f.drop_column(&c)?;
                    }
                }
                Ok(f)
            }
            "rename" => {
                let mut f = self.arg_frame(args, 0, name)?;
                let old = Self::colname(
                    pos.get(1).ok_or_else(|| missing(name, "old name"))?,
                    name,
                )?;
                let new = Self::colname(
                    pos.get(2).ok_or_else(|| missing(name, "new name"))?,
                    name,
                )?;
                f.rename(&old, &new)?;
                Ok(f)
            }
            "with_column" => {
                let mut f = self.arg_frame(args, 0, name)?;
                let col = Self::colname(
                    pos.get(1).ok_or_else(|| missing(name, "column name"))?,
                    name,
                )?;
                let expr = Self::to_expr(pos.get(2).ok_or_else(|| missing(name, "expression"))?)?;
                f.with_column(&col, &expr)?;
                Ok(f)
            }
            "sort" => {
                let f = self.arg_frame(args, 0, name)?;
                let mut keys: Vec<(String, SortOrder)> = Vec::new();
                let mut desc = false;
                for p in pos.iter().skip(1) {
                    match p {
                        DslExpr::Ident(s) if s == "desc" => desc = true,
                        DslExpr::Ident(s) if s == "asc" => desc = false,
                        other => {
                            for c in Self::colname_list(other, name)? {
                                keys.push((c, SortOrder::Ascending));
                            }
                        }
                    }
                }
                if let Some(by) = self.named(args, "by") {
                    for c in Self::colname_list(by, name)? {
                        keys.push((c, SortOrder::Ascending));
                    }
                }
                if keys.is_empty() {
                    return Err(SandboxError::new(
                        ErrorKind::BadArguments,
                        "sort: no key columns given",
                    ));
                }
                if desc {
                    for k in &mut keys {
                        k.1 = SortOrder::Descending;
                    }
                }
                let refs: Vec<(&str, SortOrder)> =
                    keys.iter().map(|(c, o)| (c.as_str(), *o)).collect();
                Ok(f.sort_by(&refs)?)
            }
            "top_n" => {
                let f = self.arg_frame(args, 0, name)?;
                let col = Self::colname(
                    pos.get(1).ok_or_else(|| missing(name, "column"))?,
                    name,
                )?;
                let n = Self::int_arg(pos.get(2).ok_or_else(|| missing(name, "n"))?, name)?;
                Ok(f.top_n(&col, n)?)
            }
            "head" | "limit" => {
                let f = self.arg_frame(args, 0, name)?;
                let n = Self::int_arg(pos.get(1).ok_or_else(|| missing(name, "n"))?, name)?;
                Ok(f.head(n))
            }
            "tail" => {
                let f = self.arg_frame(args, 0, name)?;
                let n = Self::int_arg(pos.get(1).ok_or_else(|| missing(name, "n"))?, name)?;
                Ok(f.tail(n))
            }
            "join" => {
                let left = self.arg_frame(args, 0, name)?;
                let right = self.arg_frame(args, 1, name)?;
                let (lcol, rcol) = if let Some(on) = self.named(args, "on") {
                    let c = Self::colname(on, name)?;
                    (c.clone(), c)
                } else if let (Some(lo), Some(ro)) = (
                    self.named(args, "left_on"),
                    self.named(args, "right_on"),
                ) {
                    (Self::colname(lo, name)?, Self::colname(ro, name)?)
                } else if let Some(p) = pos.get(2) {
                    let c = Self::colname(p, name)?;
                    (c.clone(), c)
                } else {
                    return Err(SandboxError::new(
                        ErrorKind::BadArguments,
                        "join: missing join key (use on=column)",
                    ));
                };
                let kind = match self.named(args, "how") {
                    Some(DslExpr::Str(s)) | Some(DslExpr::Ident(s)) if s == "left" => {
                        JoinKind::Left
                    }
                    Some(DslExpr::Str(s)) | Some(DslExpr::Ident(s)) if s == "inner" => {
                        JoinKind::Inner
                    }
                    None => JoinKind::Inner,
                    Some(other) => {
                        return Err(SandboxError::new(
                            ErrorKind::BadArguments,
                            format!("join: unsupported how={other:?}"),
                        ))
                    }
                };
                Ok(left.join(&right, &lcol, &rcol, kind)?)
            }
            "group_agg" => {
                let f = self.arg_frame(args, 0, name)?;
                let by = self
                    .named(args, "by")
                    .ok_or_else(|| missing(name, "by=[columns]"))?;
                let keys = Self::colname_list(by, name)?;
                let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let mut specs = Vec::new();
                for p in pos.iter().skip(1) {
                    specs.push(Self::agg_spec(p)?);
                }
                if specs.is_empty() {
                    return Err(SandboxError::new(
                        ErrorKind::BadArguments,
                        "group_agg: no aggregates given",
                    ));
                }
                Ok(f.group_by(&key_refs, &specs)?)
            }
            "agg" => {
                let f = self.arg_frame(args, 0, name)?;
                let mut out = DataFrame::new();
                for p in pos.iter().skip(1) {
                    let spec = Self::agg_spec(p)?;
                    let v = f.aggregate(&spec.column, spec.kind)?;
                    out.add_column(spec.alias, Column::F64(vec![v]))?;
                }
                if out.n_cols() == 0 {
                    return Err(SandboxError::new(
                        ErrorKind::BadArguments,
                        "agg: no aggregates given",
                    ));
                }
                Ok(out)
            }
            "describe" => Ok(self.arg_frame(args, 0, name)?.describe()?),
            "top_n_by" => {
                // Per-group top-n: top_n_by(frame, column, n, by=group).
                let f = self.arg_frame(args, 0, name)?;
                let col = Self::colname(pos.get(1).ok_or_else(|| missing(name, "column"))?, name)?;
                let n = Self::int_arg(pos.get(2).ok_or_else(|| missing(name, "n"))?, name)?;
                let by = match (self.named(args, "by"), pos.get(3)) {
                    (Some(e), _) => Self::colname(e, name)?,
                    (None, Some(e)) => Self::colname(e, name)?,
                    _ => return Err(missing(name, "by column")),
                };
                let sorted = f.sort_by(&[
                    (by.as_str(), SortOrder::Ascending),
                    (col.as_str(), SortOrder::Descending),
                ])?;
                let group = sorted.column(&by)?.clone();
                let mut keep = vec![false; sorted.n_rows()];
                let mut current: Option<Value> = None;
                let mut count = 0usize;
                for (i, k) in keep.iter_mut().enumerate() {
                    let g = group.get(i);
                    if current.as_ref() != Some(&g) {
                        current = Some(g);
                        count = 0;
                    }
                    if count < n {
                        *k = true;
                    }
                    count += 1;
                }
                Ok(sorted.filter_mask(&keep)?)
            }
            "linfit_by" => {
                // Per-group OLS fit: linfit_by(frame, x=?, y=?, by=?).
                let f = self.arg_frame(args, 0, name)?;
                let x = Self::colname(
                    self.named(args, "x")
                        .or(pos.get(1).copied())
                        .ok_or_else(|| missing(name, "x"))?,
                    name,
                )?;
                let y = Self::colname(
                    self.named(args, "y")
                        .or(pos.get(2).copied())
                        .ok_or_else(|| missing(name, "y"))?,
                    name,
                )?;
                let by = Self::colname(
                    self.named(args, "by")
                        .or(pos.get(3).copied())
                        .ok_or_else(|| missing(name, "by"))?,
                    name,
                )?;
                let group = f.column(&by)?.clone();
                // First-seen group order.
                let mut keys: Vec<Value> = Vec::new();
                for v in group.iter_values() {
                    if !keys.contains(&v) {
                        keys.push(v);
                    }
                }
                let mut out_key = Column::empty(group.dtype());
                let (mut slope, mut intercept, mut r, mut scatter, mut nn) =
                    (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
                for key in keys {
                    let mask: Vec<bool> =
                        group.iter_values().map(|v| v == key).collect();
                    let sub = f.filter_mask(&mask)?;
                    match sub.linfit(&x, &y) {
                        Ok(fit) => {
                            out_key.push(key)?;
                            slope.push(fit.slope);
                            intercept.push(fit.intercept);
                            r.push(fit.r);
                            scatter.push(fit.scatter);
                            nn.push(fit.n as i64);
                        }
                        Err(_) => continue, // degenerate group skipped
                    }
                }
                let mut out = DataFrame::new();
                out.add_column(by, out_key)?;
                out.add_column("slope".into(), Column::F64(slope))?;
                out.add_column("intercept".into(), Column::F64(intercept))?;
                out.add_column("r".into(), Column::F64(r))?;
                out.add_column("scatter".into(), Column::F64(scatter))?;
                out.add_column("n".into(), Column::I64(nn))?;
                Ok(out)
            }
            "fit_residuals" => {
                // Fit y(x) and attach per-row 'predicted' and 'residual'.
                let f = self.arg_frame(args, 0, name)?;
                let x = Self::colname(
                    self.named(args, "x")
                        .or(pos.get(1).copied())
                        .ok_or_else(|| missing(name, "x"))?,
                    name,
                )?;
                let y = Self::colname(
                    self.named(args, "y")
                        .or(pos.get(2).copied())
                        .ok_or_else(|| missing(name, "y"))?,
                    name,
                )?;
                let fit = f.linfit(&x, &y)?;
                let xv = f.column(&x)?.to_f64_vec()?;
                let yv = f.column(&y)?.to_f64_vec()?;
                let predicted: Vec<f64> =
                    xv.iter().map(|&v| fit.slope * v + fit.intercept).collect();
                let residual: Vec<f64> = yv
                    .iter()
                    .zip(&predicted)
                    .map(|(&obs, &pred)| obs - pred)
                    .collect();
                let mut out = f.clone();
                out.set_column("predicted", Column::F64(predicted))?;
                out.set_column("residual", Column::F64(residual))?;
                Ok(out)
            }
            "peak_decline" => {
                // Locate the x of max y, then fit log10(y) decline after it.
                let f = self.arg_frame(args, 0, name)?;
                let x = Self::colname(
                    self.named(args, "x")
                        .or(pos.get(1).copied())
                        .ok_or_else(|| missing(name, "x"))?,
                    name,
                )?;
                let y = Self::colname(
                    self.named(args, "y")
                        .or(pos.get(2).copied())
                        .ok_or_else(|| missing(name, "y"))?,
                    name,
                )?;
                let xv = f.column(&x)?.to_f64_vec()?;
                let yv = f.column(&y)?.to_f64_vec()?;
                let peak = yv
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_finite())
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .ok_or_else(|| {
                        SandboxError::new(ErrorKind::Runtime, "peak_decline: no finite values")
                    })?;
                let (peak_idx, &peak_y) = peak;
                let peak_x = xv[peak_idx];
                let after: Vec<(f64, f64)> = xv
                    .iter()
                    .zip(&yv)
                    .filter(|(&px, &py)| px >= peak_x && py > 0.0)
                    .map(|(&px, &py)| (px, py.log10()))
                    .collect();
                let decline = if after.len() >= 2 {
                    let ax: Vec<f64> = after.iter().map(|p| p.0).collect();
                    let ay: Vec<f64> = after.iter().map(|p| p.1).collect();
                    infera_frame::stats::linear_fit(&ax, &ay)
                        .map(|fit| fit.slope)
                        .unwrap_or(f64::NAN)
                } else {
                    f64::NAN
                };
                Ok(DataFrame::from_columns([
                    ("peak_x", Column::F64(vec![peak_x])),
                    ("peak_value", Column::F64(vec![peak_y])),
                    ("decline_log_slope", Column::F64(vec![decline])),
                ])?)
            }
            "linfit" => {
                let f = self.arg_frame(args, 0, name)?;
                let x = match (self.named(args, "x"), pos.get(1)) {
                    (Some(e), _) => Self::colname(e, name)?,
                    (None, Some(e)) => Self::colname(e, name)?,
                    _ => return Err(missing(name, "x column")),
                };
                let y = match (self.named(args, "y"), pos.get(2)) {
                    (Some(e), _) => Self::colname(e, name)?,
                    (None, Some(e)) => Self::colname(e, name)?,
                    _ => return Err(missing(name, "y column")),
                };
                let fit = f.linfit(&x, &y)?;
                Ok(DataFrame::from_columns([
                    ("slope", Column::F64(vec![fit.slope])),
                    ("intercept", Column::F64(vec![fit.intercept])),
                    ("r", Column::F64(vec![fit.r])),
                    ("scatter", Column::F64(vec![fit.scatter])),
                    ("n", Column::I64(vec![fit.n as i64])),
                ])?)
            }
            "corr" => {
                let f = self.arg_frame(args, 0, name)?;
                let a = Self::colname(pos.get(1).ok_or_else(|| missing(name, "a"))?, name)?;
                let b = Self::colname(pos.get(2).ok_or_else(|| missing(name, "b"))?, name)?;
                let c = f.corr(&a, &b)?;
                Ok(DataFrame::from_columns([(
                    "corr",
                    Column::F64(vec![c]),
                )])?)
            }
            "corr_matrix" => {
                let f = self.arg_frame(args, 0, name)?;
                let cols = Self::colname_list(
                    pos.get(1).ok_or_else(|| missing(name, "columns"))?,
                    name,
                )?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                Ok(f.corr_matrix(&refs)?)
            }
            "zscore" => {
                let f = self.arg_frame(args, 0, name)?;
                let cols = Self::colname_list(
                    pos.get(1).ok_or_else(|| missing(name, "columns"))?,
                    name,
                )?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                Ok(f.zscore(&refs)?)
            }
            "quantile" => {
                let f = self.arg_frame(args, 0, name)?;
                let col = Self::colname(pos.get(1).ok_or_else(|| missing(name, "column"))?, name)?;
                let q = Self::num_arg(pos.get(2).ok_or_else(|| missing(name, "q"))?, name)?;
                let v = f.quantile_of(&col, q)?;
                Ok(DataFrame::from_columns([(
                    "quantile",
                    Column::F64(vec![v]),
                )])?)
            }
            "nrows" => {
                let f = self.arg_frame(args, 0, name)?;
                Ok(DataFrame::from_columns([(
                    "n",
                    Column::I64(vec![f.n_rows() as i64]),
                )])?)
            }
            "union" => {
                let mut a = self.arg_frame(args, 0, name)?;
                let b = self.arg_frame(args, 1, name)?;
                a.vstack(&b)?;
                Ok(a)
            }
            "unique" => {
                let f = self.arg_frame(args, 0, name)?;
                let col = Self::colname(pos.get(1).ok_or_else(|| missing(name, "column"))?, name)?;
                let spec = AggSpec::new(col.clone(), AggKind::Count).with_alias("n");
                Ok(f.group_by(&[col.as_str()], &[spec])?)
            }
            other => unreachable!("builtin dispatch missed '{other}'"),
        }
    }
}

fn missing(fname: &str, what: &str) -> SandboxError {
    SandboxError::new(
        ErrorKind::BadArguments,
        format!("{fname}: missing {what}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parse_program;

    fn halos() -> DataFrame {
        DataFrame::from_columns([
            ("fof_halo_tag", Column::from(vec![1i64, 2, 3, 4])),
            ("sim", Column::from(vec![0i64, 0, 1, 1])),
            (
                "fof_halo_mass",
                Column::from(vec![1e12, 5e13, 2e14, 8e13]),
            ),
            ("fof_halo_count", Column::from(vec![769i64, 38461, 153846, 61538])),
        ])
        .unwrap()
    }

    fn gals() -> DataFrame {
        DataFrame::from_columns([
            ("gal_tag", Column::from(vec![10i64, 11, 12])),
            ("fof_halo_tag", Column::from(vec![1i64, 3, 3])),
            ("gal_mass", Column::from(vec![1e10, 3e11, 4e10])),
        ])
        .unwrap()
    }

    fn run(src: &str) -> SandboxResult<ProgramOutput> {
        let stmts = parse_program(src)?;
        let mut inputs = HashMap::new();
        inputs.insert("halos".to_string(), halos());
        inputs.insert("galaxies".to_string(), gals());
        run_program(&stmts, inputs, &ToolRegistry::new())
    }

    #[test]
    fn filter_topn_pipeline() {
        let out = run("big = filter(halos, fof_halo_mass > 1e13)\n\
                       top = top_n(big, fof_halo_mass, 2)\n\
                       return top")
            .unwrap();
        assert_eq!(out.result.n_rows(), 2);
        assert_eq!(
            out.result.cell("fof_halo_tag", 0).unwrap(),
            Value::I64(3)
        );
        assert_eq!(out.steps.len(), 3);
        assert_eq!(out.steps[0].call, "filter");
    }

    #[test]
    fn join_and_group() {
        let out = run(
            "j = join(halos, galaxies, on=fof_halo_tag)\n\
             g = group_agg(j, by=[fof_halo_tag], count(*), sum(gal_mass))\n\
             return g",
        )
        .unwrap();
        assert_eq!(out.result.n_rows(), 2);
        assert!(out.result.has_column("count_rows"));
        assert!(out.result.has_column("sum_gal_mass"));
    }

    #[test]
    fn with_column_computed() {
        let out = run(
            "h = with_column(halos, log_mass, log10(fof_halo_mass))\n\
             return select(h, [fof_halo_tag, log_mass])",
        )
        .unwrap();
        assert_eq!(out.result.n_cols(), 2);
        let lm = out.result.cell("log_mass", 0).unwrap().as_f64().unwrap();
        assert!((lm - 12.0).abs() < 1e-12);
    }

    #[test]
    fn linfit_one_row() {
        let out = run(
            "h = with_column(halos, lm, log10(fof_halo_mass))\n\
             h2 = with_column(h, lc, log10(fof_halo_count))\n\
             return linfit(h2, x=lm, y=lc)",
        )
        .unwrap();
        assert_eq!(out.result.n_rows(), 1);
        let slope = out.result.cell("slope", 0).unwrap().as_f64().unwrap();
        assert!((slope - 1.0).abs() < 1e-3, "slope {slope}"); // count ∝ mass (rounded)
    }

    #[test]
    fn unknown_column_error_has_suggestion_and_statement() {
        let err = run("x = filter(halos, center_x > 1)\nreturn x").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownColumn);
        assert_eq!(err.statement, Some(1));
    }

    #[test]
    fn unknown_frame_suggestion() {
        let err = run("x = filter(halo, fof_halo_mass > 1)").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownFrame);
        assert_eq!(err.suggestion.as_deref(), Some("halos"));
    }

    #[test]
    fn unknown_function_suggestion() {
        let err = run("x = filtr(halos, fof_halo_mass > 1)").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownFunction);
        assert_eq!(err.suggestion.as_deref(), Some("filter"));
    }

    #[test]
    fn nested_calls() {
        let out = run("return head(sort(halos, fof_halo_mass, desc), 1)").unwrap();
        assert_eq!(out.result.cell("fof_halo_tag", 0).unwrap(), Value::I64(3));
    }

    #[test]
    fn sort_multi_key_named_by() {
        let out = run("return sort(halos, by=[sim, fof_halo_mass])").unwrap();
        assert_eq!(out.result.cell("sim", 0).unwrap(), Value::I64(0));
        assert_eq!(
            out.result.cell("fof_halo_mass", 0).unwrap(),
            Value::F64(1e12)
        );
    }

    #[test]
    fn agg_describe_quantile_corr() {
        let out = run("return agg(halos, mean(fof_halo_mass), max(fof_halo_count))").unwrap();
        assert_eq!(out.result.n_rows(), 1);
        let out = run("return describe(halos)").unwrap();
        assert_eq!(out.result.n_rows(), 8);
        let out = run("return quantile(halos, fof_halo_mass, 0.5)").unwrap();
        assert_eq!(out.result.n_rows(), 1);
        let out = run("return corr(halos, fof_halo_mass, fof_halo_count)").unwrap();
        let c = out.result.cell("corr", 0).unwrap().as_f64().unwrap();
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn union_and_nrows() {
        let out = run("u = union(halos, halos)\nreturn nrows(u)").unwrap();
        assert_eq!(out.result.cell("n", 0).unwrap(), Value::I64(8));
    }

    #[test]
    fn left_join_keeps_rows() {
        let out = run("return join(halos, galaxies, on=fof_halo_tag, how=left)").unwrap();
        assert_eq!(out.result.n_rows(), 5); // halo 3 matches 2; halos 2,4 unmatched
    }

    #[test]
    fn last_assignment_is_result_without_return() {
        let out = run("a = head(halos, 3)\nb = head(a, 1)").unwrap();
        assert_eq!(out.result.n_rows(), 1);
        assert!(out.env.contains_key("a"));
        assert!(out.env.contains_key("b"));
    }

    #[test]
    fn inputs_not_mutated() {
        let original = halos();
        let out = run("h = with_column(halos, x2, fof_halo_mass * 2)\nreturn h").unwrap();
        // The env's "halos" is untouched; only "h" has the new column.
        assert_eq!(out.env.get("halos").unwrap(), &original);
        assert!(out.env.get("h").unwrap().has_column("x2"));
    }

    #[test]
    fn top_n_by_keeps_n_per_group() {
        let out = run(
            "j = join(galaxies, halos, on=fof_halo_tag)\n\
             return top_n_by(j, gal_mass, 1, by=fof_halo_tag)",
        )
        .unwrap();
        // Halos 1 and 3 have galaxies; one row each, the largest.
        assert_eq!(out.result.n_rows(), 2);
        let masses = out
            .result
            .column("gal_mass")
            .unwrap()
            .as_f64_slice()
            .unwrap()
            .to_vec();
        assert!(masses.contains(&1e10)); // halo 1's only galaxy
        assert!(masses.contains(&3e11)); // halo 3's largest of two
    }

    #[test]
    fn linfit_by_fits_each_group() {
        let out = run(
            "h = with_column(halos, lm, log10(fof_halo_mass))\n\
             h2 = with_column(h, lc, log10(fof_halo_count))\n\
             return linfit_by(h2, x=lm, y=lc, by=sim)",
        )
        .unwrap();
        assert_eq!(out.result.n_rows(), 2); // sims 0 and 1
        for r in 0..2 {
            let slope = out.result.cell("slope", r).unwrap().as_f64().unwrap();
            assert!((slope - 1.0).abs() < 0.01, "slope {slope}");
        }
        assert!(out.result.has_column("scatter"));
    }

    #[test]
    fn fit_residuals_attaches_columns() {
        let out = run("return fit_residuals(halos, x=fof_halo_mass, y=fof_halo_count)").unwrap();
        assert!(out.result.has_column("predicted"));
        assert!(out.result.has_column("residual"));
        assert_eq!(out.result.n_rows(), 4);
        // Residuals of a perfect-ish linear relation are small relative to
        // the counts.
        let resid = out.result.column("residual").unwrap().as_f64_slice().unwrap();
        let counts = out.result.column("fof_halo_count").unwrap().as_i64_slice().unwrap();
        for (r, c) in resid.iter().zip(counts) {
            assert!(r.abs() < 0.05 * *c as f64, "residual {r} vs count {c}");
        }
    }

    #[test]
    fn peak_decline_finds_peak() {
        let out = run(
            "g = group_agg(halos, by=[sim], sum(fof_halo_mass, alias=total))\n\
             return peak_decline(g, x=sim, y=total)",
        )
        .unwrap();
        assert_eq!(out.result.n_rows(), 1);
        assert!(out.result.has_column("peak_x"));
        assert!(out.result.has_column("decline_log_slope"));
    }

    #[test]
    fn zscore_and_corr_matrix() {
        let out = run("return zscore(halos, [fof_halo_mass])").unwrap();
        assert!(out.result.has_column("fof_halo_mass_z"));
        let out = run("return corr_matrix(halos, [fof_halo_mass, fof_halo_count])").unwrap();
        assert_eq!(out.result.n_rows(), 2);
    }
}
