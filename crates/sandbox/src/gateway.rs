//! The sandboxed execution gateway.
//!
//! The original InferA runs generated code on an ASGI server (FastAPI +
//! Uvicorn): the system transmits code and a *temporary data copy*, the
//! server executes, detects errors, and returns either an error-free
//! dataframe or a detailed error message (§3.2). This module reproduces
//! that contract in-process: every request executes on cloned inputs in a
//! dedicated worker thread with a hard deadline, and failures come back as
//! structured [`SandboxError`]s — the ground-truth data can never be
//! modified by generated code, by construction.

use crate::error::{ErrorKind, SandboxError, SandboxResult};
use crate::interp::{run_program, StepLog};
use crate::lang::parse_program;
use crate::tool::ToolRegistry;
use crossbeam::channel;
use infera_frame::DataFrame;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A code-execution request.
#[derive(Debug, Clone)]
pub struct ExecutionRequest {
    /// DSL program text.
    pub program: String,
    /// Named input frames; the gateway works on copies.
    pub inputs: HashMap<String, DataFrame>,
}

/// A successful execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    pub result: DataFrame,
    pub steps: Vec<StepLog>,
    /// Final environment (named intermediates), used for checkpointing.
    pub env: HashMap<String, DataFrame>,
    pub wall: Duration,
}

/// The sandbox server.
#[derive(Debug, Clone)]
pub struct SandboxServer {
    tools: ToolRegistry,
    timeout: Duration,
}

impl SandboxServer {
    /// Server with the given custom-tool registry and a 30 s deadline.
    pub fn new(tools: ToolRegistry) -> SandboxServer {
        SandboxServer {
            tools,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the execution deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> SandboxServer {
        self.timeout = timeout;
        self
    }

    /// The registered tool catalog (for agent prompts).
    pub fn tools(&self) -> &ToolRegistry {
        &self.tools
    }

    /// Execute a request on a worker thread with a deadline.
    ///
    /// Parsing happens inline (cheap, no data touched); interpretation
    /// runs on the worker against cloned inputs.
    pub fn execute(&self, req: ExecutionRequest) -> SandboxResult<ExecutionReport> {
        let stmts = parse_program(&req.program)?;
        let tools = self.tools.clone();
        let (tx, rx) = channel::bounded(1);
        let start = Instant::now();
        std::thread::Builder::new()
            .name("infera-sandbox-worker".into())
            .spawn(move || {
                let out = run_program(&stmts, req.inputs, &tools);
                let _ = tx.send(out);
            })
            .map_err(|e| SandboxError::new(ErrorKind::Runtime, format!("spawn: {e}")))?;
        match rx.recv_timeout(self.timeout) {
            Ok(Ok(out)) => Ok(ExecutionReport {
                result: out.result,
                steps: out.steps,
                env: out.env,
                wall: start.elapsed(),
            }),
            Ok(Err(e)) => Err(e),
            Err(_) => Err(SandboxError::new(
                ErrorKind::Timeout,
                format!("execution exceeded {:?}", self.timeout),
            )),
        }
    }
}

impl Default for SandboxServer {
    fn default() -> Self {
        SandboxServer::new(ToolRegistry::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_frame::Column;

    fn inputs() -> HashMap<String, DataFrame> {
        let mut m = HashMap::new();
        m.insert(
            "df".to_string(),
            DataFrame::from_columns([
                ("a", Column::from(vec![1.0, 2.0, 3.0])),
                ("b", Column::from(vec![10i64, 20, 30])),
            ])
            .unwrap(),
        );
        m
    }

    #[test]
    fn executes_and_reports() {
        let server = SandboxServer::default();
        let report = server
            .execute(ExecutionRequest {
                program: "x = filter(df, a > 1)\nreturn x".into(),
                inputs: inputs(),
            })
            .unwrap();
        assert_eq!(report.result.n_rows(), 2);
        assert_eq!(report.steps.len(), 2);
    }

    #[test]
    fn ground_truth_never_modified() {
        let server = SandboxServer::default();
        let original = inputs();
        let report = server
            .execute(ExecutionRequest {
                program: "df = with_column(df, c, a * 2)\nreturn df".into(),
                inputs: original.clone(),
            })
            .unwrap();
        // The caller's copy is untouched even though the program shadowed
        // the input name.
        assert!(!original["df"].has_column("c"));
        assert!(report.result.has_column("c"));
    }

    #[test]
    fn errors_are_structured_not_panics() {
        let server = SandboxServer::default();
        let err = server
            .execute(ExecutionRequest {
                program: "x = filter(df, nonexistent > 1)".into(),
                inputs: inputs(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownColumn);
        let err = server
            .execute(ExecutionRequest {
                program: "x = ???".into(),
                inputs: inputs(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn reports_wall_time() {
        let server = SandboxServer::default();
        let report = server
            .execute(ExecutionRequest {
                program: "return head(df, 1)".into(),
                inputs: inputs(),
            })
            .unwrap();
        assert!(report.wall.as_nanos() > 0);
    }
}
