//! The sandboxed execution gateway.
//!
//! The original InferA runs generated code on an ASGI server (FastAPI +
//! Uvicorn): the system transmits code and a *temporary data copy*, the
//! server executes, detects errors, and returns either an error-free
//! dataframe or a detailed error message (§3.2). This module reproduces
//! that contract in-process: every request executes on cloned inputs in a
//! dedicated worker thread with a hard deadline, and failures come back as
//! structured [`SandboxError`]s — the ground-truth data can never be
//! modified by generated code, by construction.

use crate::error::{ErrorKind, SandboxError, SandboxResult};
use crate::interp::{run_program, StepLog};
use crate::lang::parse_program;
use crate::tool::ToolRegistry;
use crossbeam::channel;
use infera_frame::DataFrame;
use infera_obs::{metric_names, Obs};
use std::collections::HashMap;
use std::time::Duration;

/// A code-execution request.
#[derive(Debug, Clone)]
pub struct ExecutionRequest {
    /// DSL program text.
    pub program: String,
    /// Named input frames; the gateway works on copies.
    pub inputs: HashMap<String, DataFrame>,
}

/// A successful execution.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    pub result: DataFrame,
    pub steps: Vec<StepLog>,
    /// Final environment (named intermediates), used for checkpointing.
    pub env: HashMap<String, DataFrame>,
    pub wall: Duration,
}

/// The sandbox server.
#[derive(Debug, Clone)]
pub struct SandboxServer {
    tools: ToolRegistry,
    timeout: Duration,
    obs: Obs,
}

impl SandboxServer {
    /// Server with the given custom-tool registry and a 30 s deadline.
    pub fn new(tools: ToolRegistry) -> SandboxServer {
        SandboxServer {
            tools,
            timeout: Duration::from_secs(30),
            obs: Obs::default(),
        }
    }

    /// Override the execution deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> SandboxServer {
        self.timeout = timeout;
        self
    }

    /// Attach an observability context: every execution records a
    /// `sandbox:execute` span and latency/error metrics into it.
    pub fn with_obs(mut self, obs: Obs) -> SandboxServer {
        self.obs = obs;
        self
    }

    /// The registered tool catalog (for agent prompts).
    pub fn tools(&self) -> &ToolRegistry {
        &self.tools
    }

    /// Execute a request on a worker thread with a deadline.
    ///
    /// Parsing happens inline (cheap, no data touched); interpretation
    /// runs on the worker against cloned inputs.
    pub fn execute(&self, req: ExecutionRequest) -> SandboxResult<ExecutionReport> {
        let span = self.obs.tracer.span("sandbox:execute");
        self.obs.metrics.inc(metric_names::SANDBOX_EXECUTIONS, 1);
        let stmts = match parse_program(&req.program) {
            Ok(stmts) => stmts,
            Err(e) => {
                span.set_attr("error", e.to_string());
                self.obs.metrics.inc(metric_names::SANDBOX_PARSE_ERRORS, 1);
                return Err(e);
            }
        };
        span.set_attr("statements", stmts.len());
        let tools = self.tools.clone();
        let (tx, rx) = channel::bounded(1);
        std::thread::Builder::new()
            .name("infera-sandbox-worker".into())
            .spawn(move || {
                let out = run_program(&stmts, req.inputs, &tools);
                let _ = tx.send(out);
            })
            .map_err(|e| SandboxError::new(ErrorKind::Runtime, format!("spawn: {e}")))?;
        let outcome = rx.recv_timeout(self.timeout);
        self.obs
            .metrics
            .observe(metric_names::SANDBOX_EXEC_US, span.elapsed_us() as f64);
        match outcome {
            Ok(Ok(out)) => {
                span.set_attr("rows_out", out.result.n_rows());
                // The report's wall time is the span's own measurement, so
                // the trace and the caller can never disagree. Clamp to
                // 1 µs: sub-microsecond runs still count as having run.
                let wall_us = span.finish().max(1);
                Ok(ExecutionReport {
                    result: out.result,
                    steps: out.steps,
                    env: out.env,
                    wall: Duration::from_micros(wall_us),
                })
            }
            Ok(Err(e)) => {
                span.set_attr("error", e.to_string());
                self.obs.metrics.inc(metric_names::SANDBOX_EXEC_ERRORS, 1);
                Err(e)
            }
            Err(_) => {
                span.set_attr("error", "timeout");
                self.obs.metrics.inc(metric_names::SANDBOX_TIMEOUTS, 1);
                Err(SandboxError::new(
                    ErrorKind::Timeout,
                    format!("execution exceeded {:?}", self.timeout),
                ))
            }
        }
    }
}

impl Default for SandboxServer {
    fn default() -> Self {
        SandboxServer::new(ToolRegistry::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_frame::Column;

    fn inputs() -> HashMap<String, DataFrame> {
        let mut m = HashMap::new();
        m.insert(
            "df".to_string(),
            DataFrame::from_columns([
                ("a", Column::from(vec![1.0, 2.0, 3.0])),
                ("b", Column::from(vec![10i64, 20, 30])),
            ])
            .unwrap(),
        );
        m
    }

    #[test]
    fn executes_and_reports() {
        let server = SandboxServer::default();
        let report = server
            .execute(ExecutionRequest {
                program: "x = filter(df, a > 1)\nreturn x".into(),
                inputs: inputs(),
            })
            .unwrap();
        assert_eq!(report.result.n_rows(), 2);
        assert_eq!(report.steps.len(), 2);
    }

    #[test]
    fn ground_truth_never_modified() {
        let server = SandboxServer::default();
        let original = inputs();
        let report = server
            .execute(ExecutionRequest {
                program: "df = with_column(df, c, a * 2)\nreturn df".into(),
                inputs: original.clone(),
            })
            .unwrap();
        // The caller's copy is untouched even though the program shadowed
        // the input name.
        assert!(!original["df"].has_column("c"));
        assert!(report.result.has_column("c"));
    }

    #[test]
    fn errors_are_structured_not_panics() {
        let server = SandboxServer::default();
        let err = server
            .execute(ExecutionRequest {
                program: "x = filter(df, nonexistent > 1)".into(),
                inputs: inputs(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownColumn);
        let err = server
            .execute(ExecutionRequest {
                program: "x = ???".into(),
                inputs: inputs(),
            })
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn reports_wall_time() {
        let server = SandboxServer::default();
        let report = server
            .execute(ExecutionRequest {
                program: "return head(df, 1)".into(),
                inputs: inputs(),
            })
            .unwrap();
        assert!(report.wall.as_nanos() > 0);
    }

    #[test]
    fn wall_time_derives_from_trace_span() {
        let obs = Obs::new();
        let server = SandboxServer::default().with_obs(obs.clone());
        let report = server
            .execute(ExecutionRequest {
                program: "return head(df, 1)".into(),
                inputs: inputs(),
            })
            .unwrap();
        let snap = obs.tracer.snapshot();
        let span = snap
            .spans
            .iter()
            .find(|s| s.name == "sandbox:execute")
            .expect("execute span recorded");
        assert_eq!(report.wall.as_micros() as u64, span.dur_us().max(1));
        assert_eq!(obs.metrics.counter(metric_names::SANDBOX_EXECUTIONS), 1);
        assert!(obs.metrics.histogram(metric_names::SANDBOX_EXEC_US).is_some());
    }

    #[test]
    fn errors_increment_metrics() {
        let obs = Obs::new();
        let server = SandboxServer::default().with_obs(obs.clone());
        server
            .execute(ExecutionRequest {
                program: "x = ???".into(),
                inputs: inputs(),
            })
            .unwrap_err();
        assert_eq!(obs.metrics.counter(metric_names::SANDBOX_PARSE_ERRORS), 1);
        server
            .execute(ExecutionRequest {
                program: "x = filter(df, nonexistent > 1)".into(),
                inputs: inputs(),
            })
            .unwrap_err();
        assert_eq!(obs.metrics.counter(metric_names::SANDBOX_EXEC_ERRORS), 1);
    }
}
