//! Property-based tests for the sandbox: the parser must never panic, the
//! interpreter must agree with direct dataframe semantics, and the
//! gateway must never mutate its inputs.

use infera_frame::{Column, DataFrame};
use infera_sandbox::{ExecutionRequest, SandboxServer};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_frame() -> impl Strategy<Value = DataFrame> {
    (1usize..60).prop_flat_map(|rows| {
        (
            proptest::collection::vec(-500i64..500, rows),
            proptest::collection::vec(-1.0e6f64..1.0e6, rows),
        )
            .prop_map(|(ids, vals)| {
                DataFrame::from_columns([
                    ("id", Column::I64(ids)),
                    ("val", Column::F64(vals)),
                ])
                .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The DSL parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = infera_sandbox::lang::parse_program(&input);
    }

    /// The full gateway never panics on arbitrary programs over a real
    /// frame (structured errors only), and never mutates the input.
    #[test]
    fn gateway_never_panics_or_mutates(input in "\\PC{0,120}", df in arb_frame()) {
        let server = SandboxServer::default();
        let original = df.clone();
        let mut inputs = HashMap::new();
        inputs.insert("df".to_string(), df);
        let _ = server.execute(ExecutionRequest { program: input, inputs: inputs.clone() });
        prop_assert_eq!(&inputs["df"], &original);
    }

    /// filter + sort through the DSL equals the dataframe operations.
    #[test]
    fn dsl_filter_sort_matches_frame(df in arb_frame(), threshold in -1.0e6f64..1.0e6) {
        let server = SandboxServer::default();
        let mut inputs = HashMap::new();
        inputs.insert("df".to_string(), df.clone());
        let program = format!(
            "kept = filter(df, val > {threshold})\nreturn sort(kept, val, desc)\n"
        );
        let got = server
            .execute(ExecutionRequest { program, inputs })
            .unwrap()
            .result;
        use infera_frame::{expr::BinOp, Expr, SortOrder};
        let want = df
            .filter_expr(&Expr::bin(Expr::col("val"), BinOp::Gt, Expr::lit(threshold)))
            .unwrap()
            .sort_by(&[("val", SortOrder::Descending)])
            .unwrap();
        prop_assert_eq!(got, want);
    }

    /// top_n through the DSL returns n (or fewer) rows, descending.
    #[test]
    fn dsl_top_n(df in arb_frame(), n in 1usize..30) {
        let server = SandboxServer::default();
        let mut inputs = HashMap::new();
        inputs.insert("df".to_string(), df.clone());
        let got = server
            .execute(ExecutionRequest {
                program: format!("return top_n(df, val, {n})"),
                inputs,
            })
            .unwrap()
            .result;
        prop_assert_eq!(got.n_rows(), n.min(df.n_rows()));
        let vals = got.column("val").unwrap().as_f64_slice().unwrap();
        prop_assert!(vals.windows(2).all(|w| w[0] >= w[1]));
    }

    /// group_agg counts partition the rows.
    #[test]
    fn dsl_group_counts(df in arb_frame()) {
        let server = SandboxServer::default();
        let mut inputs = HashMap::new();
        inputs.insert("df".to_string(), df.clone());
        let got = server
            .execute(ExecutionRequest {
                program: "g = with_column(df, bucket, id % 5)\nreturn group_agg(g, by=[bucket], count(*))".into(),
                inputs,
            })
            .unwrap()
            .result;
        let total: i64 = got
            .column("count_rows")
            .unwrap()
            .as_i64_slice()
            .unwrap()
            .iter()
            .sum();
        prop_assert_eq!(total as usize, df.n_rows());
    }
}
