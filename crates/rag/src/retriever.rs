//! Fine-grained chunking and maximum-marginal-relevance retrieval (§3.1).
//!
//! The paper's key retrieval choices, reproduced here:
//!
//! * **no size-based chunking** — each column label becomes its own
//!   document of at most [`MAX_DOC_TOKENS`] (80) tokens, so similarity
//!   search is never diluted by unrelated neighbouring descriptions;
//! * **MMR** re-ranking (Carbonell & Goldstein 1998) balances relevance
//!   against redundancy when picking the top [`TOP_K_PER_PROMPT`] (20)
//!   documents per prompt;
//! * retrieval runs for **four prompts** — the user query, the assigned
//!   task, the full plan, and an "\[IMPORTANT\]" prompt boosting columns
//!   tagged important — returning up to 80 documents overall.

use crate::embed::{cosine, embed, tokenize};
use serde::{Deserialize, Serialize};

/// Maximum tokens per document (fine-grained chunking bound).
pub const MAX_DOC_TOKENS: usize = 80;
/// Documents selected per prompt.
pub const TOP_K_PER_PROMPT: usize = 20;
/// MMR relevance/diversity trade-off.
pub const MMR_LAMBDA: f32 = 0.5;

/// One retrievable document: a single column (or structure topic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Doc {
    /// Stable key — the column label for column docs.
    pub key: String,
    /// Owning entity ("halos", "galaxies", ...; empty for structure docs).
    pub entity: String,
    /// The chunk text (truncated to `MAX_DOC_TOKENS` tokens).
    pub text: String,
    /// Boosted by the "\[IMPORTANT\]" prompt.
    pub important: bool,
}

impl Doc {
    /// Build a doc, enforcing the chunk-size bound by word truncation.
    pub fn new(key: &str, entity: &str, text: &str, important: bool) -> Doc {
        let words: Vec<&str> = text.split_whitespace().collect();
        let text = if words.len() > MAX_DOC_TOKENS {
            words[..MAX_DOC_TOKENS].join(" ")
        } else {
            text.to_string()
        };
        Doc {
            key: key.to_string(),
            entity: entity.to_string(),
            text,
            important,
        }
    }

    /// Token count of the chunk.
    pub fn token_count(&self) -> usize {
        tokenize(&self.text).len()
    }
}

/// One retrieval hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub doc: Doc,
    pub score: f32,
}

/// Embedding index over a document set.
#[derive(Debug, Clone)]
pub struct Retriever {
    docs: Vec<Doc>,
    embeddings: Vec<Vec<f32>>,
}

impl Retriever {
    /// Index a document set.
    pub fn new(docs: Vec<Doc>) -> Retriever {
        let embeddings = docs
            .iter()
            .map(|d| embed(&format!("{} {} {}", d.entity, d.key, d.text)))
            .collect();
        Retriever { docs, embeddings }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// All indexed documents.
    pub fn docs(&self) -> &[Doc] {
        &self.docs
    }

    /// Pure relevance ranking (no diversity term): the top `k` documents
    /// by cosine similarity. Used when *precision* matters more than
    /// coverage (e.g. resolving one metric phrase to one column).
    pub fn top_hits(&self, query: &str, k: usize) -> Vec<Hit> {
        let q = embed(query);
        let mut scored: Vec<(f32, usize)> = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (cosine(e, &q), i))
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored
            .into_iter()
            .take(k)
            .map(|(score, i)| Hit {
                doc: self.docs[i].clone(),
                score,
            })
            .collect()
    }

    /// MMR selection of `k` documents for one query.
    ///
    /// Iteratively picks the document maximizing
    /// `λ·sim(query, d) − (1−λ)·max over selected s of sim(d, s)`.
    pub fn mmr(&self, query: &str, k: usize) -> Vec<Hit> {
        let q = embed(query);
        let n = self.docs.len();
        let rel: Vec<f32> = self.embeddings.iter().map(|e| cosine(e, &q)).collect();
        let mut selected: Vec<usize> = Vec::new();
        let mut remaining: Vec<usize> = (0..n).collect();
        while selected.len() < k && !remaining.is_empty() {
            let mut best: Option<(f32, usize, usize)> = None; // (score, pos-in-remaining, doc idx)
            for (pos, &i) in remaining.iter().enumerate() {
                let redundancy = selected
                    .iter()
                    .map(|&s| cosine(&self.embeddings[i], &self.embeddings[s]))
                    .fold(0.0f32, f32::max);
                let score = MMR_LAMBDA * rel[i] - (1.0 - MMR_LAMBDA) * redundancy;
                match best {
                    Some((bs, _, _)) if bs >= score => {}
                    _ => best = Some((score, pos, i)),
                }
            }
            let (_, pos, i) = best.expect("remaining non-empty");
            remaining.swap_remove(pos);
            selected.push(i);
        }
        selected
            .into_iter()
            .map(|i| Hit {
                doc: self.docs[i].clone(),
                score: rel[i],
            })
            .collect()
    }

    /// The paper's four-prompt retrieval: user query, assigned task, full
    /// plan, and the "\[IMPORTANT\]" prompt over important-tagged columns.
    /// Returns the deduplicated union (≤ 4 × `TOP_K_PER_PROMPT` docs).
    pub fn retrieve_for_task(&self, user_query: &str, task: &str, plan: &str) -> Vec<Doc> {
        let important_prompt = {
            let names: Vec<&str> = self
                .docs
                .iter()
                .filter(|d| d.important)
                .map(|d| d.key.as_str())
                .collect();
            format!("[IMPORTANT] key columns: {}", names.join(" "))
        };
        let prompts = [user_query, task, plan, important_prompt.as_str()];
        let mut out: Vec<Doc> = Vec::new();
        for p in prompts {
            for hit in self.mmr(p, TOP_K_PER_PROMPT) {
                if !out
                    .iter()
                    .any(|d| d.key == hit.doc.key && d.entity == hit.doc.entity)
                {
                    out.push(hit.doc);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Doc> {
        vec![
            Doc::new(
                "fof_halo_mass",
                "halos",
                "Total mass of the friends-of-friends halo in Msun/h; use for mass functions and largest-halo selections.",
                true,
            ),
            Doc::new(
                "fof_halo_count",
                "halos",
                "Number of dark matter particles in the halo, a proxy for halo size.",
                true,
            ),
            Doc::new(
                "sod_halo_MGas500c",
                "halos",
                "Gas mass enclosed within density 500 times the critical density; divide by M500c for the gas fraction.",
                true,
            ),
            Doc::new(
                "gal_stellar_mass",
                "galaxies",
                "Stellar mass of the galaxy; the y axis of the stellar-to-halo mass relation.",
                true,
            ),
            Doc::new(
                "gal_sfr",
                "galaxies",
                "Instantaneous star formation rate of the galaxy.",
                false,
            ),
            Doc::new(
                "core_vx",
                "cores",
                "Velocity of the core particle along x.",
                false,
            ),
        ]
    }

    #[test]
    fn doc_truncation_enforced() {
        let long = "word ".repeat(500);
        let d = Doc::new("k", "e", &long, false);
        assert!(d.token_count() <= MAX_DOC_TOKENS);
        assert_eq!(d.text.split_whitespace().count(), MAX_DOC_TOKENS);
    }

    #[test]
    fn mmr_top_hit_is_relevant() {
        let r = Retriever::new(corpus());
        let hits = r.mmr("what is the gas mass fraction of massive halos", 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].doc.key, "sod_halo_MGas500c");
    }

    #[test]
    fn mmr_prefers_diversity_over_duplicates() {
        // Two near-identical docs + one distinct: with k=2 the second
        // pick should be the distinct doc, not the near-duplicate.
        let docs = vec![
            Doc::new("a1", "t", "halo gas mass fraction critical density", false),
            Doc::new("a2", "t", "halo gas mass fraction critical density overdensity", false),
            Doc::new("b", "t", "galaxy stellar mass star formation", false),
        ];
        let r = Retriever::new(docs);
        let hits = r.mmr("gas mass fraction", 2);
        let keys: Vec<&str> = hits.iter().map(|h| h.doc.key.as_str()).collect();
        assert!(keys.contains(&"b"), "{keys:?}");
    }

    #[test]
    fn k_larger_than_corpus_returns_all() {
        let r = Retriever::new(corpus());
        assert_eq!(r.mmr("anything", 100).len(), corpus().len());
    }

    #[test]
    fn four_prompt_retrieval_dedupes_and_bounds() {
        let r = Retriever::new(corpus());
        let docs = r.retrieve_for_task(
            "average halo size per timestep",
            "load halo counts",
            "1. load halos 2. group by step 3. average",
        );
        assert!(docs.len() <= 4 * TOP_K_PER_PROMPT);
        let mut keys: Vec<(String, String)> = docs
            .iter()
            .map(|d| (d.entity.clone(), d.key.clone()))
            .collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "duplicates leaked");
        // The important columns surface through the [IMPORTANT] prompt.
        assert!(docs.iter().any(|d| d.key == "fof_halo_count"));
    }

    #[test]
    fn retrieval_is_deterministic() {
        let r = Retriever::new(corpus());
        let a = r.retrieve_for_task("q", "t", "p");
        let b = r.retrieve_for_task("q", "t", "p");
        assert_eq!(a, b);
    }
}
