//! # infera-rag
//!
//! The retrieval-augmented data-context layer of InferA (§3.1).
//!
//! Scientific column labels like `sod_halo_MGas500c` are opaque without
//! domain context. InferA keeps two expert dictionaries (file structure,
//! column descriptions), turns *each column* into its own ≤80-token
//! document (fine-grained chunking instead of size-based chunking), embeds
//! them, and retrieves with maximum marginal relevance over four prompts
//! (user query, task, plan, "\[IMPORTANT\]") — up to 80 documents per task.
//!
//! Embeddings are deterministic hashed n-gram vectors
//! (`text-embedding-3-small` substitute; see DESIGN.md §2).

pub mod embed;
pub mod retriever;

pub use embed::{cosine, embed, tokenize, EMBED_DIM};
pub use retriever::{Doc, Hit, Retriever, MAX_DOC_TOKENS, MMR_LAMBDA, TOP_K_PER_PROMPT};
