//! Deterministic text embeddings via feature hashing.
//!
//! Stands in for `text-embedding-3-small`: words and word-bigrams are
//! hashed into a 256-dimensional vector with sign hashing (the classic
//! "hashing trick"), then L2-normalized. Cosine similarity over these
//! vectors gives a deterministic lexical-overlap similarity — exactly the
//! signal needed to match query wording against column-description
//! documents. Identifier-style tokens (`sod_halo_MGas500c`) are split on
//! underscores and case boundaries so queries about "gas mass" reach
//! `MGas500c` descriptions.

/// Embedding dimensionality.
pub const EMBED_DIM: usize = 256;

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Split text into normalized word tokens: lowercase, split on
/// non-alphanumerics, split snake_case and camelCase / letter-digit
/// boundaries, drop single characters and stopwords.
pub fn tokenize(text: &str) -> Vec<String> {
    const STOPWORDS: &[&str] = &[
        "the", "a", "an", "of", "in", "on", "at", "to", "for", "and", "or", "is", "are", "with",
        "by", "as", "that", "this", "it", "its", "be", "from", "all", "each", "me", "i", "you",
        "please", "would", "like", "can", "do", "how", "what", "which",
    ];
    let mut words = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        // Split camelCase and letter-digit boundaries: "MGas500c" ->
        // ["m", "gas", "500", "c"].
        let chars: Vec<char> = raw.chars().collect();
        let mut cur = String::new();
        let mut parts: Vec<String> = Vec::new();
        for (i, &c) in chars.iter().enumerate() {
            let next_lower = chars
                .get(i + 1)
                .is_some_and(|n| n.is_ascii_lowercase());
            let boundary = i > 0
                && ((c.is_ascii_uppercase()
                    && (chars[i - 1].is_ascii_lowercase() || next_lower))
                    || (c.is_ascii_digit() != chars[i - 1].is_ascii_digit()));
            if boundary && !cur.is_empty() {
                parts.push(std::mem::take(&mut cur));
            }
            cur.push(c.to_ascii_lowercase());
        }
        if !cur.is_empty() {
            parts.push(cur);
        }
        for p in parts {
            if p.len() >= 2 && !STOPWORDS.contains(&p.as_str()) {
                words.push(p);
            }
        }
    }
    words
}

/// Embed a text into a normalized `EMBED_DIM` vector.
pub fn embed(text: &str) -> Vec<f32> {
    let mut v = vec![0.0f32; EMBED_DIM];
    let words = tokenize(text);
    let mut add = |token: &str, weight: f32| {
        let h = fnv1a(token.as_bytes());
        let dim = (h % EMBED_DIM as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[dim] += sign * weight;
    };
    for w in &words {
        add(w, 1.0);
    }
    for pair in words.windows(2) {
        add(&format!("{} {}", pair[0], pair[1]), 0.5);
    }
    // L2 normalize.
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Cosine similarity of two normalized vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_splits_identifiers() {
        let toks = tokenize("sod_halo_MGas500c");
        assert!(toks.contains(&"sod".to_string()));
        assert!(toks.contains(&"halo".to_string()));
        assert!(toks.contains(&"gas".to_string()));
        assert!(toks.contains(&"500".to_string()));
    }

    #[test]
    fn tokenizer_drops_stopwords() {
        let toks = tokenize("the mass of the halo");
        assert_eq!(toks, vec!["mass".to_string(), "halo".into()]);
    }

    #[test]
    fn embeddings_are_normalized_and_deterministic() {
        let e1 = embed("gas mass fraction of halos");
        let e2 = embed("gas mass fraction of halos");
        assert_eq!(e1, e2);
        let norm: f32 = e1.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_texts_score_higher() {
        let gas = embed("gas mass enclosed within the halo radius");
        let q_gas = embed("what is the gas mass of the largest halo");
        let q_vel = embed("velocity dispersion kinematics dynamics");
        assert!(cosine(&gas, &q_gas) > cosine(&gas, &q_vel));
        assert!(cosine(&gas, &q_gas) > 0.2);
    }

    #[test]
    fn query_reaches_identifier_doc() {
        let doc = embed("column sod_halo_MGas500c: gas mass enclosed density 500 critical");
        let query = embed("gas mass fraction 500 critical density");
        assert!(cosine(&doc, &query) > 0.3, "{}", cosine(&doc, &query));
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embed("");
        assert!(e.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&e, &e), 0.0);
    }
}
