//! Property-based tests for the RAG layer: embedding and retrieval
//! invariants over arbitrary text.

use infera_rag::{cosine, embed, tokenize, Doc, Retriever, MAX_DOC_TOKENS};
use proptest::prelude::*;

proptest! {
    /// Embeddings are always unit-norm (or exactly zero for contentless
    /// text), so cosine similarities are bounded.
    #[test]
    fn embeddings_normalized(text in "\\PC{0,300}") {
        let e = embed(&text);
        let norm: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm.abs() < 1e-4 || (norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    /// Cosine similarity is symmetric and bounded to [-1, 1].
    #[test]
    fn cosine_bounded_symmetric(a in "\\PC{0,120}", b in "\\PC{0,120}") {
        let ea = embed(&a);
        let eb = embed(&b);
        let ab = cosine(&ea, &eb);
        let ba = cosine(&eb, &ea);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((-1.0001..=1.0001).contains(&ab), "cos {ab}");
    }

    /// Self-similarity of non-empty text is 1.
    #[test]
    fn self_similarity(text in "[a-z]{2,30}( [a-z]{2,30}){0,10}") {
        let e = embed(&text);
        if e.iter().any(|&x| x != 0.0) {
            prop_assert!((cosine(&e, &e) - 1.0).abs() < 1e-4);
        }
    }

    /// The tokenizer never panics and produces no empty or 1-char tokens.
    #[test]
    fn tokenizer_well_formed(text in "\\PC{0,300}") {
        for tok in tokenize(&text) {
            prop_assert!(tok.len() >= 2);
            prop_assert!(tok.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    /// Documents always respect the chunk-size bound.
    #[test]
    fn chunk_bound(text in "\\PC{0,2000}") {
        let d = Doc::new("k", "e", &text, false);
        prop_assert!(d.token_count() <= MAX_DOC_TOKENS);
    }

    /// MMR returns at most k distinct documents, deterministically.
    #[test]
    fn mmr_bounds_and_determinism(
        texts in proptest::collection::vec("[a-z]{3,12}( [a-z]{3,12}){1,6}", 1..20),
        k in 1usize..25,
        query in "[a-z]{3,12}( [a-z]{3,12}){0,4}",
    ) {
        let docs: Vec<Doc> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Doc::new(&format!("d{i}"), "t", t, false))
            .collect();
        let n = docs.len();
        let r = Retriever::new(docs);
        let hits1 = r.mmr(&query, k);
        let hits2 = r.mmr(&query, k);
        prop_assert_eq!(&hits1, &hits2);
        prop_assert_eq!(hits1.len(), k.min(n));
        let mut keys: Vec<&str> = hits1.iter().map(|h| h.doc.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), hits1.len());
    }

    /// Pure-relevance ranking returns scores in non-increasing order.
    #[test]
    fn top_hits_sorted(
        texts in proptest::collection::vec("[a-z]{3,12}( [a-z]{3,12}){1,6}", 1..20),
        query in "[a-z]{3,12}",
    ) {
        let docs: Vec<Doc> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Doc::new(&format!("d{i}"), "t", t, false))
            .collect();
        let r = Retriever::new(docs);
        let hits = r.top_hits(&query, 10);
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
