//! The serving layer's result cache.
//!
//! Workflows are deterministic given `(session seed, salt)`, so a
//! finished report is a pure function of the cache key — safe to serve
//! to any client asking the same question of the same ensemble. The
//! ensemble fingerprint (content hash of the manifest, not its path)
//! is part of the key *and* a validity guard: pointing the serving
//! layer at a regenerated ensemble drops every cached report.

use infera_agents::RunReport;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a cacheable run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    pub question: String,
    /// `Manifest::fingerprint()` of the ensemble answered against.
    pub fingerprint: u64,
    /// The session's master seed.
    pub seed: u64,
    /// The job's run salt.
    pub salt: u64,
    /// Semantic-level label ("easy" / "medium" / "hard").
    pub semantic: String,
}

/// Bounded map from [`ResultKey`] to finished reports, with hit/miss
/// counters surfaced as `serve.cache_*` metrics.
#[derive(Debug)]
pub struct ResultCache {
    entries: RwLock<HashMap<ResultKey, Arc<RunReport>>>,
    /// Fingerprint the current entries were computed against.
    fingerprint: AtomicU64,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    pub fn new(max_entries: usize) -> ResultCache {
        ResultCache {
            entries: RwLock::new(HashMap::new()),
            fingerprint: AtomicU64::new(0),
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Ensure the cache holds entries for `fingerprint` only, dropping
    /// everything cached against a different ensemble. Returns `true`
    /// when entries were invalidated.
    pub fn validate_fingerprint(&self, fingerprint: u64) -> bool {
        let current = self.fingerprint.swap(fingerprint, Ordering::SeqCst);
        if current != fingerprint {
            let mut entries = self.entries.write();
            let dropped = !entries.is_empty();
            entries.clear();
            return dropped && current != 0;
        }
        false
    }

    pub fn get(&self, key: &ResultKey) -> Option<Arc<RunReport>> {
        let found = self.entries.read().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a finished report. At capacity, new keys are dropped
    /// (first-landed wins — the entries already cached stay valid).
    pub fn insert(&self, key: ResultKey, report: Arc<RunReport>) {
        let mut entries = self.entries.write();
        if entries.len() >= self.max_entries && !entries.contains_key(&key) {
            return;
        }
        entries.entry(key).or_insert(report);
    }

    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> Arc<RunReport> {
        Arc::new(RunReport {
            question: "q".into(),
            plan_steps: 1,
            completed: true,
            completion_fraction: 1.0,
            redos: 0,
            satisfactory_data: true,
            satisfactory_viz: true,
            tokens: 10,
            llm_latency_ms: 5,
            wall_ms: 1,
            storage_bytes: 100,
            storage_logical_bytes: 100,
            flags: Default::default(),
            result: None,
            visualizations: vec![],
            summary: "s".into(),
            stage_costs: vec![],
            metrics: infera_obs::MetricsRegistry::new().snapshot(),
            trace: Default::default(),
        })
    }

    fn key(question: &str, fingerprint: u64) -> ResultKey {
        ResultKey {
            question: question.into(),
            fingerprint,
            seed: 42,
            salt: 1,
            semantic: "easy".into(),
        }
    }

    #[test]
    fn hit_and_miss_counting() {
        let cache = ResultCache::new(8);
        cache.validate_fingerprint(7);
        assert!(cache.get(&key("a", 7)).is_none());
        cache.insert(key("a", 7), dummy_report());
        assert!(cache.get(&key("a", 7)).is_some());
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
    }

    #[test]
    fn fingerprint_change_invalidates() {
        let cache = ResultCache::new(8);
        cache.validate_fingerprint(7);
        cache.insert(key("a", 7), dummy_report());
        assert_eq!(cache.len(), 1);
        assert!(cache.validate_fingerprint(8), "change drops entries");
        assert_eq!(cache.len(), 0);
        assert!(!cache.validate_fingerprint(8), "same fingerprint is a no-op");
    }

    #[test]
    fn capacity_blocks_new_keys() {
        let cache = ResultCache::new(1);
        cache.insert(key("a", 7), dummy_report());
        cache.insert(key("b", 7), dummy_report());
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("a", 7)).is_some());
        assert!(cache.get(&key("b", 7)).is_none());
    }
}
