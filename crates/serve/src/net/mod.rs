//! The network front end: persistent-connection serving over a
//! versioned, line-delimited JSON wire protocol.
//!
//! Layout:
//!
//! * [`protocol`] — the wire types ([`Request`]/[`Response`]/[`Event`],
//!   `protocol_version` handshake, stable reject/error code mappings)
//!   and the [`protocol::event_from_bus`] bus→wire event translation;
//! * [`conn`] — the transport-agnostic connection core shared by TCP
//!   connections and the stdio `infera serve` loop (one admission code
//!   path for both);
//! * [`server`] — [`NetServer`]: a thread-per-connection TCP listener
//!   with per-client event streaming, disconnect-cancels-job, and
//!   graceful drain (in-flight jobs finish; new connections get a typed
//!   `Goodbye`);
//! * [`client`] — [`Client`]: a blocking client speaking the protocol
//!   (used by `bench-load`, the integration tests, and scripts);
//! * [`loadgen`] — the `bench-load` saturation harness: an open-loop
//!   arrival process over the eval question set, reporting p50/p99
//!   latency, rejection rate, and streamed-event counts per offered
//!   load into `BENCH_load.json`, anchored by the serial digest gate.
//!
//! The server is thread-per-connection rather than an async reactor:
//! the workload is a small number of heavyweight jobs per connection
//! (workflow runs, not packet pushing), so a blocking reader thread plus
//! a writer pump per client is simpler and performs identically at the
//! scales the scheduler can feed. Nothing in the wire protocol encodes
//! that choice — `protocol_version` gates any future transport change.
//!
//! [`Request`]: protocol::Request
//! [`Response`]: protocol::Response
//! [`Event`]: protocol::Event

pub mod client;
pub mod conn;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientConfig, ConnectError, ServerInfo, SubmitOutcome};
pub use conn::{run_connection, ConnOptions, ConnStats};
pub use loadgen::{run_load_bench, LoadBenchReport, LoadLevelReport, LoadOpts};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, event_from_bus, Event,
    JobDone, ProtocolError, RejectCode, Request, Response, PROTOCOL_VERSION,
};
pub use server::{NetServer, NetServerConfig};
