//! [`NetServer`]: the thread-per-connection TCP front end.
//!
//! An accept loop hands each connection to [`conn::run_connection`] on
//! its own thread; sockets get a short read timeout so reader loops can
//! observe server state between lines. Admission, caching, breaking,
//! retries, and event streaming all live in the scheduler/conn layers —
//! this module only owns sockets and lifecycle:
//!
//! * **Graceful drain** ([`NetServer::begin_shutdown`]): new
//!   connections are greeted with `Goodbye { code: ShuttingDown }` and
//!   closed; new submissions on existing connections reject the same
//!   way (the scheduler is draining); accepted jobs run to completion
//!   and their `Done` lines still reach their clients. Zero accepted
//!   jobs are lost.
//! * **Hard stop** (the tail of [`NetServer::shutdown`]): after the
//!   drain, connection readers are told to stop, each sends a final
//!   `Goodbye`, pumps flush, and every thread is joined.
//! * **Disconnect cancels**: a client that goes away takes its
//!   in-flight jobs with it via the `CancelToken` path
//!   ([`ConnOptions::cancel_on_eof`]).
//!
//! A small reaper thread keeps the scheduler's legacy completion
//! channel empty — handle-based delivery means nobody else reads it,
//! and a long-lived server must not let it grow unbounded.
//!
//! [`ConnOptions::cancel_on_eof`]: super::conn::ConnOptions

use super::conn::{self, ConnOptions, ConnStats};
use super::protocol::{encode_response, RejectCode, Response};
use crate::scheduler::{metric_names, Scheduler};
use infera_core::{InferaError, InferaResult};
use parking_lot::Mutex;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Network server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Identity reported in `Hello` responses.
    pub server_name: String,
    /// Per-job event subscription buffer for streaming submissions.
    pub event_capacity: usize,
    /// Socket read timeout — the cadence at which connection readers
    /// notice server drain/stop between request lines.
    pub read_timeout: Duration,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            server_name: "infera-serve".to_string(),
            event_capacity: 8192,
            read_timeout: Duration::from_millis(100),
        }
    }
}

/// Aggregate across all finished connections.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    pub connections: u64,
    pub submitted: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub events_sent: u64,
    pub protocol_errors: u64,
    pub canceled_on_eof: u64,
    /// Connections refused because the server was draining.
    pub refused_draining: u64,
}

struct ServerState {
    /// Refuse new connections (typed `Goodbye`), keep existing ones.
    draining: AtomicBool,
    /// Terminate accept loop and connection readers.
    stopping: AtomicBool,
    refused_draining: AtomicU64,
    connections: AtomicU64,
    totals: Mutex<ServerStats>,
}

impl ServerState {
    fn absorb(&self, stats: &ConnStats) {
        let mut totals = self.totals.lock();
        totals.connections += 1;
        totals.submitted += stats.submitted;
        totals.accepted += stats.accepted;
        totals.rejected += stats.rejected;
        totals.completed += stats.completed;
        totals.events_sent += stats.events_sent;
        totals.protocol_errors += stats.protocol_errors;
        totals.canceled_on_eof += stats.canceled_on_eof;
    }
}

/// The running TCP front end. Bind with [`NetServer::bind`]; stop with
/// [`NetServer::shutdown`] (graceful: drains accepted jobs first).
pub struct NetServer {
    scheduler: Arc<Scheduler>,
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `127.0.0.1:7433`, or port `0` for an ephemeral
    /// test port) and start accepting connections.
    pub fn bind(
        scheduler: Arc<Scheduler>,
        addr: &str,
        config: NetServerConfig,
    ) -> InferaResult<NetServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| InferaError::invalid_input(format!("bind {addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| InferaError::internal(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| InferaError::internal(format!("set_nonblocking: {e}")))?;
        let state = Arc::new(ServerState {
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            refused_draining: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            totals: Mutex::new(ServerStats::default()),
        });
        let accept_thread = {
            let scheduler = scheduler.clone();
            let state = state.clone();
            std::thread::Builder::new()
                .name("infera-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &scheduler, &state, &config))
                .map_err(|e| InferaError::internal(format!("spawn accept loop: {e}")))?
        };
        let reaper = {
            let scheduler = scheduler.clone();
            let state = state.clone();
            std::thread::Builder::new()
                .name("infera-net-reaper".to_string())
                .spawn(move || {
                    // Keep the legacy completion channel empty: results
                    // are delivered through handles, nobody reads it.
                    while !state.stopping.load(Ordering::Relaxed) {
                        scheduler.drain_results();
                        std::thread::sleep(Duration::from_millis(200));
                    }
                })
                .map_err(|e| InferaError::internal(format!("spawn reaper: {e}")))?
        };
        Ok(NetServer {
            scheduler,
            state,
            local_addr,
            accept_thread: Some(accept_thread),
            reaper: Some(reaper),
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// Begin a graceful drain: refuse new connections with a typed
    /// `Goodbye`, reject new submissions (the scheduler is draining),
    /// keep running accepted jobs and delivering their results.
    pub fn begin_shutdown(&self) {
        self.state.draining.store(true, Ordering::Relaxed);
        self.scheduler.begin_shutdown();
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::Relaxed)
    }

    /// Connections refused with `Goodbye { ShuttingDown }` during drain.
    pub fn refused_draining(&self) -> u64 {
        self.state.refused_draining.load(Ordering::Relaxed)
    }

    /// Block until every accepted job has completed (accepted ==
    /// completed on the scheduler's counters). Call after
    /// [`NetServer::begin_shutdown`]; new work can't arrive, so the
    /// counters only converge.
    pub fn await_drain(&self) {
        let metrics = self.scheduler.metrics();
        loop {
            let accepted = metrics.counter(metric_names::JOBS_ACCEPTED);
            let completed = metrics.counter(metric_names::JOBS_COMPLETED);
            if completed >= accepted {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown: drain accepted jobs, let pumps flush their
    /// final `Done`s, send every connection a `Goodbye`, join all
    /// threads, and return the aggregate stats. The scheduler itself is
    /// left to its owner (call [`Scheduler::shutdown`] after this).
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        self.await_drain();
        self.state.stopping.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.reaper.take() {
            let _ = handle.join();
        }
        self.scheduler.drain_results();
        let mut stats = self.state.totals.lock().clone();
        stats.refused_draining = self.state.refused_draining.load(Ordering::Relaxed);
        stats
    }
}

fn accept_loop(
    listener: &TcpListener,
    scheduler: &Arc<Scheduler>,
    state: &Arc<ServerState>,
    config: &NetServerConfig,
) {
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    while !state.stopping.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.draining.load(Ordering::Relaxed) {
                    refuse_draining(stream, state);
                    continue;
                }
                state.connections.fetch_add(1, Ordering::Relaxed);
                let scheduler = scheduler.clone();
                let conn_state = state.clone();
                let opts = ConnOptions {
                    server_name: config.server_name.clone(),
                    event_capacity: config.event_capacity,
                    ..ConnOptions::default()
                };
                let read_timeout = config.read_timeout;
                let spawned = std::thread::Builder::new()
                    .name("infera-net-conn".to_string())
                    .spawn(move || {
                        let stats =
                            serve_connection(stream, &scheduler, &conn_state, &opts, read_timeout);
                        conn_state.absorb(&stats);
                    });
                match spawned {
                    Ok(handle) => conn_threads.push(handle),
                    Err(_) => {
                        state.connections.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        // Prune finished connection threads so a long-lived server
        // doesn't accumulate join handles.
        conn_threads.retain(|h| !h.is_finished());
    }
    for handle in conn_threads {
        let _ = handle.join();
    }
}

/// The drain-time refusal: a typed `Goodbye` so clients distinguish
/// "server going away" from a crash, then close.
fn refuse_draining(mut stream: TcpStream, state: &ServerState) {
    state.refused_draining.fetch_add(1, Ordering::Relaxed);
    let goodbye = Response::Goodbye {
        code: Some(RejectCode::ShuttingDown),
        message: "server draining: in-flight jobs are completing, no new connections".to_string(),
    };
    let _ = writeln!(stream, "{}", encode_response(&goodbye));
    let _ = stream.flush();
    // The client's `Hello` is usually already in flight (connect
    // returns before we accept). Dropping the socket before those
    // bytes are consumed closes with RST, and RST discards the goodbye
    // from the peer's receive buffer. Half-close, then hold the socket
    // until the hello has been drained (or a short deadline), so the
    // refusal arrives on a clean FIN.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = std::time::Instant::now() + Duration::from_millis(500);
    let mut sink = [0u8; 256];
    let mut saw_data = false;
    use std::io::Read;
    loop {
        match stream.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => saw_data = true,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if saw_data || std::time::Instant::now() >= deadline {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    scheduler: &Arc<Scheduler>,
    state: &Arc<ServerState>,
    opts: &ConnOptions,
    read_timeout: Duration,
) -> ConnStats {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let reader = match stream.try_clone() {
        Ok(read_half) => BufReader::new(read_half),
        Err(_) => return ConnStats::default(),
    };
    // Injection site: the connection boundary. A faulted connection is
    // dropped before its reader starts — clients see a reset, and the
    // chaos suite asserts the pool and other connections survive.
    if infera_faults::check(infera_faults::sites::SERVE_JOB).is_some() {
        return ConnStats::default();
    }
    // Readers watch the hard-stop flag, not `draining`: during a drain,
    // connections stay open so accepted jobs can deliver their `Done`s.
    conn::run_connection(scheduler, reader, stream, opts, Some(&state.stopping))
}
