//! The `infera bench-load` saturation harness.
//!
//! Stands up a real [`NetServer`] on a loopback port, then drives it
//! with an **open-loop** arrival process over the paper's evaluation
//! question set: arrivals follow a seeded exponential inter-arrival
//! schedule at each offered load and are submitted whether or not
//! earlier jobs have finished, exactly the way outside traffic behaves.
//! Offered load sweeps a multiplier ladder around the measured capacity
//! (`workers / mean_run_seconds` from a calibration pass), so the top
//! rung pushes the scheduler past saturation and exercises the typed
//! `Rejected { QueueFull }` path under real sockets.
//!
//! Per level the harness records client-observed p50/p95/p99 latency,
//! achieved vs offered throughput, rejection rate, and streamed-event
//! counts. Two gates anchor the numbers:
//!
//! * **Serial digest gate** — a sample of `(question, salt)` pairs that
//!   completed over the network is re-run on a fresh single-worker
//!   session; every network digest must match its serial twin
//!   bit-for-bit. Load must change latency, never answers.
//! * **Drain gate** — a burst of accepted jobs followed by
//!   [`NetServer::begin_shutdown`]: every accepted job must still
//!   deliver its `Done` (zero lost), while a brand-new connection is
//!   refused with the typed `shutting_down` goodbye.
//!
//! Everything is deterministic given [`LoadOpts::seed`]: the arrival
//! schedule, question rotation, and salts all derive from a splitmix64
//! stream, so `BENCH_load.json` diffs are meaningful across commits.

use super::client::{Client, ClientConfig, ConnectError, SubmitOutcome};
use super::protocol::PROTOCOL_VERSION;
use super::server::{NetServer, NetServerConfig};
use crate::job::JobSpec;
use crate::scheduler::{Scheduler, ServeConfig};
use infera_core::{question_set, InferA, InferaError, InferaResult, Question, SessionConfig};
use infera_hacc::Manifest;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-bench options.
#[derive(Debug, Clone)]
pub struct LoadOpts {
    /// Worker-pool width of the server under test.
    pub workers: usize,
    /// Admission queue depth. Small relative to the arrival burst at
    /// the top multiplier so saturation actually rejects.
    pub queue_capacity: usize,
    /// Concurrent client connections driving the arrivals.
    pub connections: usize,
    /// Offered-load multipliers over measured capacity; the ladder must
    /// cross 1.0 so the report spans under-, at-, and over-saturation.
    pub multipliers: Vec<f64>,
    /// Arrivals per level.
    pub jobs_per_level: usize,
    /// Question subset size (0 = the full evaluation set).
    pub max_questions: usize,
    /// `(question, salt)` pairs re-run serially per level for the
    /// digest gate.
    pub digest_samples: usize,
    /// `RunConfig::llm_sleep_scale` for the server session.
    pub sleep_scale: f64,
    pub seed: u64,
}

impl Default for LoadOpts {
    fn default() -> LoadOpts {
        LoadOpts {
            workers: 4,
            queue_capacity: 8,
            connections: 3,
            multipliers: vec![0.5, 1.0, 2.0, 4.0],
            jobs_per_level: 32,
            max_questions: 0,
            digest_samples: 2,
            sleep_scale: 0.04,
            seed: 2027,
        }
    }
}

impl LoadOpts {
    /// Fast CI gate: two levels (half capacity and 4x), few jobs, no
    /// latency sleeps. Still runs both the digest and drain gates.
    pub fn smoke() -> LoadOpts {
        LoadOpts {
            workers: 2,
            queue_capacity: 4,
            connections: 2,
            multipliers: vec![0.5, 4.0],
            jobs_per_level: 10,
            max_questions: 4,
            digest_samples: 1,
            sleep_scale: 0.0,
            seed: 2027,
        }
    }
}

/// One offered-load rung of the ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadLevelReport {
    /// Multiplier over measured capacity.
    pub multiplier: f64,
    /// Arrival rate actually offered, questions/second.
    pub offered_qps: f64,
    /// First arrival to last terminal response, ms.
    pub duration_ms: u64,
    pub submitted: u64,
    pub accepted: u64,
    pub rejected: u64,
    /// `rejected / submitted`.
    pub rejection_rate: f64,
    pub completed: u64,
    pub failed: u64,
    /// Client-observed latency (server queue + run), ms.
    pub p50_ms: u64,
    pub p95_ms: u64,
    pub p99_ms: u64,
    /// Completions per second over the level's wall clock.
    pub achieved_qps: f64,
    /// Progress events streamed to clients during the level.
    pub events_streamed: u64,
    /// `(question, salt)` pairs re-run serially for the digest gate.
    pub digests_checked: u64,
    pub digests_match: bool,
}

/// The drain gate's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownReport {
    /// Jobs the server accepted before the drain began.
    pub accepted: u64,
    /// Accepted jobs whose `Done` reached the client during the drain.
    pub drained: u64,
    /// `accepted - drained`; the gate requires 0.
    pub lost: u64,
    /// A fresh connection during the drain was refused with the typed
    /// `shutting_down` goodbye.
    pub new_conn_rejected: bool,
}

/// `BENCH_load.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadBenchReport {
    pub protocol_version: u32,
    pub questions: usize,
    pub seed: u64,
    pub workers: usize,
    pub queue_capacity: usize,
    pub connections: usize,
    pub sleep_scale: f64,
    pub ensemble_fingerprint: String,
    /// Calibrated single-job mean run time, ms.
    pub calibrated_run_ms: u64,
    /// Measured capacity the multipliers scale, questions/second.
    pub capacity_qps: f64,
    pub levels: Vec<LoadLevelReport>,
    /// At least one rung pushed past saturation (rejections observed).
    pub saturated: bool,
    pub shutdown: ShutdownReport,
    /// Every checked digest matched its serial twin, at every level.
    pub digests_match: bool,
}

impl LoadBenchReport {
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-load: {} questions over {} connections, {} workers / queue {}, \
             capacity {:.2} q/s, digests {}",
            self.questions,
            self.connections,
            self.workers,
            self.queue_capacity,
            self.capacity_qps,
            if self.digests_match { "IDENTICAL" } else { "DIVERGED" },
        );
        let _ = writeln!(
            out,
            "{:>6} {:>11} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>11} {:>8}",
            "mult", "offered_qps", "accepted", "rejected", "rej_rate", "p50_ms", "p95_ms", "p99_ms", "achieved", "events"
        );
        for level in &self.levels {
            let _ = writeln!(
                out,
                "{:>6.1} {:>11.2} {:>9} {:>9} {:>7.1}% {:>8} {:>8} {:>8} {:>11.2} {:>8}",
                level.multiplier,
                level.offered_qps,
                level.accepted,
                level.rejected,
                level.rejection_rate * 100.0,
                level.p50_ms,
                level.p95_ms,
                level.p99_ms,
                level.achieved_qps,
                level.events_streamed,
            );
        }
        let _ = writeln!(
            out,
            "saturation {}: top rung rejected {:.1}% of offered load",
            if self.saturated { "REACHED" } else { "NOT REACHED" },
            self.levels.last().map_or(0.0, |l| l.rejection_rate * 100.0),
        );
        let _ = writeln!(
            out,
            "drain gate: {} accepted, {} drained, {} lost, new connection {}",
            self.shutdown.accepted,
            self.shutdown.drained,
            self.shutdown.lost,
            if self.shutdown.new_conn_rejected {
                "refused (typed)"
            } else {
                "NOT refused"
            },
        );
        out
    }
}

/// Deterministic splitmix64 stream for the arrival schedule.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 + f64::MIN_POSITIVE
    }

    /// Exponential inter-arrival gap for rate `qps`, seconds.
    fn next_gap_s(&mut self, qps: f64) -> f64 {
        -self.next_unit().ln() / qps.max(1e-9)
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Build the server-side session + scheduler for the given pool shape.
fn build_scheduler(
    manifest: &Manifest,
    work: &Path,
    seed: u64,
    sleep_scale: f64,
    workers: usize,
    queue_capacity: usize,
) -> InferaResult<Arc<Scheduler>> {
    std::fs::remove_dir_all(work).ok();
    let mut run_config = infera_agents::RunConfig::default();
    run_config.llm_sleep_scale = sleep_scale;
    let session = Arc::new(
        InferA::from_manifest(manifest.clone())
            .work_dir(work)
            .config(
                SessionConfig::default()
                    .with_seed(seed)
                    .with_run_config(run_config),
            )
            .build()?,
    );
    Ok(Arc::new(Scheduler::new(
        session,
        ServeConfig::with_pool(workers, queue_capacity),
    )))
}

/// Serial anchor: run each `(question index, salt)` pair on a fresh
/// single-worker session and return its digest. The network run and
/// this run share nothing but `(ensemble, seed, question, salt)` — the
/// determinism contract the digest gate enforces.
fn serial_digests(
    manifest: &Manifest,
    work: &Path,
    opts: &LoadOpts,
    questions: &[Question],
    pairs: &[(usize, u64)],
) -> InferaResult<Vec<u64>> {
    let sched = build_scheduler(manifest, work, opts.seed, opts.sleep_scale, 1, pairs.len().max(1))?;
    let mut digests = Vec::with_capacity(pairs.len());
    for &(q_idx, salt) in pairs {
        let q = &questions[q_idx];
        let handle = sched
            .submit(JobSpec::new(&q.text, salt).semantic(q.semantic))
            .map_err(|r| InferaError::internal(format!("serial anchor admission failed: {r}")))?;
        digests.push(handle.wait().digest);
    }
    sched.drain_results();
    Ok(digests)
}

/// Calibrate mean run time by driving one job per worker through a
/// throwaway connection, serially.
fn calibrate(addr: &str, questions: &[Question], jobs: usize) -> Result<u64, String> {
    let mut client = Client::connect(addr, &ClientConfig::default()).map_err(|e| e.to_string())?;
    let mut total_ms = 0u64;
    let mut measured = 0u64;
    for i in 0..jobs.max(1) {
        let q = &questions[i % questions.len()];
        // Salts far outside the load levels' range so no cache overlap.
        match client.submit(&q.text, Some(9_900_000 + i as u64), false)? {
            SubmitOutcome::Accepted { .. } => {}
            SubmitOutcome::Rejected { message, .. } => {
                return Err(format!("calibration rejected: {message}"));
            }
        }
        let done = client
            .next_done(Duration::from_secs(120))
            .ok_or_else(|| "calibration job never completed".to_string())?;
        total_ms += done.run_ms;
        measured += 1;
    }
    client.bye();
    Ok((total_ms / measured.max(1)).max(1))
}

/// A completed network job's facts, kept for the digest sample.
struct LevelOutcome {
    latencies: Vec<u64>,
    completed: u64,
    failed: u64,
    /// `(question index, salt, network digest)` per completion, in
    /// arrival order.
    digests: Vec<(usize, u64, String)>,
}

/// Drive one offered-load rung: open-loop arrivals round-robined over
/// persistent connections, then collect every accepted job's `Done`.
#[allow(clippy::too_many_arguments)]
fn run_level(
    addr: &str,
    questions: &[Question],
    opts: &LoadOpts,
    level_idx: usize,
    multiplier: f64,
    offered_qps: f64,
    rng: &mut SplitMix64,
    report: &mut LoadLevelReport,
) -> Result<LevelOutcome, String> {
    let config = ClientConfig {
        client_name: format!("bench-load-l{level_idx}"),
        ..ClientConfig::default()
    };
    let mut clients = Vec::with_capacity(opts.connections);
    for _ in 0..opts.connections.max(1) {
        clients.push(Client::connect(addr, &config).map_err(|e| e.to_string())?);
    }
    let salt_base = 1_000_000 * (level_idx as u64 + 1);
    let started = Instant::now();
    let mut next_arrival = Duration::ZERO;
    let mut accepted_by: Vec<u64> = vec![0; clients.len()];
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for seq in 0..opts.jobs_per_level {
        // Open loop: hold to the schedule regardless of completions.
        let now = started.elapsed();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        next_arrival += Duration::from_secs_f64(rng.next_gap_s(offered_qps));
        let q_idx = seq % questions.len();
        let salt = salt_base + seq as u64;
        let which = seq % clients.len();
        submitted += 1;
        match clients[which].submit(&questions[q_idx].text, Some(salt), true)? {
            SubmitOutcome::Accepted { .. } => {
                accepted += 1;
                accepted_by[which] += 1;
            }
            SubmitOutcome::Rejected { .. } => rejected += 1,
        }
    }

    // Collect every accepted job's terminal Done per connection.
    let mut outcome = LevelOutcome {
        latencies: Vec::new(),
        completed: 0,
        failed: 0,
        digests: Vec::new(),
    };
    let mut events_streamed = 0u64;
    for (which, client) in clients.into_iter().enumerate() {
        for _ in 0..accepted_by[which] {
            let done = client
                .next_done(Duration::from_secs(300))
                .ok_or_else(|| "accepted job never produced a Done".to_string())?;
            outcome.latencies.push(done.queue_ms + done.run_ms);
            if done.ok {
                outcome.completed += 1;
                let q_idx = ((done.salt - salt_base) as usize) % questions.len();
                outcome.digests.push((q_idx, done.salt, done.digest.clone()));
            } else {
                outcome.failed += 1;
            }
        }
        events_streamed += client.events_seen();
        client.bye();
    }
    let duration_ms = started.elapsed().as_millis() as u64;
    outcome.latencies.sort_unstable();
    report.multiplier = multiplier;
    report.offered_qps = offered_qps;
    report.duration_ms = duration_ms;
    report.submitted = submitted;
    report.accepted = accepted;
    report.rejected = rejected;
    report.rejection_rate = rejected as f64 / submitted.max(1) as f64;
    report.completed = outcome.completed;
    report.failed = outcome.failed;
    report.p50_ms = percentile(&outcome.latencies, 0.50);
    report.p95_ms = percentile(&outcome.latencies, 0.95);
    report.p99_ms = percentile(&outcome.latencies, 0.99);
    report.achieved_qps = outcome.completed as f64 / (duration_ms.max(1) as f64 / 1000.0);
    report.events_streamed = events_streamed;
    Ok(outcome)
}

/// Drain gate: fill the pool with accepted jobs, begin the drain, and
/// verify (a) every accepted job still delivers its `Done`, (b) a new
/// connection is refused with the typed `shutting_down` goodbye.
fn run_drain_gate(
    server: &NetServer,
    addr: &str,
    questions: &[Question],
) -> Result<ShutdownReport, String> {
    let mut client = Client::connect(addr, &ClientConfig::default()).map_err(|e| e.to_string())?;
    let burst = server.scheduler().workers() as u64 + 2;
    let mut accepted = 0u64;
    for i in 0..burst {
        let q = &questions[i as usize % questions.len()];
        if let SubmitOutcome::Accepted { .. } =
            client.submit(&q.text, Some(9_800_000 + i), false)?
        {
            accepted += 1;
        }
    }
    server.begin_shutdown();
    // A fresh connection must bounce with the typed refusal.
    let new_conn_rejected = matches!(
        Client::connect(addr, &ClientConfig::default()),
        Err(ConnectError::Refused { ref kind, .. }) if kind == "shutting_down"
    );
    // The existing connection's accepted jobs all finish.
    let mut drained = 0u64;
    for _ in 0..accepted {
        if client.next_done(Duration::from_secs(300)).is_some() {
            drained += 1;
        }
    }
    client.bye();
    Ok(ShutdownReport {
        accepted,
        drained,
        lost: accepted - drained,
        new_conn_rejected,
    })
}

/// Run the full harness. `work_root` receives one work dir for the
/// server session plus one per digest-gate anchor run.
pub fn run_load_bench(
    manifest: &Manifest,
    work_root: &Path,
    opts: &LoadOpts,
) -> InferaResult<LoadBenchReport> {
    let mut questions = question_set();
    if opts.max_questions > 0 {
        questions.truncate(opts.max_questions);
    }
    if questions.is_empty() || opts.multipliers.is_empty() {
        return Err(InferaError::invalid_input(
            "bench-load needs at least one question and one multiplier",
        ));
    }

    let scheduler = build_scheduler(
        manifest,
        &work_root.join("server"),
        opts.seed,
        opts.sleep_scale,
        opts.workers,
        opts.queue_capacity,
    )?;
    let server = NetServer::bind(scheduler, "127.0.0.1:0", NetServerConfig::default())?;
    let addr = server.local_addr().to_string();

    let calibrated_run_ms = calibrate(&addr, &questions, opts.workers)
        .map_err(|e| InferaError::internal(format!("bench-load calibration: {e}")))?;
    let capacity_qps = opts.workers as f64 / (calibrated_run_ms as f64 / 1000.0);

    let mut rng = SplitMix64::new(opts.seed);
    let mut levels: Vec<LoadLevelReport> = Vec::new();
    // One digest sample list across levels; anchored serially below.
    let mut sampled: Vec<(usize, u64, String, usize)> = Vec::new();
    for (level_idx, &multiplier) in opts.multipliers.iter().enumerate() {
        let offered_qps = (capacity_qps * multiplier).max(0.1);
        let mut row = LoadLevelReport {
            multiplier,
            offered_qps,
            duration_ms: 0,
            submitted: 0,
            accepted: 0,
            rejected: 0,
            rejection_rate: 0.0,
            completed: 0,
            failed: 0,
            p50_ms: 0,
            p95_ms: 0,
            p99_ms: 0,
            achieved_qps: 0.0,
            events_streamed: 0,
            digests_checked: 0,
            digests_match: true,
        };
        let outcome = run_level(
            &addr,
            &questions,
            opts,
            level_idx,
            multiplier,
            offered_qps,
            &mut rng,
            &mut row,
        )
        .map_err(|e| {
            InferaError::internal(format!("bench-load level x{multiplier}: {e}"))
        })?;
        for (q_idx, salt, digest) in outcome.digests.iter().take(opts.digest_samples) {
            sampled.push((*q_idx, *salt, digest.clone(), level_idx));
        }
        levels.push(row);
    }

    // Serial digest gate: re-run the sampled pairs on a fresh
    // single-worker session and compare bit-for-bit.
    let pairs: Vec<(usize, u64)> = sampled.iter().map(|(q, s, _, _)| (*q, *s)).collect();
    let anchors = serial_digests(
        manifest,
        &work_root.join("serial_anchor"),
        opts,
        &questions,
        &pairs,
    )?;
    for ((_q_idx, _salt, net_digest, level_idx), anchor) in sampled.iter().zip(anchors.iter()) {
        let level = &mut levels[*level_idx];
        level.digests_checked += 1;
        if *net_digest != format!("{anchor:016x}") {
            level.digests_match = false;
        }
    }
    let digests_match = levels.iter().all(|l| l.digests_match);
    let saturated = levels.iter().any(|l| l.rejected > 0);

    let shutdown = run_drain_gate(&server, &addr, &questions)
        .map_err(|e| InferaError::internal(format!("bench-load drain gate: {e}")))?;

    let stats = server.shutdown();
    debug_assert_eq!(stats.completed, stats.accepted, "pump lost a Done");

    Ok(LoadBenchReport {
        protocol_version: PROTOCOL_VERSION,
        questions: questions.len(),
        seed: opts.seed,
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        connections: opts.connections,
        sleep_scale: opts.sleep_scale,
        ensemble_fingerprint: format!("{:016x}", manifest.fingerprint()),
        calibrated_run_ms,
        capacity_qps,
        levels,
        saturated,
        shutdown,
        digests_match,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_hacc::EnsembleSpec;

    #[test]
    fn smoke_load_bench_saturates_and_digests_agree() {
        let base = std::env::temp_dir().join("infera_loadgen_tests/smoke");
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(73), &base.join("ens")).unwrap();
        let mut opts = LoadOpts::smoke();
        opts.jobs_per_level = 8;
        opts.max_questions = 3;
        let report = run_load_bench(&manifest, &base.join("work"), &opts).unwrap();
        assert_eq!(report.levels.len(), 2);
        assert_eq!(report.protocol_version, PROTOCOL_VERSION);
        assert!(report.digests_match, "network digests diverged from serial");
        // Every accepted job reached a terminal Done at every level.
        for level in &report.levels {
            assert_eq!(level.accepted, level.completed + level.failed);
            assert!(level.p99_ms >= level.p50_ms);
            assert!(level.digests_checked > 0);
        }
        // Streaming submissions delivered progress events.
        assert!(
            report.levels.iter().any(|l| l.events_streamed > 0),
            "no progress events streamed"
        );
        // The drain gate lost nothing and refused the new connection.
        assert_eq!(report.shutdown.lost, 0);
        assert!(report.shutdown.new_conn_rejected);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("rejection_rate"));
        assert!(json.contains("events_streamed"));
        let text = report.to_text();
        assert!(text.contains("drain gate"));
    }
}
