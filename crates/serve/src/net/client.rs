//! A blocking protocol client.
//!
//! One reader thread demultiplexes the server's line stream into typed
//! channels: submit replies (`Accepted`/`Rejected`, FIFO — the server
//! answers submissions in request order), terminal `Done`s, progress
//! `Event`s, and control traffic (`Pong`/`CancelAck`/`Goodbye`). The
//! caller's thread does blocking writes; all waits take explicit
//! timeouts so a dead server can't hang a harness.
//!
//! Used by `bench-load`, the network integration tests, and scripts;
//! it is also the reference implementation of the client side of the
//! protocol (handshake first, ignore unknown response variants, treat
//! `Goodbye` as end-of-submissions rather than end-of-stream).

use super::protocol::{
    decode_response, encode_request, Event, JobDone, RejectCode, Request, Response,
    PROTOCOL_VERSION,
};
use crossbeam::channel::{self, Receiver, Sender};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Identity sent in the `Hello` (for server logs).
    pub client_name: String,
    /// Deadline for the handshake and for control replies.
    pub control_timeout: Duration,
    /// Forward `Event`s to [`Client::try_next_event`] (they are always
    /// counted either way).
    pub collect_events: bool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            client_name: "infera-client".to_string(),
            control_timeout: Duration::from_secs(10),
            collect_events: false,
        }
    }
}

/// How the server answered a `Submit`.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    Accepted { job: u64, salt: u64 },
    Rejected { code: RejectCode, message: String },
}

/// Why [`Client::connect`] failed.
#[derive(Debug, Clone)]
pub enum ConnectError {
    /// The server refused the connection with a typed `Goodbye`
    /// (draining) or a handshake `Error`.
    Refused { kind: String, message: String },
    /// Transport-level failure (connect, write, deadline).
    Io(String),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::Refused { kind, message } => write!(f, "refused ({kind}): {message}"),
            ConnectError::Io(message) => write!(f, "io: {message}"),
        }
    }
}

impl std::error::Error for ConnectError {}

/// Facts from the server's `Hello`.
#[derive(Debug, Clone)]
pub struct ServerInfo {
    pub protocol_version: u32,
    pub server: String,
    pub workers: u64,
    pub queue_capacity: u64,
}

/// A connected protocol client. Dropping it closes the socket (which
/// cancels any still-running jobs server-side — send [`Request::Bye`]
/// via [`Client::bye`] first if that is not intended... it is intended
/// for most harness uses).
pub struct Client {
    stream: TcpStream,
    info: ServerInfo,
    submit_rx: Receiver<SubmitOutcome>,
    done_rx: Receiver<JobDone>,
    event_rx: Receiver<Event>,
    control_rx: Receiver<Response>,
    events_seen: Arc<AtomicU64>,
    goodbye: Arc<AtomicBool>,
    control_timeout: Duration,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Client {
    /// Connect and run the handshake.
    pub fn connect(addr: &str, config: &ClientConfig) -> Result<Client, ConnectError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ConnectError::Io(format!("connect {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream
            .try_clone()
            .map_err(|e| ConnectError::Io(format!("clone stream: {e}")))?;
        let (submit_tx, submit_rx) = channel::unbounded();
        let (done_tx, done_rx) = channel::unbounded();
        let (event_tx, event_rx) = channel::unbounded();
        let (control_tx, control_rx) = channel::unbounded();
        let events_seen = Arc::new(AtomicU64::new(0));
        let goodbye = Arc::new(AtomicBool::new(false));
        let reader = {
            let events_seen = events_seen.clone();
            let goodbye = goodbye.clone();
            let collect_events = config.collect_events;
            std::thread::spawn(move || {
                reader_loop(
                    read_half,
                    &submit_tx,
                    &done_tx,
                    &event_tx,
                    &control_tx,
                    &events_seen,
                    &goodbye,
                    collect_events,
                )
            })
        };
        let mut client = Client {
            stream,
            info: ServerInfo {
                protocol_version: 0,
                server: String::new(),
                workers: 0,
                queue_capacity: 0,
            },
            submit_rx,
            done_rx,
            event_rx,
            control_rx,
            events_seen,
            goodbye,
            control_timeout: config.control_timeout,
            reader: Some(reader),
        };
        if let Err(write_err) = client.write_request(&Request::Hello {
            protocol_version: PROTOCOL_VERSION,
            client: Some(config.client_name.clone()),
        }) {
            // A draining server pushes `Goodbye` and closes before our
            // hello lands — the write breaks, but the refusal may
            // already be on the control channel. Classify it as a
            // typed refusal, not a transport error.
            return match client.control_rx.recv_timeout(Duration::from_millis(500)) {
                Ok(Response::Goodbye { code, message }) => Err(refusal(code, message)),
                Ok(Response::Error { kind, message }) => {
                    Err(ConnectError::Refused { kind, message })
                }
                _ => Err(ConnectError::Io(write_err)),
            };
        }
        match client.control_rx.recv_timeout(client.control_timeout) {
            Ok(Response::Hello {
                protocol_version,
                server,
                workers,
                queue_capacity,
            }) => {
                client.info = ServerInfo {
                    protocol_version,
                    server,
                    workers,
                    queue_capacity,
                };
                Ok(client)
            }
            Ok(Response::Goodbye { code, message }) => Err(refusal(code, message)),
            Ok(Response::Error { kind, message }) => Err(ConnectError::Refused { kind, message }),
            Ok(other) => Err(ConnectError::Io(format!(
                "unexpected handshake response: {other:?}"
            ))),
            Err(_) => Err(ConnectError::Io("handshake timed out".to_string())),
        }
    }

    /// Server facts from the handshake.
    pub fn server_info(&self) -> &ServerInfo {
        &self.info
    }

    fn write_request(&mut self, req: &Request) -> Result<(), String> {
        let line = encode_request(req);
        writeln!(self.stream, "{line}")
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write: {e}"))
    }

    /// Submit a question; blocks until the server's `Accepted`/`Rejected`.
    pub fn submit(
        &mut self,
        question: &str,
        salt: Option<u64>,
        events: bool,
    ) -> Result<SubmitOutcome, String> {
        self.write_request(&Request::Submit {
            question: question.to_string(),
            salt,
            semantic: None,
            timeout_ms: None,
            events,
        })?;
        self.submit_rx
            .recv_timeout(self.control_timeout)
            .map_err(|_| "no submit reply before deadline".to_string())
    }

    /// Request cancellation of a job; returns the server's `known` flag.
    pub fn cancel(&mut self, job: u64) -> Result<bool, String> {
        self.write_request(&Request::Cancel { job })?;
        match self.control_rx.recv_timeout(self.control_timeout) {
            Ok(Response::CancelAck { known, .. }) => Ok(known),
            Ok(other) => Err(format!("unexpected cancel reply: {other:?}")),
            Err(_) => Err("no cancel ack before deadline".to_string()),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> bool {
        if self.write_request(&Request::Ping).is_err() {
            return false;
        }
        matches!(
            self.control_rx.recv_timeout(self.control_timeout),
            Ok(Response::Pong)
        )
    }

    /// Block up to `timeout` for the next terminal `Done`.
    pub fn next_done(&self, timeout: Duration) -> Option<JobDone> {
        self.done_rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking poll for a buffered progress event (only populated
    /// with [`ClientConfig::collect_events`]).
    pub fn try_next_event(&self) -> Option<Event> {
        self.event_rx.try_recv().ok()
    }

    /// Progress events received over the connection's lifetime.
    pub fn events_seen(&self) -> u64 {
        self.events_seen.load(Ordering::Relaxed)
    }

    /// Whether the server said `Goodbye` (drain or answer to `Bye`).
    pub fn goodbye_received(&self) -> bool {
        self.goodbye.load(Ordering::Relaxed)
    }

    /// Orderly close: send `Bye`, wait briefly for the `Goodbye`, drop.
    pub fn bye(mut self) {
        if self.write_request(&Request::Bye).is_ok() {
            let deadline = std::time::Instant::now() + self.control_timeout;
            while !self.goodbye.load(Ordering::Relaxed)
                && std::time::Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    /// Hard disconnect: drop the socket without `Bye` — the server
    /// cancels this connection's in-flight jobs (the disconnect test
    /// path).
    pub fn abort(mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        // Reader sees EOF and exits; Drop joins it.
        let _ = self.reader.take().map(|h| h.join());
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
/// Map a server `Goodbye` during the handshake to its typed refusal.
fn refusal(code: Option<RejectCode>, message: String) -> ConnectError {
    ConnectError::Refused {
        kind: match code {
            Some(RejectCode::ShuttingDown) => "shutting_down".to_string(),
            Some(RejectCode::QueueFull { .. }) => "queue_full".to_string(),
            Some(RejectCode::CircuitOpen { .. }) => "circuit_open".to_string(),
            _ => "goodbye".to_string(),
        },
        message,
    }
}

fn reader_loop(
    read_half: TcpStream,
    submit_tx: &Sender<SubmitOutcome>,
    done_tx: &Sender<JobDone>,
    event_tx: &Sender<Event>,
    control_tx: &Sender<Response>,
    events_seen: &AtomicU64,
    goodbye: &AtomicBool,
    collect_events: bool,
) {
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let Ok(resp) = decode_response(&line) else {
            // Unknown variants from a newer server minor: skip, per the
            // protocol's forward-compatibility rule.
            continue;
        };
        match resp {
            Response::Accepted { job, salt } => {
                let _ = submit_tx.send(SubmitOutcome::Accepted { job, salt });
            }
            Response::Rejected { code, message } => {
                let _ = submit_tx.send(SubmitOutcome::Rejected { code, message });
            }
            Response::Done(done) => {
                let _ = done_tx.send(done);
            }
            Response::Event(event) => {
                events_seen.fetch_add(1, Ordering::Relaxed);
                if collect_events {
                    let _ = event_tx.send(event);
                }
            }
            Response::Goodbye { .. } => {
                goodbye.store(true, Ordering::Relaxed);
                let _ = control_tx.send(resp);
            }
            other => {
                let _ = control_tx.send(other);
            }
        }
    }
}
