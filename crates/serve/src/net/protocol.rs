//! The versioned wire protocol: line-delimited JSON, one message per
//! line, externally-tagged (`{"Variant": {...}}` / `"Variant"` for unit
//! variants — serde's default, kept deliberately so the schema needs no
//! custom tagging support from client libraries).
//!
//! ## Handshake
//!
//! The first message on a connection must be [`Request::Hello`] carrying
//! the client's `protocol_version`. The server answers with
//! [`Response::Hello`] (its own version + capacity facts) if the major
//! version matches, or [`Response::Error`] with kind
//! `protocol_mismatch` and closes. Everything before a successful
//! handshake except `Hello` is a protocol error.
//!
//! ## Message reference
//!
//! | request  | payload                                        | responses |
//! |----------|------------------------------------------------|-----------|
//! | `Hello`  | `protocol_version`, optional `client` name     | `Hello` or `Error` |
//! | `Submit` | `question`, optional `salt`/`semantic`/`timeout_ms`, `events` flag | `Accepted` or `Rejected`, later `Event`* and one `Done` |
//! | `Cancel` | `job`                                          | `CancelAck` |
//! | `Ping`   | —                                              | `Pong` |
//! | `Bye`    | —                                              | `Goodbye`, then close |
//!
//! Unsolicited from the server: [`Response::Event`] (progress stream for
//! jobs submitted with `events: true`), [`Response::Done`] (terminal,
//! exactly one per accepted job), and [`Response::Goodbye`] when the
//! server starts draining.
//!
//! ## Stability
//!
//! The enums are `#[non_exhaustive]`: new variants may appear in any
//! minor revision, and clients must ignore unknown response variants
//! rather than fail. Existing variants' field names and JSON shapes are
//! pinned byte-for-byte by the golden-file test
//! (`crates/serve/tests/protocol_golden.rs`); changing them requires a
//! `PROTOCOL_VERSION` bump and a conscious golden update.
//! [`RejectCode`] mirrors [`RejectReason`] and [`Response::Error`]'s
//! `kind` carries [`infera_core::ErrorKind::label`] strings — both are
//! stable vocabularies, not Rust debug output.

use crate::job::{JobResult, JobStatus, RejectReason};
use infera_obs::{AttrValue, BusEvent, BusEventKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Current protocol version. Bump on any wire-visible breaking change;
/// the handshake rejects mismatched majors.
pub const PROTOCOL_VERSION: u32 = 1;

/// Error kind label used when the handshake versions disagree.
pub const PROTOCOL_MISMATCH: &str = "protocol_mismatch";
/// Error kind label for unparseable or out-of-order messages.
pub const PROTOCOL_VIOLATION: &str = "protocol_violation";

/// Client → server messages.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens the connection; must be the first message.
    Hello {
        protocol_version: u32,
        /// Optional client identity for logs/metrics.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        client: Option<String>,
    },
    /// Submit a question for execution.
    Submit {
        question: String,
        /// Run salt; `None` lets the server pick one (job id). The salt
        /// is part of the determinism contract: same `(seed, salt)` —
        /// same report, same digest.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        salt: Option<u64>,
        /// Semantic level label (`easy`/`medium`/`hard`); `None`
        /// estimates it from the wording.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        semantic: Option<String>,
        /// Per-job deadline in milliseconds.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        timeout_ms: Option<u64>,
        /// Stream progress [`Event`]s for this job to this connection.
        #[serde(default)]
        events: bool,
    },
    /// Cancel a previously accepted job (by server-assigned id).
    Cancel { job: u64 },
    /// Liveness probe.
    Ping,
    /// Orderly close: the server answers `Goodbye` and closes.
    Bye,
}

/// Why a submission (or, during drain, a whole connection) was refused.
/// Mirrors [`RejectReason`] with stable wire names.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectCode {
    /// The bounded job queue is at capacity; back off and retry.
    QueueFull { capacity: u64 },
    /// A failure class's circuit is open; `class` is the
    /// [`infera_core::ErrorKind`] label.
    CircuitOpen { class: String },
    /// The server is draining: in-flight jobs finish, nothing new is
    /// admitted.
    ShuttingDown,
}

impl From<&RejectReason> for RejectCode {
    fn from(reason: &RejectReason) -> RejectCode {
        match reason {
            RejectReason::QueueFull { capacity } => RejectCode::QueueFull {
                capacity: *capacity as u64,
            },
            RejectReason::CircuitOpen { class } => RejectCode::CircuitOpen {
                class: class.clone(),
            },
            RejectReason::ShuttingDown => RejectCode::ShuttingDown,
        }
    }
}

/// Terminal job summary, the wire form of [`JobResult`]. Failure fields
/// are absent on success and vice versa.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobDone {
    pub job: u64,
    pub salt: u64,
    pub ok: bool,
    /// Hex digest of the report's deterministic fields (`0…0` on
    /// failure); equal digests mean bit-identical analytical output.
    pub digest: String,
    pub cache_hit: bool,
    pub queue_ms: u64,
    pub run_ms: u64,
    pub attempts: u32,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub completed: Option<bool>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub redos: Option<u64>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tokens: Option<u64>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub result_rows: Option<u64>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub visualizations: Option<u64>,
    /// [`infera_core::ErrorKind::label`] of the failure.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error_kind: Option<String>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl From<&JobResult> for JobDone {
    fn from(result: &JobResult) -> JobDone {
        let mut done = JobDone {
            job: result.id,
            salt: result.salt,
            ok: false,
            digest: format!("{:016x}", result.digest),
            cache_hit: result.cache_hit,
            queue_ms: result.queue_ms,
            run_ms: result.run_ms,
            attempts: result.attempts,
            completed: None,
            redos: None,
            tokens: None,
            result_rows: None,
            visualizations: None,
            error_kind: None,
            error: None,
        };
        match &result.status {
            JobStatus::Done(report) => {
                done.ok = true;
                done.completed = Some(report.completed);
                done.redos = Some(u64::from(report.redos));
                done.tokens = Some(report.tokens);
                done.result_rows =
                    Some(report.result.as_ref().map_or(0, |f| f.n_rows()) as u64);
                done.visualizations = Some(report.visualizations.len() as u64);
            }
            JobStatus::Failed(err) => {
                done.error_kind = Some(err.kind().label().to_string());
                done.error = Some(err.to_string());
            }
        }
        done
    }
}

/// Server → client messages.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted; capacity facts for client-side pacing.
    Hello {
        protocol_version: u32,
        server: String,
        workers: u64,
        queue_capacity: u64,
    },
    /// Submission admitted; `job` is the id all later messages carry.
    Accepted { job: u64, salt: u64 },
    /// Submission refused by admission control. The connection stays
    /// usable — back off per `code` and resubmit.
    Rejected { code: RejectCode, message: String },
    /// Cancel processed; `known` is false for finished/unknown ids.
    CancelAck { job: u64, known: bool },
    /// Terminal result for an accepted job (exactly one per job).
    Done(JobDone),
    /// Progress stream entry for a job submitted with `events: true`.
    Event(Event),
    Pong,
    /// Protocol-level failure (handshake mismatch, unparseable message,
    /// submit before hello). `kind` is a stable label.
    Error { kind: String, message: String },
    /// Orderly close: answer to `Bye` (no code), or pushed with
    /// `ShuttingDown` when the server refuses a connection mid-drain.
    Goodbye {
        #[serde(default, skip_serializing_if = "Option::is_none")]
        code: Option<RejectCode>,
        message: String,
    },
}

/// Per-job progress events, translated from the scheduler's
/// [`EventBus`] stream by [`event_from_bus`].
///
/// [`EventBus`]: infera_obs::EventBus
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Admitted to the queue.
    Queued { job: u64, salt: u64 },
    /// Picked up by a worker after `queue_ms` in the queue.
    Started { job: u64, queue_ms: u64 },
    /// The planner produced a plan with `steps` steps.
    PlanReady { job: u64, steps: u64 },
    /// A workflow node began (`step` is the node name: `planning`,
    /// `sql`, `python`, `visualization`, …).
    StepStarted { job: u64, step: String },
    /// A QA attempt finished: `outcome` is `accepted` or `redo`.
    QaAttempt {
        job: u64,
        agent: String,
        attempt: u64,
        outcome: String,
    },
    /// A scatter/gather stage finished (`stage`: `scatter`/`gather`).
    ShardProgress { job: u64, stage: String, dur_ms: u64 },
    /// A partial result frame materialized mid-run.
    FrameReady {
        job: u64,
        name: String,
        rows: u64,
        cols: u64,
    },
    /// A transient failure is being replayed.
    Retried { job: u64, attempt: u64, error: String },
    /// Terminal: finished with a report.
    Completed {
        job: u64,
        run_ms: u64,
        digest: String,
        cache_hit: bool,
    },
    /// Terminal: finished with an error.
    Failed { job: u64, run_ms: u64, error: String },
    /// Terminal: the per-job deadline expired.
    TimedOut { job: u64, run_ms: u64 },
}

impl Event {
    /// The job this event belongs to.
    pub fn job(&self) -> u64 {
        match self {
            Event::Queued { job, .. }
            | Event::Started { job, .. }
            | Event::PlanReady { job, .. }
            | Event::StepStarted { job, .. }
            | Event::QaAttempt { job, .. }
            | Event::ShardProgress { job, .. }
            | Event::FrameReady { job, .. }
            | Event::Retried { job, .. }
            | Event::Completed { job, .. }
            | Event::Failed { job, .. }
            | Event::TimedOut { job, .. } => *job,
        }
    }

    /// Whether this is the job's last event (a terminal transition).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Completed { .. } | Event::Failed { .. } | Event::TimedOut { .. }
        )
    }
}

/// A wire-protocol failure surfaced by [`decode_request`] /
/// [`decode_response`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// Stable kind label ([`PROTOCOL_MISMATCH`] or [`PROTOCOL_VIOLATION`]).
    pub kind: &'static str,
    pub message: String,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Serialize a request to its single-line wire form (no trailing `\n`).
pub fn encode_request(req: &Request) -> String {
    serde_json::to_string(req).unwrap_or_default()
}

/// Serialize a response to its single-line wire form (no trailing `\n`).
pub fn encode_response(resp: &Response) -> String {
    serde_json::to_string(resp).unwrap_or_default()
}

/// Parse one request line.
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    serde_json::from_str(line.trim()).map_err(|e| ProtocolError {
        kind: PROTOCOL_VIOLATION,
        message: format!("unparseable request: {e}"),
    })
}

/// Parse one response line.
pub fn decode_response(line: &str) -> Result<Response, ProtocolError> {
    serde_json::from_str(line.trim()).map_err(|e| ProtocolError {
        kind: PROTOCOL_VIOLATION,
        message: format!("unparseable response: {e}"),
    })
}

/// Validate a client's `Hello` version against the server's. One major
/// version today, so the check is equality.
pub fn handshake_check(client_version: u32) -> Result<(), ProtocolError> {
    if client_version == PROTOCOL_VERSION {
        Ok(())
    } else {
        Err(ProtocolError {
            kind: PROTOCOL_MISMATCH,
            message: format!(
                "client speaks protocol v{client_version}, server v{PROTOCOL_VERSION}"
            ),
        })
    }
}

fn attr_u64(attrs: &BTreeMap<String, AttrValue>, key: &str) -> u64 {
    attrs.get(key).and_then(AttrValue::as_u64).unwrap_or(0)
}

fn attr_str(attrs: &BTreeMap<String, AttrValue>, key: &str) -> String {
    attrs
        .get(key)
        .and_then(AttrValue::as_str)
        .unwrap_or_default()
        .to_string()
}

fn attr_bool(attrs: &BTreeMap<String, AttrValue>, key: &str) -> bool {
    matches!(attrs.get(key), Some(AttrValue::Bool(true)))
}

/// Translate one scheduler-bus event into its wire form, if it is part
/// of the client-facing progress vocabulary. Returns `None` for events
/// with no job identity and for internal-only span/point traffic (the
/// full-fidelity stream remains available on the bus itself).
pub fn event_from_bus(ev: &BusEvent) -> Option<Event> {
    use crate::telemetry::event_names as names;
    let job = ev.job_id()?;
    match &ev.kind {
        BusEventKind::Job { name, attrs } => match name.as_str() {
            names::JOB_QUEUED => Some(Event::Queued {
                job,
                salt: attr_u64(attrs, "salt"),
            }),
            names::JOB_STARTED => Some(Event::Started {
                job,
                queue_ms: attr_u64(attrs, "queue_ms"),
            }),
            names::JOB_RETRIED => Some(Event::Retried {
                job,
                attempt: attr_u64(attrs, "attempt"),
                error: attr_str(attrs, "error"),
            }),
            names::JOB_COMPLETED => Some(Event::Completed {
                job,
                run_ms: attr_u64(attrs, "run_ms"),
                digest: attr_str(attrs, "digest"),
                cache_hit: attr_bool(attrs, "cache_hit"),
            }),
            names::JOB_FAILED => Some(Event::Failed {
                job,
                run_ms: attr_u64(attrs, "run_ms"),
                error: attr_str(attrs, "error"),
            }),
            names::JOB_TIMED_OUT => Some(Event::TimedOut {
                job,
                run_ms: attr_u64(attrs, "run_ms"),
            }),
            _ => None,
        },
        BusEventKind::SpanOpened { name, .. } => name
            .strip_prefix("node:")
            .map(|step| Event::StepStarted {
                job,
                step: step.to_string(),
            }),
        BusEventKind::SpanClosed {
            name,
            dur_us,
            attrs,
            ..
        } => {
            if name == "attempt" {
                Some(Event::QaAttempt {
                    job,
                    agent: attr_str(attrs, "agent"),
                    attempt: attr_u64(attrs, "attempt"),
                    outcome: attr_str(attrs, "outcome"),
                })
            } else {
                name.strip_prefix("shard:").map(|stage| Event::ShardProgress {
                    job,
                    stage: stage.to_string(),
                    dur_ms: dur_us / 1000,
                })
            }
        }
        BusEventKind::Point { name, attrs } => match name.as_str() {
            "plan_ready" => Some(Event::PlanReady {
                job,
                steps: attr_u64(attrs, "plan_steps"),
            }),
            "frame_ready" => Some(Event::FrameReady {
                job,
                name: attr_str(attrs, "frame"),
                rows: attr_u64(attrs, "rows"),
                cols: attr_u64(attrs, "cols"),
            }),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Hello {
                protocol_version: PROTOCOL_VERSION,
                client: Some("test".into()),
            },
            Request::Submit {
                question: "How many halos?".into(),
                salt: Some(7),
                semantic: None,
                timeout_ms: Some(5000),
                events: true,
            },
            Request::Cancel { job: 3 },
            Request::Ping,
            Request::Bye,
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert!(!line.contains('\n'), "one message per line: {line}");
            assert_eq!(decode_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Accepted { job: 1, salt: 1 },
            Response::Rejected {
                code: RejectCode::QueueFull { capacity: 64 },
                message: "queue full (capacity 64)".into(),
            },
            Response::Event(Event::StepStarted {
                job: 1,
                step: "sql".into(),
            }),
            Response::Pong,
            Response::Goodbye {
                code: Some(RejectCode::ShuttingDown),
                message: "draining".into(),
            },
        ];
        for resp in resps {
            let line = encode_response(&resp);
            assert_eq!(decode_response(&line).unwrap(), resp);
        }
    }

    #[test]
    fn handshake_rejects_version_skew() {
        assert!(handshake_check(PROTOCOL_VERSION).is_ok());
        let err = handshake_check(PROTOCOL_VERSION + 1).unwrap_err();
        assert_eq!(err.kind, PROTOCOL_MISMATCH);
    }

    #[test]
    fn reject_code_mirrors_reject_reason() {
        assert_eq!(
            RejectCode::from(&RejectReason::QueueFull { capacity: 8 }),
            RejectCode::QueueFull { capacity: 8 }
        );
        assert_eq!(
            RejectCode::from(&RejectReason::CircuitOpen {
                class: "storage".into()
            }),
            RejectCode::CircuitOpen {
                class: "storage".into()
            }
        );
        assert_eq!(
            RejectCode::from(&RejectReason::ShuttingDown),
            RejectCode::ShuttingDown
        );
    }

    #[test]
    fn garbage_is_a_typed_protocol_violation() {
        let err = decode_request("{not json").unwrap_err();
        assert_eq!(err.kind, PROTOCOL_VIOLATION);
    }
}
