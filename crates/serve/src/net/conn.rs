//! The transport-agnostic connection core.
//!
//! One [`run_connection`] call services one protocol peer — a TCP
//! socket (spawned per-connection by [`NetServer`]) or the process's
//! stdin/stdout (`infera serve` without `--listen`). Both transports
//! share this code, so there is exactly one admission path: a full
//! queue, an open circuit, or a drain all answer with the same typed
//! [`Response::Rejected`] regardless of how the question arrived.
//!
//! Per connection there are two threads:
//!
//! * the **reader** (the calling thread): parses request lines, runs
//!   admission via [`Scheduler::submit`] / [`Scheduler::submit_streaming`],
//!   and writes the immediate response (`Hello`/`Accepted`/`Rejected`/
//!   `CancelAck`/`Pong`) before registering the job with the pump — so
//!   `Accepted` always precedes any `Event`/`Done` for that job;
//! * the **pump**: forwards each streaming job's bus events and, on
//!   completion (routed via [`JobHandle::notify`]), flushes the job's
//!   remaining events and writes the terminal [`Response::Done`]. The
//!   scheduler publishes a job's terminal bus event before completing
//!   its slot, so the drain-then-`Done` order loses nothing.
//!
//! Reader EOF or a broken writer ends the connection; with
//! [`ConnOptions::cancel_on_eof`] every in-flight job is canceled
//! through its [`JobHandle`] (the network server's
//! disconnect-cancels-job path), otherwise the pump drains them to
//! completion first (the stdio path: piped questions all get answers).
//!
//! [`NetServer`]: crate::net::server::NetServer
//! [`Scheduler::submit`]: crate::Scheduler::submit
//! [`Scheduler::submit_streaming`]: crate::Scheduler::submit_streaming
//! [`JobHandle`]: crate::JobHandle
//! [`JobHandle::notify`]: crate::JobHandle::notify
//! [`Response::Rejected`]: protocol::Response

use super::protocol::{
    self, encode_response, event_from_bus, handshake_check, JobDone, Request, Response,
    PROTOCOL_VERSION, PROTOCOL_VIOLATION,
};
use crate::handle::{JobEvents, JobHandle};
use crate::job::{JobResult, JobSpec};
use crate::scheduler::Scheduler;
use infera_llm::SemanticLevel;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-connection behavior knobs (transport-specific defaults live on
/// the server / CLI).
#[derive(Debug, Clone)]
pub struct ConnOptions {
    /// Server identity reported in the `Hello` response.
    pub server_name: String,
    /// Require a `Hello` handshake before anything else (network); the
    /// stdio transport skips it — the peer is the same machine.
    pub require_hello: bool,
    /// Treat non-JSON input lines as `Submit { question: line }` sugar
    /// (the stdio transport's "questions on stdin, one per line").
    pub plain_lines_submit: bool,
    /// Whether plain-line submissions stream events.
    pub plain_lines_events: bool,
    /// Cancel in-flight jobs when the peer goes away (network) instead
    /// of draining them to completion (stdio).
    pub cancel_on_eof: bool,
    /// Per-job event subscription buffer (events beyond it drop,
    /// counted on the bus, never blocking workers).
    pub event_capacity: usize,
}

impl Default for ConnOptions {
    fn default() -> ConnOptions {
        ConnOptions {
            server_name: "infera-serve".to_string(),
            require_hello: true,
            plain_lines_submit: false,
            plain_lines_events: false,
            cancel_on_eof: true,
            event_capacity: 8192,
        }
    }
}

impl ConnOptions {
    /// The stdio transport: no handshake, plain-line sugar, drain on EOF.
    pub fn stdio(stream_events: bool) -> ConnOptions {
        ConnOptions {
            require_hello: false,
            plain_lines_submit: true,
            plain_lines_events: stream_events,
            cancel_on_eof: false,
            ..ConnOptions::default()
        }
    }
}

/// What one connection did, for logs and the load bench.
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub events_sent: u64,
    pub protocol_errors: u64,
    /// In-flight jobs canceled because the peer disconnected.
    pub canceled_on_eof: u64,
}

struct JobTable {
    /// Handles for every not-yet-completed job on this connection.
    inflight: HashMap<u64, JobHandle>,
    /// Event subscriptions for jobs submitted with `events: true`.
    streams: HashMap<u64, JobEvents>,
}

struct ConnShared<W: Write + Send> {
    writer: Mutex<W>,
    jobs: Mutex<JobTable>,
    /// Reader hit EOF / error: the pump finishes its drain and exits.
    reader_done: AtomicBool,
    /// The writer failed (peer gone): both sides bail out.
    broken: AtomicBool,
    events_sent: AtomicU64,
    completed: AtomicU64,
}

impl<W: Write + Send> ConnShared<W> {
    /// Write one response line; a failure marks the connection broken.
    fn send(&self, resp: &Response) -> bool {
        let line = encode_response(resp);
        let mut w = self.writer.lock();
        let ok = writeln!(w, "{line}").and_then(|()| w.flush()).is_ok();
        if !ok {
            self.broken.store(true, Ordering::Relaxed);
        }
        ok
    }
}

fn parse_semantic(label: &str) -> Option<SemanticLevel> {
    match label.to_ascii_lowercase().as_str() {
        "easy" => Some(SemanticLevel::Easy),
        "medium" => Some(SemanticLevel::Medium),
        "hard" => Some(SemanticLevel::Hard),
        _ => None,
    }
}

/// Service one peer: read request lines from `reader`, write response
/// lines to `writer`, until EOF, `Bye`, or a broken transport. Blocks
/// the calling thread; spawns (and joins) one pump thread.
///
/// `reader` reads that fail with `WouldBlock`/`TimedOut` are treated as
/// poll ticks, not EOF — the network server sets a socket read timeout
/// so this loop can observe `external_stop` (server drain) promptly.
pub fn run_connection<R, W>(
    scheduler: &Arc<Scheduler>,
    reader: R,
    writer: W,
    opts: &ConnOptions,
    external_stop: Option<&AtomicBool>,
) -> ConnStats
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let shared = Arc::new(ConnShared {
        writer: Mutex::new(writer),
        jobs: Mutex::new(JobTable {
            inflight: HashMap::new(),
            streams: HashMap::new(),
        }),
        reader_done: AtomicBool::new(false),
        broken: AtomicBool::new(false),
        events_sent: AtomicU64::new(0),
        completed: AtomicU64::new(0),
    });
    let (done_tx, done_rx) = crossbeam::channel::unbounded::<JobResult>();
    let pump = {
        let shared = shared.clone();
        std::thread::spawn(move || pump_loop(&shared, &done_rx))
    };

    let mut stats = ConnStats::default();
    let mut handshaken = !opts.require_hello;
    let mut reader = reader;
    let mut line = String::new();
    loop {
        if shared.broken.load(Ordering::Relaxed) {
            break;
        }
        if let Some(stop) = external_stop {
            if stop.load(Ordering::Relaxed) {
                shared.send(&Response::Goodbye {
                    code: Some(protocol::RejectCode::ShuttingDown),
                    message: "server stopping".to_string(),
                });
                break;
            }
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll tick: re-check stop flags
            }
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let request = if !trimmed.starts_with('{') && !trimmed.starts_with('"')
            && opts.plain_lines_submit
        {
            Ok(Request::Submit {
                question: trimmed.to_string(),
                salt: None,
                semantic: None,
                timeout_ms: None,
                events: opts.plain_lines_events,
            })
        } else {
            protocol::decode_request(trimmed)
        };
        let request = match request {
            Ok(request) => request,
            Err(err) => {
                stats.protocol_errors += 1;
                shared.send(&Response::Error {
                    kind: err.kind.to_string(),
                    message: err.message,
                });
                continue;
            }
        };
        match request {
            Request::Hello {
                protocol_version, ..
            } => match handshake_check(protocol_version) {
                Ok(()) if !handshaken || !opts.require_hello => {
                    handshaken = true;
                    shared.send(&Response::Hello {
                        protocol_version: PROTOCOL_VERSION,
                        server: opts.server_name.clone(),
                        workers: scheduler.workers() as u64,
                        queue_capacity: scheduler.queue_capacity() as u64,
                    });
                }
                Ok(()) => {
                    stats.protocol_errors += 1;
                    shared.send(&Response::Error {
                        kind: PROTOCOL_VIOLATION.to_string(),
                        message: "duplicate Hello".to_string(),
                    });
                }
                Err(err) => {
                    stats.protocol_errors += 1;
                    shared.send(&Response::Error {
                        kind: err.kind.to_string(),
                        message: err.message,
                    });
                    break; // version skew is unrecoverable on this connection
                }
            },
            Request::Submit {
                question,
                salt,
                semantic,
                timeout_ms,
                events,
            } => {
                if !handshaken {
                    stats.protocol_errors += 1;
                    shared.send(&Response::Error {
                        kind: PROTOCOL_VIOLATION.to_string(),
                        message: "Submit before Hello".to_string(),
                    });
                    continue;
                }
                stats.submitted += 1;
                let mut spec =
                    JobSpec::new(question, salt.unwrap_or_else(|| scheduler.auto_salt()));
                if let Some(level) = semantic.as_deref().and_then(parse_semantic) {
                    spec = spec.semantic(level);
                }
                if let Some(ms) = timeout_ms {
                    spec = spec.timeout(Duration::from_millis(ms));
                }
                let submitted = if events {
                    scheduler.submit_streaming(spec, opts.event_capacity)
                } else {
                    scheduler.submit(spec)
                };
                match submitted {
                    Ok(mut handle) => {
                        stats.accepted += 1;
                        // Immediate ack first: `Accepted` must precede
                        // every `Event`/`Done` line for this job, and the
                        // pump only learns about the job below.
                        shared.send(&Response::Accepted {
                            job: handle.id(),
                            salt: handle.salt(),
                        });
                        let stream = handle.take_events();
                        let mut jobs = shared.jobs.lock();
                        if let Some(stream) = stream {
                            jobs.streams.insert(handle.id(), stream);
                        }
                        handle.notify(done_tx.clone());
                        jobs.inflight.insert(handle.id(), handle);
                    }
                    Err(reason) => {
                        stats.rejected += 1;
                        shared.send(&Response::Rejected {
                            code: protocol::RejectCode::from(&reason),
                            message: reason.to_string(),
                        });
                    }
                }
            }
            Request::Cancel { job } => {
                // Per-client isolation: a connection can only cancel its
                // own jobs (ids from other connections report unknown).
                let known = match shared.jobs.lock().inflight.get(&job) {
                    Some(handle) => {
                        handle.cancel();
                        true
                    }
                    None => false,
                };
                shared.send(&Response::CancelAck { job, known });
            }
            Request::Ping => {
                shared.send(&Response::Pong);
            }
            Request::Bye => {
                shared.send(&Response::Goodbye {
                    code: None,
                    message: "bye".to_string(),
                });
                break;
            }
        }
    }

    // Reader is done. Cancel-on-EOF (network): the peer is gone, so
    // in-flight work is wasted — cancel through the handles and let the
    // pump drain the (now fast) completions.
    if opts.cancel_on_eof {
        let jobs = shared.jobs.lock();
        for handle in jobs.inflight.values() {
            if !handle.is_finished() {
                handle.cancel();
                stats.canceled_on_eof += 1;
            }
        }
    }
    shared.reader_done.store(true, Ordering::Relaxed);
    drop(done_tx);
    let _ = pump.join();
    stats.events_sent = shared.events_sent.load(Ordering::Relaxed);
    stats.completed = shared.completed.load(Ordering::Relaxed);
    stats
}

fn pump_loop<W: Write + Send>(
    shared: &ConnShared<W>,
    done_rx: &crossbeam::channel::Receiver<JobResult>,
) {
    loop {
        let mut wrote = false;
        // Completions first: flush the job's buffered events, then the
        // terminal Done. The scheduler publishes the terminal bus event
        // before completing the slot, so the stream is whole.
        while let Ok(result) = done_rx.try_recv() {
            let stream = shared.jobs.lock().streams.remove(&result.id);
            if let Some(stream) = stream {
                forward_events(shared, &stream);
            }
            shared.send(&Response::Done(JobDone::from(&result)));
            shared.completed.fetch_add(1, Ordering::Relaxed);
            shared.jobs.lock().inflight.remove(&result.id);
            wrote = true;
        }
        // Then live progress for still-running streaming jobs.
        let ids: Vec<u64> = shared.jobs.lock().streams.keys().copied().collect();
        for id in ids {
            // Pull each event outside the table lock: send() blocks on
            // the writer, and the reader needs the table for submits.
            loop {
                let ev = match shared.jobs.lock().streams.get(&id) {
                    Some(stream) => stream.try_next(),
                    None => None,
                };
                let Some(ev) = ev else { break };
                if let Some(wire) = event_from_bus(&ev) {
                    shared.send(&Response::Event(wire));
                    shared.events_sent.fetch_add(1, Ordering::Relaxed);
                    wrote = true;
                }
            }
        }
        if shared.broken.load(Ordering::Relaxed) {
            break;
        }
        if !wrote {
            // A pending done_rx entry implies its job is still in
            // `inflight` (removal happens after its Done is written), so
            // an empty table means everything was delivered.
            let reader_done = shared.reader_done.load(Ordering::Relaxed);
            if reader_done && shared.jobs.lock().inflight.is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn forward_events<W: Write + Send>(shared: &ConnShared<W>, stream: &JobEvents) {
    for ev in stream.drain() {
        if let Some(wire) = event_from_bus(&ev) {
            shared.send(&Response::Event(wire));
            shared.events_sent.fetch_add(1, Ordering::Relaxed);
        }
    }
}
