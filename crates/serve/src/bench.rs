//! The `infera bench-serve` harness.
//!
//! Runs the paper's 20-question evaluation set through the scheduler at
//! several worker counts over the **same** ensemble and seed, then
//! checks that every question's report digest is identical across
//! configurations — concurrency must change throughput, never answers.
//!
//! Each question is submitted once per configuration with a fixed salt
//! derived from its question id, so `(session seed, salt)` — and hence
//! the analytical output — is constant across worker counts.

use crate::job::{JobResult, JobSpec, JobStatus};
use crate::scheduler::{metric_names, Scheduler, ServeConfig};
use infera_core::{question_set, InferA, InferaError, InferaResult, Question, SessionConfig};
use infera_hacc::Manifest;
use infera_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Benchmark options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Worker counts to sweep (first entry is the serial baseline).
    pub worker_counts: Vec<usize>,
    /// `RunConfig::llm_sleep_scale` for every run: fraction of the
    /// simulated model's virtual latency actually slept, so sessions
    /// overlap model waits the way real deployments do. 0 disables.
    pub sleep_scale: f64,
    /// Question subset size (0 = the full 20-question set).
    pub max_questions: usize,
    pub seed: u64,
    /// Fault-injection spec (`infera_faults::FaultPlan` grammar) applied
    /// to every configuration **after** the serial baseline. The digest
    /// gate still runs: faulted configurations must reproduce the clean
    /// baseline's digests bit-for-bit (retries replay from the same
    /// `(seed, salt)`), so this turns the bench into a chaos gate.
    pub faults: Option<String>,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            worker_counts: vec![1, 4, 8],
            sleep_scale: 0.04,
            max_questions: 0,
            seed: 42,
            faults: None,
        }
    }
}

impl BenchOpts {
    /// Fast gate for CI: few questions, no latency sleeps, 1-vs-4
    /// workers. Still fails on any concurrent-vs-serial divergence.
    pub fn smoke() -> BenchOpts {
        BenchOpts {
            worker_counts: vec![1, 4],
            sleep_scale: 0.0,
            max_questions: 6,
            seed: 42,
            faults: None,
        }
    }
}

/// One worker-count configuration's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerRow {
    pub workers: usize,
    /// Submit-to-drained wall clock for the whole question set (ms).
    pub wall_ms: u64,
    pub throughput_qpm: f64,
    /// Client-observed latency (queue + run), ms.
    pub p50_ms: u64,
    pub p95_ms: u64,
    pub p99_ms: u64,
    /// Queue wait alone (admission to worker pickup), ms.
    pub queue_p50_ms: u64,
    pub queue_p95_ms: u64,
    pub queue_p99_ms: u64,
    /// Run time alone (worker pickup to finish), ms.
    pub run_p50_ms: u64,
    pub run_p95_ms: u64,
    pub run_p99_ms: u64,
    pub speedup_vs_serial: f64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    pub cache_hits: u64,
    /// Decoded-batch cache hits across the configuration's runs.
    pub shared_cache_hits: u64,
    /// Transient failures replayed (0 unless a fault plan was active).
    #[serde(default)]
    pub retries: u64,
    /// Faults injected during this configuration (0 without a plan).
    #[serde(default)]
    pub faults_injected: u64,
}

/// Cost of serving with a live event-bus subscriber attached,
/// measured by re-running the widest configuration with a draining
/// subscription and comparing against the plain run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BusOverhead {
    pub workers: usize,
    /// Wall clock of the plain (no-subscriber) run at this width, ms.
    pub wall_ms_baseline: u64,
    /// Wall clock with a subscriber attached, ms.
    pub wall_ms_with_bus: u64,
    /// `(with_bus - baseline) / baseline`, percent. Small negative
    /// values are run-to-run noise.
    pub overhead_pct: f64,
    pub events_delivered: u64,
    pub events_dropped: u64,
    /// The with-bus run's digests matched the serial baseline:
    /// observability must never change answers.
    pub digests_match: bool,
}

/// `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchServeReport {
    pub questions: usize,
    pub seed: u64,
    pub sleep_scale: f64,
    pub ensemble_fingerprint: String,
    pub rows: Vec<WorkerRow>,
    /// Every question produced the same digest at every worker count.
    pub digests_match: bool,
    /// Question ids whose digests diverged (empty when `digests_match`).
    pub divergent_questions: Vec<u32>,
    pub bus: BusOverhead,
    /// The fault spec the non-baseline configurations ran under.
    #[serde(default)]
    pub fault_spec: Option<String>,
}

impl BenchServeReport {
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-serve: {} questions, sleep_scale {}, digests {}",
            self.questions,
            self.sleep_scale,
            if self.digests_match { "IDENTICAL" } else { "DIVERGED" },
        );
        if let Some(spec) = &self.fault_spec {
            let injected: u64 = self.rows.iter().map(|r| r.faults_injected).sum();
            let retries: u64 = self.rows.iter().map(|r| r.retries).sum();
            let _ = writeln!(
                out,
                "faults: '{spec}' active after the serial baseline \
                 ({injected} injected, {retries} retries)",
            );
        }
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12} {:>9} {:>9} {:>9} {:>14} {:>14} {:>9}",
            "workers", "wall_ms", "qpm", "p50_ms", "p95_ms", "p99_ms", "queue_p50/p99", "run_p50/p99", "speedup"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>12.2} {:>9} {:>9} {:>9} {:>14} {:>14} {:>8.2}x",
                row.workers,
                row.wall_ms,
                row.throughput_qpm,
                row.p50_ms,
                row.p95_ms,
                row.p99_ms,
                format!("{}/{}", row.queue_p50_ms, row.queue_p99_ms),
                format!("{}/{}", row.run_p50_ms, row.run_p99_ms),
                row.speedup_vs_serial
            );
        }
        let _ = writeln!(
            out,
            "bus overhead @{} workers: {:+.1}% ({} events delivered, {} dropped, digests {})",
            self.bus.workers,
            self.bus.overhead_pct,
            self.bus.events_delivered,
            self.bus.events_dropped,
            if self.bus.digests_match { "IDENTICAL" } else { "DIVERGED" },
        );
        out
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One configuration's raw measurements, before row assembly.
struct ConfigRun {
    results: Vec<JobResult>,
    wall_ms: u64,
    metrics: MetricsRegistry,
    shared_hits: u64,
    events_delivered: u64,
    events_dropped: u64,
}

/// Run the whole question set once at `workers` workers. With
/// `drain_bus`, a subscriber is attached before submission (activating
/// event publication end to end) and drained after shutdown.
fn run_configuration(
    manifest: &Manifest,
    work: &Path,
    opts: &BenchOpts,
    questions: &[Question],
    workers: usize,
    drain_bus: bool,
) -> InferaResult<ConfigRun> {
    std::fs::remove_dir_all(work).ok();
    let mut run_config = infera_agents::RunConfig::default();
    run_config.llm_sleep_scale = opts.sleep_scale;
    let session = Arc::new(
        InferA::from_manifest(manifest.clone())
            .work_dir(work)
            .config(
                SessionConfig::default()
                    .with_seed(opts.seed)
                    .with_run_config(run_config),
            )
            .build()?,
    );
    let sched = Scheduler::new(
        session.clone(),
        ServeConfig::with_pool(workers, questions.len().max(1)),
    );
    let sub = drain_bus.then(|| sched.bus().subscribe(65_536));
    let started = Instant::now();
    for q in questions {
        let spec = JobSpec::new(&q.text, u64::from(q.id) * 1000).semantic(q.semantic);
        // The handle is dropped deliberately: the bench collects every
        // result in bulk from `shutdown()`, it never awaits per job.
        sched
            .submit(spec)
            .map_err(|r| InferaError::internal(format!("bench admission failed: {r}")))?;
    }
    let metrics = sched.metrics().clone();
    let results = sched.shutdown();
    let wall_ms = started.elapsed().as_millis() as u64;
    let (events_delivered, events_dropped) = match &sub {
        Some(sub) => (sub.drain().len() as u64, sub.dropped()),
        None => (0, 0),
    };
    Ok(ConfigRun {
        results,
        wall_ms,
        metrics,
        shared_hits: session.shared_cache().hit_count(),
        events_delivered,
        events_dropped,
    })
}

/// `(question id, digest)` pairs for a configuration's results.
fn digest_map(questions: &[Question], results: &[JobResult]) -> Vec<(u32, u64)> {
    results
        .iter()
        .map(|r| {
            let qid = questions
                .iter()
                .find(|q| u64::from(q.id) * 1000 == r.salt)
                .map_or(0, |q| q.id);
            (qid, r.digest)
        })
        .collect()
}

/// Question ids in `config` whose digest differs from `baseline`.
fn divergences(baseline: &[(u32, u64)], config: &[(u32, u64)]) -> Vec<u32> {
    let mut divergent = Vec::new();
    for (qid, digest) in config {
        let base = baseline
            .iter()
            .find(|(b_qid, _)| b_qid == qid)
            .map(|(_, d)| *d);
        if base != Some(*digest) && !divergent.contains(qid) {
            divergent.push(*qid);
        }
    }
    divergent
}

/// Run the sweep. `work_root` receives one work dir per configuration.
pub fn run_bench(
    manifest: &Manifest,
    work_root: &Path,
    opts: &BenchOpts,
) -> InferaResult<BenchServeReport> {
    let mut questions = question_set();
    if opts.max_questions > 0 {
        questions.truncate(opts.max_questions);
    }
    if questions.is_empty() || opts.worker_counts.is_empty() {
        return Err(InferaError::invalid_input(
            "bench-serve needs at least one question and one worker count",
        ));
    }

    let fault_plan = match &opts.faults {
        Some(spec) => Some(infera_faults::FaultPlan::parse(spec).map_err(|e| {
            InferaError::invalid_input(format!("bad fault spec '{spec}': {e}"))
        })?),
        None => None,
    };

    let mut rows: Vec<WorkerRow> = Vec::new();
    // digests[i] = per-question digests at worker_counts[i].
    let mut digests: Vec<Vec<(u32, u64)>> = Vec::new();

    for (i, &workers) in opts.worker_counts.iter().enumerate() {
        // The serial baseline always runs clean; configurations after it
        // run under the fault plan and must reproduce its digests.
        match &fault_plan {
            Some(plan) if i > 0 => infera_faults::install(plan.clone()),
            _ => infera_faults::clear(),
        }
        let injected_before = infera_faults::total_injected();
        let work = work_root.join(format!("workers_{workers}"));
        let run = run_configuration(manifest, &work, opts, &questions, workers, false);
        let faults_injected = infera_faults::total_injected() - injected_before;
        infera_faults::clear();
        let run = run?;
        let mut latencies: Vec<u64> =
            run.results.iter().map(|r| r.queue_ms + r.run_ms).collect();
        latencies.sort_unstable();
        let mut queue_waits: Vec<u64> = run.results.iter().map(|r| r.queue_ms).collect();
        queue_waits.sort_unstable();
        let mut run_times: Vec<u64> = run.results.iter().map(|r| r.run_ms).collect();
        run_times.sort_unstable();
        let failed = run
            .results
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Failed(_)))
            .count() as u64;
        let serial_wall = rows.first().map_or(run.wall_ms, |r: &WorkerRow| r.wall_ms);
        rows.push(WorkerRow {
            workers,
            wall_ms: run.wall_ms,
            throughput_qpm: run.results.len() as f64 / (run.wall_ms.max(1) as f64 / 60_000.0),
            p50_ms: percentile(&latencies, 0.50),
            p95_ms: percentile(&latencies, 0.95),
            p99_ms: percentile(&latencies, 0.99),
            queue_p50_ms: percentile(&queue_waits, 0.50),
            queue_p95_ms: percentile(&queue_waits, 0.95),
            queue_p99_ms: percentile(&queue_waits, 0.99),
            run_p50_ms: percentile(&run_times, 0.50),
            run_p95_ms: percentile(&run_times, 0.95),
            run_p99_ms: percentile(&run_times, 0.99),
            speedup_vs_serial: serial_wall as f64 / run.wall_ms.max(1) as f64,
            jobs_completed: run.metrics.counter(metric_names::JOBS_COMPLETED),
            jobs_failed: failed,
            cache_hits: run.metrics.counter(metric_names::CACHE_HITS),
            shared_cache_hits: run.shared_hits,
            retries: run.metrics.counter(metric_names::RETRY_ATTEMPTS),
            faults_injected,
        });
        digests.push(digest_map(&questions, &run.results));
    }

    // Compare every configuration's digests against the first (serial).
    let mut divergent: Vec<u32> = Vec::new();
    let baseline = digests[0].clone();
    for config in &digests[1..] {
        for qid in divergences(&baseline, config) {
            if !divergent.contains(&qid) {
                divergent.push(qid);
            }
        }
    }

    // Bus-overhead pass: the widest configuration again, this time with
    // a subscriber attached so every span/job event is serialized onto
    // the bus. Observability must be close to free and must not change
    // a single digest.
    let bus_workers = *opts.worker_counts.last().expect("non-empty checked above");
    let bus_run = run_configuration(
        manifest,
        &work_root.join(format!("workers_{bus_workers}_bus")),
        opts,
        &questions,
        bus_workers,
        true,
    )?;
    let bus_baseline_wall = rows.last().expect("one row per worker count").wall_ms;
    let bus_divergent = divergences(&baseline, &digest_map(&questions, &bus_run.results));
    for qid in &bus_divergent {
        if !divergent.contains(qid) {
            divergent.push(*qid);
        }
    }
    divergent.sort_unstable();
    let bus = BusOverhead {
        workers: bus_workers,
        wall_ms_baseline: bus_baseline_wall,
        wall_ms_with_bus: bus_run.wall_ms,
        overhead_pct: (bus_run.wall_ms as f64 - bus_baseline_wall as f64)
            / bus_baseline_wall.max(1) as f64
            * 100.0,
        events_delivered: bus_run.events_delivered,
        events_dropped: bus_run.events_dropped,
        digests_match: bus_divergent.is_empty(),
    };

    Ok(BenchServeReport {
        questions: questions.len(),
        seed: opts.seed,
        sleep_scale: opts.sleep_scale,
        ensemble_fingerprint: format!("{:016x}", manifest.fingerprint()),
        rows,
        digests_match: divergent.is_empty(),
        divergent_questions: divergent,
        bus,
        fault_spec: opts.faults.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_hacc::EnsembleSpec;

    #[test]
    fn smoke_bench_digests_agree() {
        let base = std::env::temp_dir().join("infera_serve_bench_tests/smoke");
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(71), &base.join("ens")).unwrap();
        let mut opts = BenchOpts::smoke();
        opts.max_questions = 3;
        let report = run_bench(&manifest, &base.join("work"), &opts).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(
            report.digests_match,
            "divergent questions: {:?}",
            report.divergent_questions
        );
        assert_eq!(report.rows[0].workers, 1);
        // Queue-wait + run-time percentiles decompose client latency.
        for row in &report.rows {
            assert!(row.p99_ms >= row.p95_ms);
            assert!(row.run_p99_ms >= row.run_p50_ms);
        }
        // The with-bus pass delivered real events and changed nothing.
        assert!(report.bus.digests_match, "bus run diverged");
        assert!(report.bus.events_delivered > 0, "subscriber saw no events");
        assert_eq!(report.bus.workers, 4);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("throughput_qpm"));
        assert!(json.contains("queue_p99_ms"));
        assert!(json.contains("overhead_pct"));
        let text = report.to_text();
        assert!(text.contains("IDENTICAL"));
        assert!(text.contains("bus overhead"));
    }
}
