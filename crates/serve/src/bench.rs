//! The `infera bench-serve` harness.
//!
//! Runs the paper's 20-question evaluation set through the scheduler at
//! several worker counts over the **same** ensemble and seed, then
//! checks that every question's report digest is identical across
//! configurations — concurrency must change throughput, never answers.
//!
//! Each question is submitted once per configuration with a fixed salt
//! derived from its question id, so `(session seed, salt)` — and hence
//! the analytical output — is constant across worker counts.

use crate::job::{JobSpec, JobStatus};
use crate::scheduler::{metric_names, Scheduler, ServeConfig};
use infera_core::{question_set, InferA, InferaError, InferaResult, SessionConfig};
use infera_hacc::Manifest;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Benchmark options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Worker counts to sweep (first entry is the serial baseline).
    pub worker_counts: Vec<usize>,
    /// `RunConfig::llm_sleep_scale` for every run: fraction of the
    /// simulated model's virtual latency actually slept, so sessions
    /// overlap model waits the way real deployments do. 0 disables.
    pub sleep_scale: f64,
    /// Question subset size (0 = the full 20-question set).
    pub max_questions: usize,
    pub seed: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            worker_counts: vec![1, 4, 8],
            sleep_scale: 0.04,
            max_questions: 0,
            seed: 42,
        }
    }
}

impl BenchOpts {
    /// Fast gate for CI: few questions, no latency sleeps, 1-vs-4
    /// workers. Still fails on any concurrent-vs-serial divergence.
    pub fn smoke() -> BenchOpts {
        BenchOpts {
            worker_counts: vec![1, 4],
            sleep_scale: 0.0,
            max_questions: 6,
            seed: 42,
        }
    }
}

/// One worker-count configuration's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerRow {
    pub workers: usize,
    /// Submit-to-drained wall clock for the whole question set (ms).
    pub wall_ms: u64,
    pub throughput_qpm: f64,
    /// Client-observed latency (queue + run), ms.
    pub p50_ms: u64,
    pub p95_ms: u64,
    pub speedup_vs_serial: f64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    pub cache_hits: u64,
    /// Decoded-batch cache hits across the configuration's runs.
    pub shared_cache_hits: u64,
}

/// `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchServeReport {
    pub questions: usize,
    pub seed: u64,
    pub sleep_scale: f64,
    pub ensemble_fingerprint: String,
    pub rows: Vec<WorkerRow>,
    /// Every question produced the same digest at every worker count.
    pub digests_match: bool,
    /// Question ids whose digests diverged (empty when `digests_match`).
    pub divergent_questions: Vec<u32>,
}

impl BenchServeReport {
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-serve: {} questions, sleep_scale {}, digests {}",
            self.questions,
            self.sleep_scale,
            if self.digests_match { "IDENTICAL" } else { "DIVERGED" },
        );
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>12} {:>9} {:>9} {:>9}",
            "workers", "wall_ms", "qpm", "p50_ms", "p95_ms", "speedup"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>12.2} {:>9} {:>9} {:>8.2}x",
                row.workers,
                row.wall_ms,
                row.throughput_qpm,
                row.p50_ms,
                row.p95_ms,
                row.speedup_vs_serial
            );
        }
        out
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run the sweep. `work_root` receives one work dir per configuration.
pub fn run_bench(
    manifest: &Manifest,
    work_root: &Path,
    opts: &BenchOpts,
) -> InferaResult<BenchServeReport> {
    let mut questions = question_set();
    if opts.max_questions > 0 {
        questions.truncate(opts.max_questions);
    }
    if questions.is_empty() || opts.worker_counts.is_empty() {
        return Err(InferaError::invalid_input(
            "bench-serve needs at least one question and one worker count",
        ));
    }

    let mut rows: Vec<WorkerRow> = Vec::new();
    // digests[i] = per-question digests at worker_counts[i].
    let mut digests: Vec<Vec<(u32, u64)>> = Vec::new();

    for &workers in &opts.worker_counts {
        let work = work_root.join(format!("workers_{workers}"));
        std::fs::remove_dir_all(&work).ok();
        let mut run_config = infera_agents::RunConfig::default();
        run_config.llm_sleep_scale = opts.sleep_scale;
        let session = Arc::new(
            InferA::from_manifest(manifest.clone())
                .work_dir(&work)
                .config(
                    SessionConfig::default()
                        .with_seed(opts.seed)
                        .with_run_config(run_config),
                )
                .build()?,
        );
        let sched = Scheduler::new(
            session.clone(),
            ServeConfig {
                workers,
                queue_capacity: questions.len().max(1),
            },
        );
        let started = Instant::now();
        for q in &questions {
            let spec = JobSpec::new(&q.text, u64::from(q.id) * 1000).semantic(q.semantic);
            sched
                .submit_spec(spec)
                .map_err(|r| InferaError::internal(format!("bench admission failed: {r}")))?;
        }
        let salts: Vec<(u64, u32)> = questions
            .iter()
            .map(|q| (u64::from(q.id) * 1000, q.id))
            .collect();
        let metrics = sched.metrics().clone();
        let results = sched.shutdown();
        let wall_ms = started.elapsed().as_millis() as u64;
        let shared_hits = session.shared_cache().hit_count();

        let mut latencies: Vec<u64> =
            results.iter().map(|r| r.queue_ms + r.run_ms).collect();
        latencies.sort_unstable();
        let failed = results
            .iter()
            .filter(|r| matches!(r.status, JobStatus::Failed(_)))
            .count() as u64;
        let serial_wall = rows.first().map_or(wall_ms, |r: &WorkerRow| r.wall_ms);
        rows.push(WorkerRow {
            workers,
            wall_ms,
            throughput_qpm: results.len() as f64 / (wall_ms.max(1) as f64 / 60_000.0),
            p50_ms: percentile(&latencies, 0.50),
            p95_ms: percentile(&latencies, 0.95),
            speedup_vs_serial: serial_wall as f64 / wall_ms.max(1) as f64,
            jobs_completed: metrics.counter(metric_names::JOBS_COMPLETED),
            jobs_failed: failed,
            cache_hits: metrics.counter(metric_names::CACHE_HITS),
            shared_cache_hits: shared_hits,
        });
        digests.push(
            results
                .iter()
                .map(|r| {
                    let qid = salts
                        .iter()
                        .find(|(salt, _)| *salt == r.salt)
                        .map_or(0, |(_, id)| *id);
                    (qid, r.digest)
                })
                .collect(),
        );
    }

    // Compare every configuration's digests against the first (serial).
    let mut divergent: Vec<u32> = Vec::new();
    let baseline = &digests[0];
    for config in &digests[1..] {
        for (qid, digest) in config {
            let base = baseline
                .iter()
                .find(|(b_qid, _)| b_qid == qid)
                .map(|(_, d)| *d);
            if base != Some(*digest) && !divergent.contains(qid) {
                divergent.push(*qid);
            }
        }
    }
    divergent.sort_unstable();

    Ok(BenchServeReport {
        questions: questions.len(),
        seed: opts.seed,
        sleep_scale: opts.sleep_scale,
        ensemble_fingerprint: format!("{:016x}", manifest.fingerprint()),
        rows,
        digests_match: divergent.is_empty(),
        divergent_questions: divergent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_hacc::EnsembleSpec;

    #[test]
    fn smoke_bench_digests_agree() {
        let base = std::env::temp_dir().join("infera_serve_bench_tests/smoke");
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(71), &base.join("ens")).unwrap();
        let mut opts = BenchOpts::smoke();
        opts.max_questions = 3;
        let report = run_bench(&manifest, &base.join("work"), &opts).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert!(
            report.digests_match,
            "divergent questions: {:?}",
            report.divergent_questions
        );
        assert_eq!(report.rows[0].workers, 1);
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("throughput_qpm"));
        let text = report.to_text();
        assert!(text.contains("IDENTICAL"));
    }
}
