//! The admission-controlled job scheduler.
//!
//! One [`Scheduler`] owns N worker threads, all running against a
//! single shared [`InferA`] session (`Arc`-shared manifest and
//! decoded-batch cache, per-run databases and provenance stores).
//! Submissions go through a **bounded** queue: a full queue rejects
//! immediately with [`RejectReason::QueueFull`] — backpressure is the
//! caller's signal to slow down, never a blocked thread.
//!
//! Metrics (a [`MetricsRegistry`] the embedder can scrape):
//!
//! | name                       | kind      |                                |
//! |----------------------------|-----------|--------------------------------|
//! | `serve.queue_depth`        | gauge     | jobs queued, not yet picked up |
//! | `serve.jobs_accepted`      | counter   | submissions admitted           |
//! | `serve.jobs_rejected`      | counter   | submissions refused            |
//! | `serve.jobs_completed`     | counter   | results delivered              |
//! | `serve.jobs_failed`        | counter   | completions with an error      |
//! | `serve.jobs_timed_out`     | counter   | failures that hit a deadline   |
//! | `serve.cache_hits`         | counter   | answered from the result cache |
//! | `serve.queue_wait_ms`      | histogram | admission → pickup latency     |
//! | `serve.run_ms`             | histogram | pickup → completion latency    |
//! | `retry.attempts`           | counter   | transient failures replayed    |
//! | `retry.exhausted`          | counter   | jobs that failed every attempt |
//! | `breaker.opened`           | counter   | circuit-open transitions       |
//! | `breaker.rejected`         | counter   | submissions shed by the breaker|
//! | `serve.worker_panics`      | counter   | job panics caught in-worker    |
//! | `serve.workers_lost`       | counter   | worker deaths (respawned)      |
//! | `fault.recovered`          | counter   | injected faults survived       |
//!
//! Resilience (see [`crate::resilience`]): transient infrastructure
//! failures are replayed up to `retry.max_attempts` times with
//! deterministic backoff — a retried run re-executes from the same
//! `(seed, salt)`, so a retry that succeeds is bit-identical to an
//! unfaulted run. A panicking job is caught at the worker boundary and
//! reported as a typed `Internal` failure; a panicking worker is
//! respawned in place so the pool never shrinks. Consecutive final
//! failures of one class open a circuit that sheds load at admission
//! until its cooldown admits a probe.
//!
//! Live observability: the scheduler owns an [`EventBus`] every job's
//! tracer is attached to (span stream + per-job lifecycle events, see
//! [`crate::telemetry::event_names`]), a [`GlobalMetrics`] aggregate
//! each finished job's per-run registry is absorbed into, and a
//! [`FlightRecorder`] retaining full traces of the slowest and all
//! failed/timed-out jobs.

use crate::cache::{ResultCache, ResultKey};
use crate::digest::report_digest;
use crate::flight::{FlightEntry, FlightOutcome, FlightRecorder};
use crate::handle::{JobEvents, JobHandle, JobSlot};
use crate::job::{JobResult, JobSpec, JobStatus, RejectReason};
use crate::resilience::{is_transient, BreakerConfig, CircuitBreaker, RetryPolicy};
use crate::telemetry::{self, event_names};
use crossbeam::channel::{self, TrySendError};
use infera_agents::CancelToken;
use infera_core::{
    estimate_semantic_level, AskOptions, ErrorKind, InferA, InferaError, InferaResult,
};
use infera_obs::{AttrValue, EventBus, GlobalMetrics, MetricsRegistry, Obs, TraceSnapshot};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Metric names exported by the scheduler — aliases of the declared
/// constants in [`infera_obs::metric_names`] (kept as a module for
/// backward compatibility with earlier callers).
pub mod metric_names {
    use infera_obs::metric_names as m;
    pub const QUEUE_DEPTH: &str = m::SERVE_QUEUE_DEPTH;
    pub const JOBS_ACCEPTED: &str = m::SERVE_JOBS_ACCEPTED;
    pub const JOBS_REJECTED: &str = m::SERVE_JOBS_REJECTED;
    pub const JOBS_COMPLETED: &str = m::SERVE_JOBS_COMPLETED;
    pub const JOBS_FAILED: &str = m::SERVE_JOBS_FAILED;
    pub const JOBS_TIMED_OUT: &str = m::SERVE_JOBS_TIMED_OUT;
    pub const CACHE_HITS: &str = m::SERVE_CACHE_HITS;
    pub const QUEUE_WAIT_MS: &str = m::SERVE_QUEUE_WAIT_MS;
    pub const RUN_MS: &str = m::SERVE_RUN_MS;
    pub const RETRY_ATTEMPTS: &str = m::RETRY_ATTEMPTS;
    pub const RETRY_EXHAUSTED: &str = m::RETRY_EXHAUSTED;
    pub const BREAKER_OPENED: &str = m::BREAKER_OPENED;
    pub const BREAKER_REJECTED: &str = m::BREAKER_REJECTED;
    pub const WORKER_PANICS: &str = m::SERVE_WORKER_PANICS;
    pub const WORKERS_LOST: &str = m::SERVE_WORKERS_LOST;
    pub const FAULT_RECOVERED: &str = m::FAULT_RECOVERED;
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running workflows.
    pub workers: usize,
    /// Bounded queue capacity (jobs admitted but not yet picked up).
    pub queue_capacity: usize,
    /// Flight-recorder slots for the slowest completed jobs.
    pub flight_slowest: usize,
    /// Flight-recorder slots for failed/timed-out jobs.
    pub flight_failures: usize,
    /// Bounded retry for transient job failures.
    pub retry: RetryPolicy,
    /// Per-failure-class circuit breaking at admission.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            flight_slowest: 8,
            flight_failures: 32,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Minimal config for tests/benches: just workers + queue size.
    pub fn with_pool(workers: usize, queue_capacity: usize) -> ServeConfig {
        ServeConfig {
            workers,
            queue_capacity,
            ..ServeConfig::default()
        }
    }
}

/// A queued job: the spec plus its admission bookkeeping.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    cancel: CancelToken,
    admitted: Instant,
    /// Completion slot shared with the submitter's [`JobHandle`].
    slot: Arc<JobSlot>,
}

struct SchedulerShared {
    session: Arc<InferA>,
    cache: Arc<ResultCache>,
    metrics: MetricsRegistry,
    bus: EventBus,
    global: GlobalMetrics,
    flight: FlightRecorder,
    retry: RetryPolicy,
    breaker: CircuitBreaker,
    queue_depth: AtomicU64,
    /// Set by `begin_shutdown`: reject new work, skip retry backoffs.
    shutting_down: AtomicBool,
    /// Cancel handles for queued + running jobs, by job id.
    inflight: Mutex<HashMap<u64, CancelToken>>,
}

impl SchedulerShared {
    fn sync_queue_gauge(&self) {
        self.metrics.set_gauge(
            metric_names::QUEUE_DEPTH,
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
    }
}

/// The serving layer's front door. See the module docs for semantics.
pub struct Scheduler {
    shared: Arc<SchedulerShared>,
    /// `None` once shutdown began: dropping the sender closes the queue,
    /// so workers drain what was admitted and exit.
    tx: Mutex<Option<channel::Sender<QueuedJob>>>,
    /// Behind a mutex for `Sync`: the stub crossbeam receiver is
    /// mpsc-backed, and the network server shares the scheduler across
    /// connection threads.
    results_rx: Mutex<channel::Receiver<JobResult>>,
    handles: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    queue_capacity: usize,
}

impl Scheduler {
    /// Spawn the worker pool over a shared session.
    ///
    /// Panics only if the OS refuses to spawn worker threads — an
    /// unrecoverable environment failure. Use [`Scheduler::try_new`] to
    /// handle that as a typed error instead.
    pub fn new(session: Arc<InferA>, config: ServeConfig) -> Scheduler {
        Scheduler::try_new(session, config)
            .unwrap_or_else(|e| panic!("scheduler startup failed: {e}"))
    }

    /// Fallible constructor: thread-spawn failures surface as
    /// [`ErrorKind::Internal`] instead of panicking.
    pub fn try_new(session: Arc<InferA>, config: ServeConfig) -> InferaResult<Scheduler> {
        let workers = config.workers.max(1);
        let cache = Arc::new(ResultCache::new(
            session.config().result_cache_entries,
        ));
        cache.validate_fingerprint(session.manifest().fingerprint());
        // The scheduler's own instruments record straight into the
        // process-wide aggregate (same underlying registry), so one
        // scrape sees scheduler counters and absorbed run metrics alike.
        let global = GlobalMetrics::new();
        let shared = Arc::new(SchedulerShared {
            session,
            cache,
            metrics: global.registry().clone(),
            bus: EventBus::new(),
            global,
            flight: FlightRecorder::new(config.flight_slowest, config.flight_failures),
            retry: config.retry,
            breaker: CircuitBreaker::new(config.breaker),
            queue_depth: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            inflight: Mutex::new(HashMap::new()),
        });
        let (tx, rx) = channel::bounded::<QueuedJob>(config.queue_capacity.max(1));
        let (results_tx, results_rx) = channel::unbounded::<JobResult>();
        // The stub crossbeam Receiver is mpsc-backed (not Sync), so the
        // pool shares it behind a mutex; real crossbeam clones fine too.
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = shared.clone();
            let rx = rx.clone();
            let results_tx = results_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("infera-serve-{i}"))
                // A panic escaping `worker_loop` (per-job panics are
                // caught inside it) must not shrink the pool: catch it,
                // count the loss, and re-enter the loop — the same
                // thread "respawns" as a fresh worker.
                .spawn(move || loop {
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(&shared, &rx, &results_tx)
                    }));
                    match run {
                        Ok(()) => break, // queue closed and drained
                        Err(_) => {
                            shared.metrics.inc(metric_names::WORKERS_LOST, 1);
                        }
                    }
                })
                .map_err(|e| {
                    InferaError::internal(format!("spawn serve worker {i}: {e}"))
                })?;
            handles.push(handle);
        }
        Ok(Scheduler {
            shared,
            tx: Mutex::new(Some(tx)),
            results_rx: Mutex::new(results_rx),
            handles,
            next_id: AtomicU64::new(0),
            queue_capacity: config.queue_capacity.max(1),
        })
    }

    /// Submit a fully-specified job, returning a typed [`JobHandle`] to
    /// await, poll, or cancel it. Non-blocking: a full queue, an open
    /// circuit, or a shutdown in progress rejects with a reason.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, RejectReason> {
        self.admit(spec, None)
    }

    /// Submit with a live per-job event stream: the handle's
    /// [`JobHandle::events`] yields this job's lifecycle and span events
    /// (queued → plan → steps → QA attempts → completion), subscribed
    /// *before* admission so nothing is missed. `event_capacity` bounds
    /// the subscriber buffer — a slow consumer drops events (counted),
    /// never blocks the workers.
    pub fn submit_streaming(
        &self,
        spec: JobSpec,
        event_capacity: usize,
    ) -> Result<JobHandle, RejectReason> {
        self.admit(spec, Some(event_capacity))
    }

    /// Submit a question with an auto-assigned salt (the job id).
    pub fn submit_question(&self, question: &str) -> Result<JobHandle, RejectReason> {
        let salt = self.next_id.load(Ordering::Relaxed) + 1;
        self.submit(JobSpec::new(question, salt))
    }

    fn reject(&self, reason: RejectReason, label: &str) -> RejectReason {
        self.shared.metrics.inc(metric_names::JOBS_REJECTED, 1);
        self.shared.bus.publish_job(
            event_names::JOB_REJECTED,
            &[("reason", AttrValue::from(label))],
        );
        reason
    }

    fn admit(
        &self,
        spec: JobSpec,
        event_capacity: Option<usize>,
    ) -> Result<JobHandle, RejectReason> {
        if self.shared.shutting_down.load(Ordering::Relaxed) {
            return Err(self.reject(RejectReason::ShuttingDown, "shutting_down"));
        }
        if let Err(class) = self.shared.breaker.admit() {
            self.shared.metrics.inc(metric_names::BREAKER_REJECTED, 1);
            return Err(self.reject(
                RejectReason::CircuitOpen {
                    class: class.to_string(),
                },
                "circuit_open",
            ));
        }
        let tx_guard = self.tx.lock();
        let Some(tx) = tx_guard.as_ref() else {
            return Err(self.reject(RejectReason::ShuttingDown, "shutting_down"));
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let salt = spec.salt;
        let question = spec.question.clone();
        let cancel = CancelToken::new();
        let slot = JobSlot::new();
        // Subscribe before the enqueue (and before the job_queued event
        // below) so the stream opens with this job's admission.
        let events = event_capacity.map(|capacity| JobEvents {
            sub: self.shared.bus.subscribe(capacity),
            job: id,
        });
        let job = QueuedJob {
            id,
            spec,
            cancel: cancel.clone(),
            admitted: Instant::now(),
            slot: slot.clone(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.inflight.lock().insert(id, cancel.clone());
                self.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                self.shared.sync_queue_gauge();
                self.shared.metrics.inc(metric_names::JOBS_ACCEPTED, 1);
                self.shared.bus.publish_job(
                    event_names::JOB_QUEUED,
                    &[("job", AttrValue::from(id)), ("salt", AttrValue::from(salt))],
                );
                Ok(JobHandle {
                    id,
                    salt,
                    question,
                    slot,
                    cancel,
                    events,
                })
            }
            Err(TrySendError::Full(_)) => Err(self.reject(
                RejectReason::QueueFull {
                    capacity: self.queue_capacity,
                },
                "queue_full",
            )),
            Err(TrySendError::Disconnected(_)) => {
                Err(self.reject(RejectReason::ShuttingDown, "shutting_down"))
            }
        }
    }

    /// Deprecated shim over [`Scheduler::submit`]: returns the bare job
    /// id and leaves the result on the shared completion-ordered channel
    /// ([`Scheduler::next_result`]).
    #[deprecated(note = "use Scheduler::submit, which returns a typed JobHandle")]
    pub fn submit_spec(&self, spec: JobSpec) -> Result<u64, RejectReason> {
        self.submit(spec).map(|handle| handle.id())
    }

    /// Cancel a queued or running job. Queued jobs complete as
    /// `Canceled` when a worker picks them up; running jobs abort at
    /// their next step boundary. Returns `false` for unknown/finished ids.
    pub fn cancel(&self, id: u64) -> bool {
        match self.shared.inflight.lock().get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Deprecated shim: block until the next finished job (`None` once
    /// all workers exited and the buffer is drained). New code awaits
    /// the [`JobHandle`] returned by [`Scheduler::submit`] instead —
    /// per-job routing, no completion-order coupling.
    #[deprecated(note = "await the JobHandle returned by Scheduler::submit")]
    pub fn next_result(&self) -> Option<JobResult> {
        self.results_rx.lock().recv().ok()
    }

    /// Deprecated shim: non-blocking result poll. New code uses
    /// [`JobHandle::try_result`].
    #[deprecated(note = "poll the JobHandle returned by Scheduler::submit")]
    pub fn try_next_result(&self) -> Option<JobResult> {
        self.results_rx.lock().try_recv().ok()
    }

    /// Drain the legacy completion-ordered channel without blocking.
    /// Handle-based callers never read it, so a long-lived server must
    /// empty it periodically or the buffer grows without bound.
    pub(crate) fn drain_results(&self) -> usize {
        let rx = self.results_rx.lock();
        let mut drained = 0;
        while rx.try_recv().is_ok() {
            drained += 1;
        }
        drained
    }

    /// Jobs admitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue_depth.load(Ordering::Relaxed)
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Bounded queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// A salt equal to the next job id — the auto-salt for submissions
    /// that don't pin one. Advisory: concurrent submitters may observe
    /// the same value, which only means those jobs share a cache key if
    /// the question matches too.
    pub fn auto_salt(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) + 1
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The live event bus: every job's span stream plus the scheduler's
    /// own lifecycle events. Subscribe before submitting to see a job
    /// from admission onward.
    pub fn bus(&self) -> &EventBus {
        &self.shared.bus
    }

    /// Process-wide metrics: every finished job's registry merged, plus
    /// the scheduler's own instruments.
    pub fn global_metrics(&self) -> &GlobalMetrics {
        &self.shared.global
    }

    /// The slow-query flight recorder.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// One line of operational state (jobs/queue/latency/cache/bus).
    pub fn stats_line(&self) -> String {
        telemetry::sync_bus_counters(&self.shared.global, &self.shared.bus);
        telemetry::sync_fault_counters(&self.shared.global);
        telemetry::render_stats_line(&self.shared.global, &self.shared.bus)
    }

    /// Write the observability artifacts (Prometheus exposition, global
    /// snapshot, flight recorder) under `<work_dir>/obs/` for offline
    /// inspection via `infera stats`.
    pub fn persist_observability(&self, work_dir: &std::path::Path) -> InferaResult<std::path::PathBuf> {
        telemetry::persist_observability(
            work_dir,
            &self.shared.global,
            &self.shared.bus,
            &self.shared.flight,
        )
    }

    pub fn result_cache(&self) -> &Arc<ResultCache> {
        &self.shared.cache
    }

    pub fn session(&self) -> &Arc<InferA> {
        &self.shared.session
    }

    /// Begin a graceful shutdown without consuming the scheduler: new
    /// submissions reject with [`RejectReason::ShuttingDown`], already
    /// admitted jobs keep draining (results stay collectable via
    /// [`Scheduler::next_result`]), and pending retry backoffs are
    /// skipped so the drain finishes promptly.
    pub fn begin_shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::Relaxed);
        *self.tx.lock() = None; // workers see a closed queue and exit
    }

    /// Whether `begin_shutdown` has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::Relaxed)
    }

    /// Stop admitting, run the queue dry, join the workers, and return
    /// every undelivered result (ordered by job id).
    pub fn shutdown(mut self) -> Vec<JobResult> {
        self.begin_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        let mut results = Vec::new();
        while let Ok(result) = self.results_rx.lock().try_recv() {
            results.push(result);
        }
        results.sort_by_key(|r| r.id);
        results
    }
}

/// Render a panic payload for error messages (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(
    shared: &SchedulerShared,
    rx: &Mutex<channel::Receiver<QueuedJob>>,
    results_tx: &channel::Sender<JobResult>,
) {
    loop {
        // Injection site: a worker dying outside any job (the respawn
        // guard in `try_new` catches it, so the pool never shrinks).
        // Checked before the dequeue — a worker must never die holding
        // a job.
        if infera_faults::check(infera_faults::sites::SERVE_WORKER).is_some() {
            panic!(
                "{}",
                infera_faults::injected_error(infera_faults::sites::SERVE_WORKER)
            );
        }
        // Hold the lock only for the dequeue, never across a workflow.
        let job = match rx.lock().try_recv() {
            Ok(job) => Some(job),
            Err(_) => None,
        };
        let job = match job {
            Some(job) => job,
            None => {
                // Blocking recv without starving siblings: take the lock,
                // wait briefly, release. Closed + empty queue ends the loop.
                let guard = rx.lock();
                match guard.recv_timeout(std::time::Duration::from_millis(20)) {
                    Ok(job) => job,
                    Err(channel::RecvTimeoutError::Timeout) => continue,
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.sync_queue_gauge();
        // Panic isolation: a panicking workflow fails its own job with a
        // typed Internal error instead of killing the worker.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, &job)
        }))
        .unwrap_or_else(|payload| panicked_job_result(shared, &job, &*payload));
        shared.inflight.lock().remove(&job.id);
        shared.metrics.inc(metric_names::JOBS_COMPLETED, 1);
        match &result.status {
            JobStatus::Done(_) => shared.breaker.record_success(),
            JobStatus::Failed(err) => {
                shared.metrics.inc(metric_names::JOBS_FAILED, 1);
                if err.kind() == ErrorKind::Timeout {
                    shared.metrics.inc(metric_names::JOBS_TIMED_OUT, 1);
                }
                // Caller-initiated cancellation says nothing about
                // system health; every other final failure feeds its
                // class's circuit.
                if err.kind() != ErrorKind::Canceled
                    && shared.breaker.record_failure(err.kind().label())
                {
                    shared.metrics.inc(metric_names::BREAKER_OPENED, 1);
                }
            }
        }
        // The handle's slot is completed first: JobHandle::wait must
        // never hang on a finished job, even if the legacy channel's
        // receiver is gone.
        job.slot.complete(result.clone());
        if results_tx.send(result).is_err() {
            break; // scheduler dropped mid-flight
        }
    }
}

/// Build the failure result for a job whose workflow panicked: count
/// it, record a flight entry (no trace — the tracer died with the
/// stack), publish the lifecycle event, and report a typed error.
fn panicked_job_result(
    shared: &SchedulerShared,
    job: &QueuedJob,
    payload: &(dyn std::any::Any + Send),
) -> JobResult {
    let msg = panic_message(payload);
    shared.metrics.inc(metric_names::WORKER_PANICS, 1);
    if msg.contains(infera_faults::INJECTED_MARKER) {
        shared.metrics.inc(metric_names::FAULT_RECOVERED, 1);
    }
    let err = InferaError::internal(format!("job panicked: {msg}"));
    let queue_ms = 0; // observed by run_job before the panic
    let run_ms = job.admitted.elapsed().as_millis() as u64;
    shared.flight.record_failure(FlightEntry {
        job_id: job.id,
        question: job.spec.question.clone(),
        salt: job.spec.salt,
        outcome: FlightOutcome::Failed,
        error: Some(err.to_string()),
        cache_hit: false,
        queue_ms,
        run_ms,
        digest: 0,
        attempts: 1,
        trace: TraceSnapshot {
            spans: Vec::new(),
            orphan_events: Vec::new(),
        },
    });
    shared.bus.publish_job(
        event_names::JOB_FAILED,
        &[
            ("job", AttrValue::from(job.id)),
            ("run_ms", AttrValue::from(run_ms)),
            ("error", AttrValue::from(err.to_string())),
        ],
    );
    JobResult {
        id: job.id,
        question: job.spec.question.clone(),
        salt: job.spec.salt,
        status: JobStatus::Failed(err),
        digest: 0,
        cache_hit: false,
        queue_ms,
        run_ms,
        attempts: 1,
    }
}

fn run_job(shared: &SchedulerShared, job: &QueuedJob) -> JobResult {
    let picked_up = Instant::now();
    let queue_ms = picked_up.duration_since(job.admitted).as_millis() as u64;
    shared
        .metrics
        .observe(metric_names::QUEUE_WAIT_MS, queue_ms as f64);
    let spec = &job.spec;
    shared.bus.publish_job(
        event_names::JOB_STARTED,
        &[
            ("job", AttrValue::from(job.id)),
            ("salt", AttrValue::from(spec.salt)),
            ("question", AttrValue::from(spec.question.as_str())),
            ("queue_ms", AttrValue::from(queue_ms)),
        ],
    );
    let semantic = spec
        .semantic
        .unwrap_or_else(|| estimate_semantic_level(&spec.question));
    let key = ResultKey {
        question: spec.question.clone(),
        fingerprint: shared.session.manifest().fingerprint(),
        seed: shared.session.config().seed,
        salt: spec.salt,
        semantic: semantic.label().to_string(),
    };
    // Injection site: a result-cache miss. Recovery is recomputation —
    // the workflow below re-derives the same (seed, salt) report the
    // cache would have returned.
    let cached = if infera_faults::check(infera_faults::sites::CACHE_RESULT).is_some() {
        shared.metrics.inc(metric_names::FAULT_RECOVERED, 1);
        None
    } else {
        shared.cache.get(&key)
    };
    if let Some(report) = cached {
        shared.metrics.inc(metric_names::CACHE_HITS, 1);
        let run_ms = picked_up.elapsed().as_millis() as u64;
        shared.metrics.observe(metric_names::RUN_MS, run_ms as f64);
        let digest = report_digest(&report);
        shared.bus.publish_job(
            event_names::JOB_COMPLETED,
            &[
                ("job", AttrValue::from(job.id)),
                ("run_ms", AttrValue::from(run_ms)),
                ("digest", AttrValue::from(format!("{digest:016x}"))),
                ("cache_hit", AttrValue::from(true)),
            ],
        );
        return JobResult {
            id: job.id,
            question: spec.question.clone(),
            salt: spec.salt,
            digest,
            cache_hit: true,
            queue_ms,
            run_ms,
            attempts: 1,
            status: JobStatus::Done(report),
        };
    }
    // Execute the workflow, replaying transient infrastructure failures
    // up to the retry budget. Every attempt re-runs from the same
    // `(seed, salt)`, so a retry that succeeds is bit-identical to a
    // never-faulted run — the redo loop inside the run never sees the
    // fault (agents abort with `AgentError::Infra` instead).
    let policy = shared.retry;
    let mut attempts: u32 = 0;
    let mut injected_failure = false;
    let (status, obs) = loop {
        attempts += 1;
        // The job gets its own Obs per attempt, bus-attached and
        // scheduler-held: the trace survives failures (no RunReport to
        // carry it) and streams live while the run executes.
        // Observability only — the run's analytical output is still a
        // pure function of (seed, salt).
        let obs = Obs::new();
        obs.tracer.attach_bus(
            shared.bus.clone(),
            &[
                ("job", AttrValue::from(job.id)),
                ("salt", AttrValue::from(spec.salt)),
                ("attempt", AttrValue::from(u64::from(attempts))),
            ],
        );
        // Injection site: the job fails at the serve boundary before the
        // workflow runs (classified transient, so the retry loop eats it).
        let outcome = match infera_faults::check(infera_faults::sites::SERVE_JOB) {
            Some(infera_faults::FaultMode::Panic) => panic!(
                "{}",
                infera_faults::injected_error(infera_faults::sites::SERVE_JOB)
            ),
            Some(_) => Err(InferaError::new(
                ErrorKind::Storage,
                infera_faults::injected_error(infera_faults::sites::SERVE_JOB),
            )),
            None => {
                let mut opts = AskOptions::new()
                    .semantic(semantic)
                    .seed(spec.salt)
                    .cancel_token(job.cancel.clone())
                    .obs(obs.clone());
                if let Some(timeout) = spec.timeout {
                    opts = opts.timeout(timeout);
                }
                shared.session.ask_opts(&spec.question, opts)
            }
        };
        // Failed attempts leave real work behind (chunks read, tokens
        // spent): absorb every attempt's metrics, not just the last one's.
        shared.global.absorb(&obs.metrics);
        match outcome {
            Ok(report) => {
                if injected_failure {
                    // An injected fault was survived via retry.
                    shared.metrics.inc(metric_names::FAULT_RECOVERED, 1);
                }
                let report = Arc::new(report);
                shared.cache.insert(key.clone(), report.clone());
                break (JobStatus::Done(report), obs);
            }
            Err(err) => {
                injected_failure |= err.to_string().contains(infera_faults::INJECTED_MARKER);
                let transient = is_transient(err.kind());
                if transient && attempts < policy.max_attempts {
                    shared.metrics.inc(metric_names::RETRY_ATTEMPTS, 1);
                    shared.bus.publish_job(
                        event_names::JOB_RETRIED,
                        &[
                            ("job", AttrValue::from(job.id)),
                            ("attempt", AttrValue::from(u64::from(attempts))),
                            ("error", AttrValue::from(err.to_string())),
                        ],
                    );
                    // During a drain the retry still runs — admitted jobs
                    // must complete — but the backoff sleep is skipped so
                    // shutdown stays prompt.
                    if !shared.shutting_down.load(Ordering::Relaxed) {
                        std::thread::sleep(policy.backoff(job.id, attempts));
                    }
                    continue;
                }
                if transient && attempts >= policy.max_attempts {
                    shared.metrics.inc(metric_names::RETRY_EXHAUSTED, 1);
                }
                break (JobStatus::Failed(err), obs);
            }
        }
    };
    let digest = match &status {
        JobStatus::Done(report) => report_digest(report),
        JobStatus::Failed(_) => 0,
    };
    let run_ms = picked_up.elapsed().as_millis() as u64;
    shared.metrics.observe(metric_names::RUN_MS, run_ms as f64);
    let make_entry = |outcome: FlightOutcome, error: Option<String>| FlightEntry {
        job_id: job.id,
        question: spec.question.clone(),
        salt: spec.salt,
        outcome,
        error,
        cache_hit: false,
        queue_ms,
        run_ms,
        digest,
        attempts,
        trace: obs.tracer.snapshot(),
    };
    match &status {
        JobStatus::Done(_) => {
            shared
                .flight
                .record_completed(run_ms, || make_entry(FlightOutcome::Completed, None));
            shared.bus.publish_job(
                event_names::JOB_COMPLETED,
                &[
                    ("job", AttrValue::from(job.id)),
                    ("run_ms", AttrValue::from(run_ms)),
                    ("digest", AttrValue::from(format!("{digest:016x}"))),
                    ("cache_hit", AttrValue::from(false)),
                ],
            );
        }
        JobStatus::Failed(err) => {
            let timed_out = err.kind() == ErrorKind::Timeout;
            let outcome = if timed_out {
                FlightOutcome::TimedOut
            } else {
                FlightOutcome::Failed
            };
            shared
                .flight
                .record_failure(make_entry(outcome, Some(err.to_string())));
            shared.bus.publish_job(
                if timed_out {
                    event_names::JOB_TIMED_OUT
                } else {
                    event_names::JOB_FAILED
                },
                &[
                    ("job", AttrValue::from(job.id)),
                    ("run_ms", AttrValue::from(run_ms)),
                    ("error", AttrValue::from(err.to_string())),
                ],
            );
        }
    }
    JobResult {
        id: job.id,
        question: spec.question.clone(),
        salt: spec.salt,
        status,
        digest,
        cache_hit: false,
        queue_ms,
        run_ms,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_hacc::EnsembleSpec;
    use infera_llm::BehaviorProfile;

    fn session(name: &str) -> Arc<InferA> {
        let base = std::env::temp_dir().join("infera_serve_sched_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(61), &base.join("ens")).unwrap();
        Arc::new(
            InferA::from_manifest(manifest)
                .work_dir(base.join("work"))
                .profile(BehaviorProfile::perfect())
                .build()
                .unwrap(),
        )
    }

    const Q: &str = "What is the maximum fof_halo_mass at timestep 624 in simulation 1?";

    #[test]
    fn jobs_complete_and_cache_repeats() {
        // One worker: the second identical job must run after the first
        // finished, guaranteeing a result-cache hit (with >1 workers the
        // two could race past the cache and both run — still correct,
        // just not a hit).
        let sched = Scheduler::new(
            session("complete"),
            ServeConfig::with_pool(1, 8),
        );
        let a = sched.submit(JobSpec::new(Q, 5)).unwrap();
        let b = sched.submit(JobSpec::new(Q, 5)).unwrap();
        assert_ne!(a.id(), b.id());
        // Handles deliver per-job, independent of completion order.
        let ra = a.wait();
        let rb = b.wait();
        assert!(a.is_finished() && b.is_finished());
        assert_eq!(ra.id, a.id());
        assert_eq!(rb.id, b.id());
        assert!(ra.report().is_some() && rb.report().is_some());
        assert_eq!(ra.digest, rb.digest, "same salt, same report");
        assert!(rb.cache_hit, "second identical job is served from cache");
        assert!(ra.attempts == 1 && rb.attempts == 1, "no retries needed");
        sched.shutdown();
    }

    #[test]
    fn streaming_submit_delivers_this_jobs_events_only() {
        let sched = Scheduler::new(
            session("streaming"),
            ServeConfig::with_pool(2, 8),
        );
        let other = sched.submit(JobSpec::new(Q, 11)).unwrap();
        let mut handle = sched
            .submit_streaming(JobSpec::new(Q, 12), 4096)
            .unwrap();
        let result = handle.wait();
        assert!(result.report().is_some());
        other.wait();
        let events = handle.take_events().expect("streaming submit has events");
        let got = events.drain();
        assert!(!got.is_empty(), "a completed job must have streamed events");
        assert!(
            got.iter().all(|ev| ev.job_id() == Some(handle.id())),
            "event stream is scoped to the submitted job"
        );
        // The stream opens at admission and ends with a terminal event.
        let names: Vec<&str> = got
            .iter()
            .filter_map(|ev| match &ev.kind {
                infera_obs::BusEventKind::Job { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names.first(), Some(&event_names::JOB_QUEUED));
        assert_eq!(names.last(), Some(&event_names::JOB_COMPLETED));
        sched.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_reason() {
        // No workers can't be configured (min 1), so stuff the queue
        // faster than one worker drains it: capacity 1 and a pile of
        // submissions must produce at least one rejection.
        let sched = Scheduler::new(
            session("backpressure"),
            ServeConfig::with_pool(1, 1),
        );
        let mut rejected = 0;
        for salt in 0..32 {
            if let Err(reason) = sched.submit(JobSpec::new(Q, salt)) {
                assert!(matches!(reason, RejectReason::QueueFull { capacity: 1 }));
                rejected += 1;
            }
        }
        assert!(rejected > 0, "bounded queue must push back");
        assert_eq!(
            sched.metrics().counter(metric_names::JOBS_REJECTED),
            rejected
        );
        let results = sched.shutdown();
        assert_eq!(32 - rejected as usize, results.len());
    }

    #[test]
    fn cancel_queued_job() {
        let sched = Scheduler::new(
            session("cancel"),
            ServeConfig::with_pool(1, 8),
        );
        // Queue several; cancel the last before a worker reaches it.
        let handles: Vec<JobHandle> = (0..4)
            .map(|salt| sched.submit(JobSpec::new(Q, salt)).unwrap())
            .collect();
        let last = handles.last().unwrap();
        last.cancel();
        let canceled = last.wait();
        let results = sched.shutdown();
        // Either a worker saw the token before starting (Failed) or the
        // race lost and it ran to completion; both are legal, but the
        // common path on one worker is cancellation.
        if let JobStatus::Failed(err) = &canceled.status {
            assert_eq!(err.kind(), infera_core::ErrorKind::Canceled);
        }
        assert_eq!(results.len(), 4, "canceled jobs still produce results");
    }

    #[test]
    fn unknown_cancel_is_false() {
        let sched = Scheduler::new(session("unknown"), ServeConfig::default());
        assert!(!sched.cancel(999));
        sched.shutdown();
    }

    #[test]
    fn begin_shutdown_rejects_new_work_and_drains_admitted() {
        let sched = Scheduler::new(
            session("graceful"),
            ServeConfig::with_pool(1, 8),
        );
        let a = sched.submit(JobSpec::new(Q, 1)).unwrap();
        let b = sched.submit(JobSpec::new(Q, 2)).unwrap();
        sched.begin_shutdown();
        assert!(sched.is_shutting_down());
        assert_eq!(
            sched.submit(JobSpec::new(Q, 3)).err(),
            Some(RejectReason::ShuttingDown),
            "post-shutdown submissions are rejected, not queued"
        );
        let results = sched.shutdown();
        let ids: Vec<u64> = results.iter().map(|r| r.id).collect();
        assert_eq!(ids, [a.id(), b.id()], "admitted jobs drain to completion");
        assert!(results.iter().all(|r| r.report().is_some()));
        assert!(
            a.is_finished() && b.is_finished(),
            "handles observe drained completions too"
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_polling_shims_still_deliver() {
        let sched = Scheduler::new(session("shims"), ServeConfig::with_pool(1, 8));
        let id = sched.submit_spec(JobSpec::new(Q, 1)).unwrap();
        let result = sched.next_result().expect("legacy channel delivers");
        assert_eq!(result.id, id);
        assert!(sched.try_next_result().is_none());
        sched.shutdown();
    }
}
