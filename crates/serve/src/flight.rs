//! The slow-query flight recorder.
//!
//! Dashboards answer "how slow is the server"; the flight recorder
//! answers "what exactly did the slow one do". It is a bounded ring
//! that retains the **full span trace** of (a) the N slowest completed
//! jobs and (b) the most recent M failed/timed-out jobs, so a tail-p99
//! question or a 2 a.m. timeout can be dissected after the fact with
//! `infera stats --flight` — no reproduction run needed.
//!
//! Retention policy:
//!
//! * slowest ring: kept sorted by `run_ms` descending, capacity
//!   `slow_capacity`. A finished job enters only if the ring has room
//!   or it beats the current slowest cutoff; the entry it displaces is
//!   dropped (and counted). Trace snapshotting is gated on admission,
//!   so fast jobs never pay for a snapshot.
//! * failure ring: every failed/timed-out job enters, capacity
//!   `failure_capacity`, oldest evicted first. Failures are always
//!   worth keeping — they are the jobs with no `RunReport` to inspect.
//!
//! The recorder is `Clone` (shared handle) and all operations are
//! O(capacity) under one mutex — capacities are small by design.

use infera_obs::TraceSnapshot;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// How a recorded job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightOutcome {
    Completed,
    Failed,
    TimedOut,
}

impl FlightOutcome {
    pub fn label(&self) -> &'static str {
        match self {
            FlightOutcome::Completed => "completed",
            FlightOutcome::Failed => "failed",
            FlightOutcome::TimedOut => "timed_out",
        }
    }
}

/// One retained job: identity, timing, and the complete span trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightEntry {
    pub job_id: u64,
    pub question: String,
    pub salt: u64,
    pub outcome: FlightOutcome,
    /// The error message, for failed/timed-out jobs.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    pub cache_hit: bool,
    pub queue_ms: u64,
    pub run_ms: u64,
    /// Report digest (0 for failures).
    pub digest: u64,
    /// Workflow executions the job took (>1 means transient failures
    /// were retried before this outcome; 0 in artifacts recorded before
    /// attempt tracking existed).
    #[serde(default)]
    pub attempts: u32,
    pub trace: TraceSnapshot,
}

/// Owned, serializable view of the recorder's state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlightSnapshot {
    /// Slowest completed jobs, slowest first.
    pub slowest: Vec<FlightEntry>,
    /// Failed/timed-out jobs, oldest first.
    pub failures: Vec<FlightEntry>,
    /// Jobs offered to the recorder (admitted or not).
    pub recorded: u64,
    /// Entries evicted by capacity (displaced slow entries + aged-out
    /// failures). Offered-but-never-admitted fast jobs don't count.
    pub dropped: u64,
    pub slow_capacity: usize,
    pub failure_capacity: usize,
}

impl FlightSnapshot {
    /// Every retained entry, failures first (they are the action items).
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        self.failures.iter().chain(self.slowest.iter())
    }
}

struct FlightInner {
    slowest: Vec<FlightEntry>,
    failures: VecDeque<FlightEntry>,
    recorded: u64,
    dropped: u64,
}

/// Shared handle to the recorder. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct FlightRecorder {
    slow_capacity: usize,
    failure_capacity: usize,
    inner: Arc<Mutex<FlightInner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FlightRecorder")
            .field("slowest", &inner.slowest.len())
            .field("failures", &inner.failures.len())
            .field("recorded", &inner.recorded)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    pub fn new(slow_capacity: usize, failure_capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slow_capacity,
            failure_capacity,
            inner: Arc::new(Mutex::new(FlightInner {
                slowest: Vec::new(),
                failures: VecDeque::new(),
                recorded: 0,
                dropped: 0,
            })),
        }
    }

    /// Offer a *completed* job. `make` builds the entry (snapshotting
    /// the trace) and is only called if the job is slow enough to enter
    /// the ring — the common fast path costs one lock and a compare.
    pub fn record_completed(&self, run_ms: u64, make: impl FnOnce() -> FlightEntry) {
        let mut inner = self.inner.lock();
        inner.recorded += 1;
        if self.slow_capacity == 0 {
            return;
        }
        let full = inner.slowest.len() >= self.slow_capacity;
        if full && run_ms <= inner.slowest.last().map_or(0, |e| e.run_ms) {
            return; // not slow enough for a full ring
        }
        let entry = make();
        let at = inner
            .slowest
            .partition_point(|e| e.run_ms >= entry.run_ms);
        inner.slowest.insert(at, entry);
        if inner.slowest.len() > self.slow_capacity {
            inner.slowest.pop();
            inner.dropped += 1;
        }
    }

    /// Record a failed/timed-out job. Always admitted; oldest failure
    /// evicted at capacity.
    pub fn record_failure(&self, entry: FlightEntry) {
        let mut inner = self.inner.lock();
        inner.recorded += 1;
        if self.failure_capacity == 0 {
            return;
        }
        inner.failures.push_back(entry);
        if inner.failures.len() > self.failure_capacity {
            inner.failures.pop_front();
            inner.dropped += 1;
        }
    }

    pub fn snapshot(&self) -> FlightSnapshot {
        let inner = self.inner.lock();
        FlightSnapshot {
            slowest: inner.slowest.clone(),
            failures: inner.failures.iter().cloned().collect(),
            recorded: inner.recorded,
            dropped: inner.dropped,
            slow_capacity: self.slow_capacity,
            failure_capacity: self.failure_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(job_id: u64, run_ms: u64, outcome: FlightOutcome) -> FlightEntry {
        FlightEntry {
            job_id,
            question: format!("q{job_id}"),
            salt: job_id,
            outcome,
            error: matches!(outcome, FlightOutcome::Failed | FlightOutcome::TimedOut)
                .then(|| "boom".to_string()),
            cache_hit: false,
            queue_ms: 1,
            run_ms,
            digest: 0,
            attempts: 1,
            trace: TraceSnapshot {
                spans: Vec::new(),
                orphan_events: Vec::new(),
            },
        }
    }

    #[test]
    fn slowest_ring_keeps_top_n_sorted() {
        let rec = FlightRecorder::new(3, 4);
        for (id, ms) in [(1, 50), (2, 10), (3, 90), (4, 30), (5, 70)] {
            rec.record_completed(ms, || entry(id, ms, FlightOutcome::Completed));
        }
        let snap = rec.snapshot();
        let kept: Vec<(u64, u64)> = snap.slowest.iter().map(|e| (e.job_id, e.run_ms)).collect();
        assert_eq!(kept, [(3, 90), (5, 70), (1, 50)]);
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.dropped, 2, "job 4 displaced job 2, then job 5 displaced job 4");
    }

    #[test]
    fn fast_jobs_never_build_an_entry_once_full() {
        let rec = FlightRecorder::new(1, 1);
        rec.record_completed(100, || entry(1, 100, FlightOutcome::Completed));
        let mut built = false;
        rec.record_completed(5, || {
            built = true;
            entry(2, 5, FlightOutcome::Completed)
        });
        assert!(!built, "closure must not run for a too-fast job");
        assert_eq!(rec.snapshot().slowest.len(), 1);
    }

    #[test]
    fn failure_ring_evicts_oldest() {
        let rec = FlightRecorder::new(2, 2);
        for id in 1..=3 {
            rec.record_failure(entry(id, 10, FlightOutcome::Failed));
        }
        let snap = rec.snapshot();
        let kept: Vec<u64> = snap.failures.iter().map(|e| e.job_id).collect();
        assert_eq!(kept, [2, 3]);
        assert_eq!(snap.dropped, 1);
        // Failures lead the combined iteration.
        assert_eq!(snap.entries().next().unwrap().job_id, 2);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let rec = FlightRecorder::new(2, 2);
        rec.record_completed(40, || entry(1, 40, FlightOutcome::Completed));
        rec.record_failure(entry(2, 15, FlightOutcome::TimedOut));
        let snap = rec.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: FlightSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.slowest.len(), 1);
        assert_eq!(back.failures.len(), 1);
        assert_eq!(back.failures[0].outcome, FlightOutcome::TimedOut);
        assert_eq!(back.failures[0].error.as_deref(), Some("boom"));
    }
}
