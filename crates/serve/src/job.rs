//! Job descriptions and results flowing through the scheduler.

use infera_agents::RunReport;
use infera_core::InferaError;
use infera_llm::SemanticLevel;
use std::sync::Arc;
use std::time::Duration;

/// One question submitted to the serving layer.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub question: String,
    /// Explicit semantic level; `None` estimates it from the wording.
    pub semantic: Option<SemanticLevel>,
    /// Run salt: jobs with the same `(session seed, salt)` replay
    /// identically, and the salt is part of the result-cache key.
    pub salt: u64,
    /// Per-job deadline; overrides the session's default `job_timeout`.
    pub timeout: Option<Duration>,
}

impl JobSpec {
    pub fn new(question: impl Into<String>, salt: u64) -> JobSpec {
        JobSpec {
            question: question.into(),
            semantic: None,
            salt,
            timeout: None,
        }
    }

    pub fn semantic(mut self, level: SemanticLevel) -> JobSpec {
        self.semantic = Some(level);
        self
    }

    pub fn timeout(mut self, timeout: Duration) -> JobSpec {
        self.timeout = Some(timeout);
        self
    }
}

/// Why the scheduler refused a submission. Returned to the caller
/// immediately (admission control) — submissions never block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded job queue is at capacity; retry after a completion.
    QueueFull { capacity: usize },
    /// A failure class's circuit is open: recent jobs kept failing the
    /// same way, so the scheduler sheds load until the cooldown admits
    /// a probe. `class` is the [`infera_core::ErrorKind`] label.
    CircuitOpen { class: String },
    /// The scheduler has begun shutting down.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity})")
            }
            RejectReason::CircuitOpen { class } => {
                write!(f, "circuit open for failure class '{class}'")
            }
            RejectReason::ShuttingDown => write!(f, "scheduler shutting down"),
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The workflow ran (or was answered from the result cache).
    Done(Arc<RunReport>),
    /// The workflow failed, timed out, or was canceled.
    Failed(InferaError),
}

/// A finished job, delivered in completion order.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Scheduler-assigned id (submission order, starting at 1).
    pub id: u64,
    pub question: String,
    pub salt: u64,
    pub status: JobStatus,
    /// Digest of the report's deterministic fields (0 on failure); equal
    /// digests mean bit-identical analytical output.
    pub digest: u64,
    /// Answered from the result cache without running the workflow.
    pub cache_hit: bool,
    /// Time spent queued before a worker picked the job up (ms).
    pub queue_ms: u64,
    /// Time on the worker, admission to completion (ms).
    pub run_ms: u64,
    /// Workflow executions this job took (>1 means transient failures
    /// were retried; the digest is identical regardless).
    pub attempts: u32,
}

impl JobResult {
    pub fn report(&self) -> Option<&Arc<RunReport>> {
        match &self.status {
            JobStatus::Done(report) => Some(report),
            JobStatus::Failed(_) => None,
        }
    }

    /// One-line JSON summary (the `infera serve` output format).
    pub fn to_summary_json(&self) -> String {
        let v = match &self.status {
            JobStatus::Done(report) => serde_json::json!({
                "id": self.id,
                "question": self.question,
                "salt": self.salt,
                "digest": format!("{:016x}", self.digest),
                "cache_hit": self.cache_hit,
                "queue_ms": self.queue_ms,
                "run_ms": self.run_ms,
                "attempts": self.attempts,
                "ok": true,
                "completed": report.completed,
                "redos": report.redos,
                "tokens": report.tokens,
                "result_rows": report.result.as_ref().map_or(0, |f| f.n_rows()),
                "visualizations": report.visualizations.len(),
            }),
            JobStatus::Failed(err) => serde_json::json!({
                "id": self.id,
                "question": self.question,
                "salt": self.salt,
                "digest": format!("{:016x}", self.digest),
                "cache_hit": self.cache_hit,
                "queue_ms": self.queue_ms,
                "run_ms": self.run_ms,
                "attempts": self.attempts,
                "ok": false,
                "error_kind": err.kind().label(),
                "error": err.to_string(),
            }),
        };
        serde_json::to_string(&v).unwrap_or_default()
    }
}
