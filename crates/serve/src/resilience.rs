//! Serve-layer resilience: bounded retry with deterministic backoff,
//! transient-vs-permanent failure classification, and a per-failure-class
//! circuit breaker.
//!
//! The retry policy only replays **infrastructure** failures
//! ([`ErrorKind::Storage`] / [`ErrorKind::Io`]). Everything the workflow
//! itself produced — revision-budget exhaustion, cancellation, corrupt
//! (quarantined) chunks — replays identically on the same `(seed, salt)`
//! and is therefore never retried. Because a retried run re-executes the
//! whole workflow from the same seed, a retry that succeeds yields a
//! **bit-identical** report digest; the chaos suite asserts this.
//!
//! Backoff is deterministic: the jitter is derived from `(job_id,
//! attempt)` through splitmix64, so a replayed schedule sleeps the same
//! milliseconds — no wall-clock entropy leaks into test traces.
//!
//! The circuit breaker is keyed by failure class ([`ErrorKind::label`]).
//! Each class counts **final** job outcomes only (a retry that recovers
//! never trips it); after `threshold` consecutive failures the class
//! opens and the scheduler sheds load at admission with
//! `RejectReason::CircuitOpen` until `cooldown` elapses, then admits a
//! half-open probe whose outcome closes or re-opens the class.

use infera_core::ErrorKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Whether a failure of this kind is worth replaying. Only
/// infrastructure faults qualify: they are external to the run's
/// deterministic RNG, so the retry can genuinely see a different world.
pub fn is_transient(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Storage | ErrorKind::Io)
}

/// Bounded-retry policy for transient job failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions per job (1 = never retry).
    pub max_attempts: u32,
    /// First backoff delay; doubles per attempt.
    pub base_ms: u64,
    /// Backoff ceiling.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 25,
            max_ms: 250,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Delay before re-running `job_id` after failed attempt number
    /// `attempt` (1-based). Exponential, capped at `max_ms`, with
    /// deterministic jitter in `[exp/2, exp]` keyed by `(job_id, attempt)`.
    pub fn backoff_ms(&self, job_id: u64, attempt: u32) -> u64 {
        let shift = u32::min(attempt.saturating_sub(1), 20);
        let exp = self
            .base_ms
            .saturating_mul(1u64 << shift)
            .clamp(1, self.max_ms.max(1));
        let span = exp - exp / 2 + 1;
        let r = splitmix64(job_id ^ (u64::from(attempt) << 32));
        exp / 2 + r % span
    }

    pub fn backoff(&self, job_id: u64, attempt: u32) -> Duration {
        Duration::from_millis(self.backoff_ms(job_id, attempt))
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive final failures of one class that open its circuit.
    pub threshold: u32,
    /// How long an open class rejects before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 8,
            cooldown: Duration::from_millis(500),
        }
    }
}

#[derive(Debug, Default)]
struct ClassState {
    consecutive: u32,
    /// `Some(when)` while open; admission rejects until cooldown elapses.
    opened_at: Option<Instant>,
    /// Cooldown elapsed: the next final outcome closes or re-opens.
    half_open: bool,
}

/// Per-failure-class circuit breaker (see module docs for the state
/// machine). Cheap when healthy: admission scans a map that only has
/// entries for classes that have failed at least once.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    classes: Mutex<HashMap<&'static str, ClassState>>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            classes: Mutex::new(HashMap::new()),
        }
    }

    /// Admission check. `Err(class)` names the open circuit rejecting
    /// this submission; an open class whose cooldown has elapsed flips
    /// to half-open and admits (the probe).
    pub fn admit(&self) -> Result<(), &'static str> {
        let mut classes = self.classes.lock();
        for (class, state) in classes.iter_mut() {
            if let Some(at) = state.opened_at {
                if at.elapsed() >= self.config.cooldown {
                    state.opened_at = None;
                    state.half_open = true;
                } else {
                    return Err(class);
                }
            }
        }
        Ok(())
    }

    /// A job reached a final successful outcome: the system is healthy,
    /// so every class's failure streak (and any half-open probe) resets.
    pub fn record_success(&self) {
        self.classes.lock().clear();
    }

    /// A job reached a final failed outcome of `class`. Returns `true`
    /// when this failure newly opened (or re-opened) the circuit.
    pub fn record_failure(&self, class: &'static str) -> bool {
        let mut classes = self.classes.lock();
        let state = classes.entry(class).or_default();
        state.consecutive += 1;
        let should_open = state.opened_at.is_none()
            && (state.half_open || state.consecutive >= self.config.threshold);
        if should_open {
            state.opened_at = Some(Instant::now());
            state.half_open = false;
        }
        should_open
    }

    /// Classes currently open (cooldown not yet elapsed).
    pub fn open_classes(&self) -> Vec<&'static str> {
        let classes = self.classes.lock();
        classes
            .iter()
            .filter(|(_, s)| {
                s.opened_at
                    .is_some_and(|at| at.elapsed() < self.config.cooldown)
            })
            .map(|(c, _)| *c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_matches_retry_semantics() {
        assert!(is_transient(ErrorKind::Storage));
        assert!(is_transient(ErrorKind::Io));
        // Deterministic failures replay identically: never retried.
        assert!(!is_transient(ErrorKind::CorruptChunk));
        assert!(!is_transient(ErrorKind::RevisionBudget));
        assert!(!is_transient(ErrorKind::Canceled));
        assert!(!is_transient(ErrorKind::Timeout));
        assert!(!is_transient(ErrorKind::Internal));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 1..=6 {
            let exp = (policy.base_ms << (attempt - 1).min(20)).min(policy.max_ms);
            for job in [1u64, 7, 99] {
                let a = policy.backoff_ms(job, attempt);
                let b = policy.backoff_ms(job, attempt);
                assert_eq!(a, b, "same (job, attempt) must give the same delay");
                assert!(a >= exp / 2 && a <= exp, "delay {a} outside [{}, {exp}]", exp / 2);
            }
        }
        // Different jobs jitter apart (not a fixed schedule).
        let delays: std::collections::HashSet<u64> =
            (0..32).map(|j| policy.backoff_ms(j, 3)).collect();
        assert!(delays.len() > 1, "jitter must vary across jobs");
    }

    #[test]
    fn breaker_opens_after_threshold_and_success_closes() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(60),
        });
        assert!(breaker.admit().is_ok());
        assert!(!breaker.record_failure("storage"));
        assert!(!breaker.record_failure("storage"));
        assert!(breaker.record_failure("storage"), "third consecutive failure opens");
        assert_eq!(breaker.admit(), Err("storage"));
        assert_eq!(breaker.open_classes(), ["storage"]);
        // Success resets everything (a later failure starts a new streak).
        breaker.record_success();
        assert!(breaker.admit().is_ok());
        assert!(!breaker.record_failure("storage"));
    }

    #[test]
    fn classes_are_independent() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_secs(60),
        });
        assert!(!breaker.record_failure("storage"));
        assert!(!breaker.record_failure("timeout"));
        // Neither class reached its own threshold.
        assert!(breaker.admit().is_ok());
        assert!(breaker.record_failure("timeout"));
        assert_eq!(breaker.admit(), Err("timeout"));
    }

    #[test]
    fn cooldown_admits_probe_and_probe_failure_reopens() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown: Duration::ZERO,
        });
        assert!(breaker.record_failure("storage"));
        // Zero cooldown: already half-open, the probe is admitted.
        assert!(breaker.admit().is_ok());
        // The probe failing re-opens immediately (no threshold wait).
        assert!(breaker.record_failure("storage"));
        // And a successful probe closes the class: the failure streak
        // restarts from zero (threshold 1, so the next failure opens a
        // brand-new streak rather than re-opening a half-open probe).
        assert!(breaker.admit().is_ok());
        breaker.record_success();
        assert!(breaker.admit().is_ok());
        assert!(breaker.record_failure("storage"), "fresh streak hits threshold 1");
    }
}
