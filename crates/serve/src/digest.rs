//! Deterministic report digests.
//!
//! A [`RunReport`] mixes analytical output (the result frame, token
//! accounting, quality flags) with measurement (wall-clock times,
//! timing histograms). Only the former is reproducible across
//! schedulers, so the digest covers exactly the fields that must be
//! bit-identical between a serial run and any concurrent run with the
//! same `(session seed, salt)`.

use infera_agents::RunReport;

/// FNV-1a, the workspace's content-hash idiom.
fn fnv64(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn feed_u64(h: &mut u64, v: u64) {
    fnv64(h, &v.to_le_bytes());
}

/// Digest the deterministic fields of a report.
///
/// Excluded by design: `wall_ms`, `stage_costs` (wall times), `metrics`
/// (timing histograms), and `trace` — all measure the machine, not the
/// analysis.
pub fn report_digest(report: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    fnv64(&mut h, report.question.as_bytes());
    feed_u64(&mut h, report.plan_steps as u64);
    feed_u64(&mut h, u64::from(report.completed));
    feed_u64(&mut h, report.completion_fraction.to_bits());
    feed_u64(&mut h, u64::from(report.redos));
    feed_u64(&mut h, u64::from(report.satisfactory_data));
    feed_u64(&mut h, u64::from(report.satisfactory_viz));
    feed_u64(&mut h, report.tokens);
    feed_u64(&mut h, report.llm_latency_ms);
    feed_u64(&mut h, report.storage_bytes);
    feed_u64(&mut h, report.storage_logical_bytes);
    feed_u64(&mut h, u64::from(report.flags.wrong_tool));
    feed_u64(&mut h, u64::from(report.flags.bad_analysis));
    feed_u64(&mut h, u64::from(report.flags.bad_viz));
    match &report.result {
        Some(frame) => fnv64(&mut h, frame.to_csv_string().as_bytes()),
        None => feed_u64(&mut h, 0),
    }
    for viz in &report.visualizations {
        fnv64(&mut h, viz.0.as_bytes());
    }
    fnv64(&mut h, report.summary.as_bytes());
    h
}
