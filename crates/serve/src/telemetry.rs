//! Serve-layer telemetry: job lifecycle event names, the one-line stats
//! renderer, and on-disk observability artifacts.
//!
//! The scheduler publishes one [`event_names`] event per job state
//! transition on its [`EventBus`] (kind `Job`), carrying `job`, `salt`,
//! and transition-specific attributes. `infera serve --events`
//! subscribes and prints them; the future network server will forward
//! them per-client.
//!
//! Artifacts are written under `<work>/obs/`:
//!
//! | file           | content                                        |
//! |----------------|------------------------------------------------|
//! | `metrics.prom` | Prometheus text exposition of the global state |
//! | `metrics.json` | [`GlobalSnapshot`] (counters/gauges/histograms)|
//! | `flight.json`  | [`FlightSnapshot`] (slow + failed job traces)  |
//!
//! `infera stats` reads them back with [`load_observability`], so the
//! server process and the inspection command need no live connection.

use crate::flight::{FlightRecorder, FlightSnapshot};
use infera_core::{InferaError, InferaResult};
use infera_obs::{EventBus, GlobalMetrics, GlobalSnapshot};
use std::fmt::Write as _;
use std::path::Path;

/// Job lifecycle event names published on the scheduler's bus.
pub mod event_names {
    /// Admitted to the queue (`job`, `salt`).
    pub const JOB_QUEUED: &str = "job_queued";
    /// Refused at admission (`reason`).
    pub const JOB_REJECTED: &str = "job_rejected";
    /// Picked up by a worker (`job`, `salt`, `question`, `queue_ms`).
    pub const JOB_STARTED: &str = "job_started";
    /// A transient failure is being replayed (`job`, `attempt`, `error`).
    pub const JOB_RETRIED: &str = "job_retried";
    /// Finished with a report (`job`, `run_ms`, `digest`, `cache_hit`).
    pub const JOB_COMPLETED: &str = "job_completed";
    /// Finished with an error (`job`, `run_ms`, `error`).
    pub const JOB_FAILED: &str = "job_failed";
    /// The failure was a deadline expiry (`job`, `run_ms`).
    pub const JOB_TIMED_OUT: &str = "job_timed_out";
}

/// Directory (under a work dir) holding the observability artifacts.
pub const OBS_DIR: &str = "obs";

/// Mirror the bus's publish/drop totals into the global registry under
/// their declared metric names, so scrapes and snapshots carry them.
pub fn sync_bus_counters(global: &GlobalMetrics, bus: &EventBus) {
    let reg = global.registry();
    reg.set_counter(
        infera_obs::metric_names::OBS_EVENTS_PUBLISHED,
        bus.events_published(),
    );
    reg.set_counter(
        infera_obs::metric_names::OBS_EVENTS_DROPPED,
        bus.events_dropped(),
    );
}

/// Mirror the process-wide injected-fault total (kept by the
/// `infera-faults` plan itself) into the registry under `fault.injected`,
/// so chaos runs can reconcile injections against recoveries from one
/// snapshot.
pub fn sync_fault_counters(global: &GlobalMetrics) {
    global.registry().set_counter(
        infera_obs::metric_names::FAULT_INJECTED,
        infera_faults::total_injected(),
    );
}

/// One line of operational state, for `--stats-every` ticks and the
/// serve shutdown summary.
pub fn render_stats_line(global: &GlobalMetrics, bus: &EventBus) -> String {
    use infera_obs::metric_names as m;
    let reg = global.registry();
    let mut line = String::new();
    let _ = write!(
        line,
        "jobs: {} done / {} failed / {} rejected | queue: {} deep",
        reg.counter(m::SERVE_JOBS_COMPLETED),
        reg.counter(m::SERVE_JOBS_FAILED),
        reg.counter(m::SERVE_JOBS_REJECTED),
        reg.gauge(m::SERVE_QUEUE_DEPTH).unwrap_or(0.0) as u64,
    );
    if let Some(h) = reg.histogram(m::SERVE_RUN_MS) {
        let _ = write!(line, " | run p50/p99: {:.0}/{:.0} ms", h.p50, h.p99);
    }
    if let Some(h) = reg.histogram(m::SERVE_QUEUE_WAIT_MS) {
        let _ = write!(line, " | wait p50: {:.0} ms", h.p50);
    }
    let _ = write!(
        line,
        " | cache: {} hits | bus: {} sent / {} dropped | runs merged: {}",
        reg.counter(m::SERVE_CACHE_HITS),
        bus.events_published(),
        bus.events_dropped(),
        global.runs_merged(),
    );
    // Resilience counters only earn line space once something happened.
    let injected = reg.counter(m::FAULT_INJECTED);
    let retries = reg.counter(m::RETRY_ATTEMPTS);
    let opened = reg.counter(m::BREAKER_OPENED);
    let lost = reg.counter(m::SERVE_WORKERS_LOST) + reg.counter(m::SERVE_WORKER_PANICS);
    if injected + retries + opened + lost > 0 {
        let _ = write!(
            line,
            " | faults: {injected} injected / {} recovered | retries: {retries} ({} exhausted) \
             | breaker: {opened} opened / {} rejected | workers: {} lost / {} panics",
            reg.counter(m::FAULT_RECOVERED),
            reg.counter(m::RETRY_EXHAUSTED),
            reg.counter(m::BREAKER_REJECTED),
            reg.counter(m::SERVE_WORKERS_LOST),
            reg.counter(m::SERVE_WORKER_PANICS),
        );
    }
    line
}

/// Everything `infera stats` reads back from a work dir.
#[derive(Debug, Clone)]
pub struct ObservabilityArtifacts {
    pub global: GlobalSnapshot,
    pub flight: FlightSnapshot,
    pub prometheus: String,
}

/// Write `metrics.prom`, `metrics.json`, and `flight.json` under
/// `<work>/obs/`. Returns the artifact directory.
pub fn persist_observability(
    work_dir: &Path,
    global: &GlobalMetrics,
    bus: &EventBus,
    flight: &FlightRecorder,
) -> InferaResult<std::path::PathBuf> {
    sync_bus_counters(global, bus);
    sync_fault_counters(global);
    let dir = work_dir.join(OBS_DIR);
    std::fs::create_dir_all(&dir)
        .map_err(|e| InferaError::internal(format!("create {}: {e}", dir.display())))?;
    let write = |name: &str, bytes: &[u8]| -> InferaResult<()> {
        std::fs::write(dir.join(name), bytes)
            .map_err(|e| InferaError::internal(format!("write {name}: {e}")))
    };
    write("metrics.prom", global.render_prometheus().as_bytes())?;
    let global_json = serde_json::to_string_pretty(&global.snapshot())
        .map_err(|e| InferaError::internal(format!("serialize metrics.json: {e}")))?;
    write("metrics.json", global_json.as_bytes())?;
    let flight_json = serde_json::to_string_pretty(&flight.snapshot())
        .map_err(|e| InferaError::internal(format!("serialize flight.json: {e}")))?;
    write("flight.json", flight_json.as_bytes())?;
    Ok(dir)
}

/// Read the artifacts back from a work dir (either the work dir itself
/// or its `obs/` subdirectory may be passed).
pub fn load_observability(dir: &Path) -> InferaResult<ObservabilityArtifacts> {
    let dir = if dir.ends_with(OBS_DIR) {
        dir.to_path_buf()
    } else {
        dir.join(OBS_DIR)
    };
    let read = |name: &str| -> InferaResult<String> {
        std::fs::read_to_string(dir.join(name)).map_err(|e| {
            InferaError::invalid_input(format!(
                "no observability artifacts at {} ({name}: {e}); \
                 run `infera serve` over this work dir first",
                dir.display()
            ))
        })
    };
    let global: GlobalSnapshot = serde_json::from_str(&read("metrics.json")?)
        .map_err(|e| InferaError::internal(format!("parse metrics.json: {e}")))?;
    let flight: FlightSnapshot = serde_json::from_str(&read("flight.json")?)
        .map_err(|e| InferaError::internal(format!("parse flight.json: {e}")))?;
    Ok(ObservabilityArtifacts {
        global,
        flight,
        prometheus: read("metrics.prom")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_obs::metric_names as m;

    #[test]
    fn stats_line_reads_global_state() {
        let global = GlobalMetrics::new();
        let bus = EventBus::new();
        global.registry().inc(m::SERVE_JOBS_COMPLETED, 7);
        global.registry().set_gauge(m::SERVE_QUEUE_DEPTH, 2.0);
        global.registry().observe(m::SERVE_RUN_MS, 120.0);
        let line = render_stats_line(&global, &bus);
        assert!(line.contains("7 done"), "{line}");
        assert!(line.contains("queue: 2 deep"), "{line}");
        assert!(line.contains("run p50/p99"), "{line}");
        assert!(!line.contains('\n'));
        // A quiet system doesn't advertise its resilience machinery.
        assert!(!line.contains("breaker"), "{line}");
    }

    #[test]
    fn stats_line_grows_a_resilience_segment_when_faults_happen() {
        let global = GlobalMetrics::new();
        let bus = EventBus::new();
        let reg = global.registry();
        reg.set_counter(m::FAULT_INJECTED, 4);
        reg.inc(m::FAULT_RECOVERED, 3);
        reg.inc(m::RETRY_ATTEMPTS, 2);
        reg.inc(m::RETRY_EXHAUSTED, 1);
        reg.inc(m::BREAKER_OPENED, 1);
        reg.inc(m::BREAKER_REJECTED, 5);
        reg.inc(m::SERVE_WORKERS_LOST, 1);
        reg.inc(m::SERVE_WORKER_PANICS, 2);
        let line = render_stats_line(&global, &bus);
        assert!(line.contains("faults: 4 injected / 3 recovered"), "{line}");
        assert!(line.contains("retries: 2 (1 exhausted)"), "{line}");
        assert!(line.contains("breaker: 1 opened / 5 rejected"), "{line}");
        assert!(line.contains("workers: 1 lost / 2 panics"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn persist_and_load_roundtrip() {
        let work = std::env::temp_dir().join("infera_serve_telemetry_tests/roundtrip");
        std::fs::remove_dir_all(&work).ok();
        std::fs::create_dir_all(&work).unwrap();
        let global = GlobalMetrics::new();
        global.registry().inc(m::SERVE_JOBS_COMPLETED, 3);
        let bus = EventBus::new();
        let sub = bus.subscribe(1);
        bus.publish_job(event_names::JOB_QUEUED, &[]);
        bus.publish_job(event_names::JOB_QUEUED, &[]); // dropped: full
        drop(sub);
        let flight = FlightRecorder::new(2, 2);
        let dir = persist_observability(&work, &global, &bus, &flight).unwrap();
        assert!(dir.join("metrics.prom").is_file());
        let arts = load_observability(&work).unwrap();
        assert_eq!(
            arts.global.metrics.counters.get(m::SERVE_JOBS_COMPLETED),
            Some(&3)
        );
        // Bus totals were mirrored into the registry before writing.
        assert_eq!(
            arts.global.metrics.counters.get(m::OBS_EVENTS_PUBLISHED),
            Some(&2)
        );
        assert_eq!(
            arts.global.metrics.counters.get(m::OBS_EVENTS_DROPPED),
            Some(&1)
        );
        assert!(arts.prometheus.contains("infera_serve_jobs_completed 3"));
        assert_eq!(arts.flight.recorded, 0);
    }

    #[test]
    fn load_from_missing_dir_is_invalid_input() {
        let missing = std::env::temp_dir().join("infera_serve_telemetry_tests/nope");
        std::fs::remove_dir_all(&missing).ok();
        let err = load_observability(&missing).unwrap_err();
        assert!(err.to_string().contains("no observability artifacts"));
    }
}
