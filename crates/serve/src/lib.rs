//! # infera-serve
//!
//! The concurrent serving layer: many `ask` sessions over **one**
//! ensemble, scheduled onto a bounded worker pool.
//!
//! The paper runs InferA as a single interactive session; serving an
//! ensemble to a group (a simulation campaign's analysts, a dashboard,
//! a batch of scripted questions) needs the same workflow behind a
//! queue. This crate adds that layer without touching run semantics:
//!
//! * [`Scheduler`] — an admission-controlled job queue feeding N worker
//!   threads, each running full two-stage workflows against a shared
//!   [`infera_core::InferA`] session. Full queues reject new jobs with
//!   a reason ([`RejectReason`]) instead of blocking the caller;
//! * [`ResultCache`] — finished [`RunReport`]s keyed by `(question,
//!   ensemble fingerprint, seed, semantic level)`, so repeated
//!   questions are answered without re-running the workflow. The cache
//!   invalidates itself when the ensemble fingerprint changes;
//! * per-job deadlines and caller-held cancellation via
//!   [`infera_agents::CancelToken`];
//! * [`bench`] — the `infera bench-serve` harness: the 20-question
//!   evaluation set at several worker counts, with a bit-identical
//!   concurrent-vs-serial check over [`digest::report_digest`];
//! * [`net`] — the network front end: a line-delimited JSON server
//!   (versioned wire protocol, [`net::protocol`]) with per-client
//!   streaming of job progress events, graceful drain, a blocking
//!   client, and the `bench-load` saturation harness.
//!
//! Submission is handle-based: [`Scheduler::submit`] returns a
//! [`JobHandle`] the caller awaits, polls, cancels, or streams events
//! from ([`Scheduler::submit_streaming`]). The old completion-ordered
//! `next_result` polling surface survives as deprecated shims.
//!
//! Determinism is load-bearing: a run is seeded by `(session seed, job
//! salt)` only, so the same job produces a byte-identical report
//! whether it ran alone, queued behind ten others, or on any of the N
//! workers.
//!
//! [`RunReport`]: infera_agents::RunReport

pub mod bench;
pub mod cache;
pub mod digest;
pub mod flight;
pub mod handle;
pub mod job;
pub mod net;
pub mod resilience;
pub mod scheduler;
pub mod telemetry;

pub use bench::{run_bench, BenchOpts, BenchServeReport, WorkerRow};
pub use cache::{ResultCache, ResultKey};
pub use digest::report_digest;
pub use flight::{FlightEntry, FlightOutcome, FlightRecorder, FlightSnapshot};
pub use handle::{JobEvents, JobHandle};
pub use job::{JobResult, JobSpec, JobStatus, RejectReason};
pub use resilience::{BreakerConfig, CircuitBreaker, RetryPolicy};
pub use scheduler::{Scheduler, ServeConfig};
pub use telemetry::{
    event_names, load_observability, persist_observability, render_stats_line,
    ObservabilityArtifacts,
};
