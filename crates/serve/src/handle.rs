//! Typed job handles: the public completion surface of the scheduler.
//!
//! [`Scheduler::submit`] returns a [`JobHandle`] instead of a bare id —
//! the caller awaits, polls, cancels, or subscribes through the handle,
//! and the result is routed to *that* submitter instead of a shared
//! completion-ordered channel. The old `submit_spec`/`next_result`
//! polling pair survives as deprecated shims.
//!
//! Delivery is push-based: the worker that finishes a job fills the
//! handle's slot (waking blocked [`JobHandle::wait`] callers) and sends
//! a copy to every watcher registered via [`JobHandle::notify`] — the
//! mechanism the network server uses to route completions onto the
//! submitting client's connection without polling.
//!
//! [`Scheduler::submit`]: crate::Scheduler::submit

use crate::job::JobResult;
use crossbeam::channel::Sender;
use infera_agents::CancelToken;
use infera_obs::{BusEvent, Subscription};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Shared completion slot between a queued job and its handle.
///
/// Workers complete the slot exactly once; handles wait on it. Watchers
/// registered before completion receive the result on the worker
/// thread; watchers registered after receive it immediately.
#[derive(Default)]
pub(crate) struct JobSlot {
    state: Mutex<SlotState>,
    cond: Condvar,
}

#[derive(Default)]
struct SlotState {
    result: Option<JobResult>,
    watchers: Vec<Sender<JobResult>>,
}

impl JobSlot {
    pub(crate) fn new() -> Arc<JobSlot> {
        Arc::new(JobSlot::default())
    }

    /// Fill the slot, wake waiters, and fan out to watchers. Called by
    /// the worker exactly once per job (std Mutex poisoning is
    /// recovered: a panic elsewhere must not lose a result).
    pub(crate) fn complete(&self, result: JobResult) {
        let watchers = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let watchers = std::mem::take(&mut state.watchers);
            state.result = Some(result.clone());
            watchers
        };
        self.cond.notify_all();
        for tx in watchers {
            let _ = tx.send(result.clone());
        }
    }

    fn try_result(&self) -> Option<JobResult> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .result
            .clone()
    }

    fn wait(&self, timeout: Option<Duration>) -> Option<JobResult> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = &state.result {
                return Some(result.clone());
            }
            state = match deadline {
                None => self.cond.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(deadline) => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return None;
                    }
                    self.cond
                        .wait_timeout(state, left)
                        .unwrap_or_else(|e| e.into_inner())
                        .0
                }
            };
        }
    }

    /// Register a watcher; delivers immediately if already complete.
    fn notify(&self, tx: Sender<JobResult>) {
        let done = {
            let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
            match &state.result {
                Some(result) => Some(result.clone()),
                None => {
                    state.watchers.push(tx.clone());
                    None
                }
            }
        };
        if let Some(result) = done {
            let _ = tx.send(result);
        }
    }
}

/// A submitted job: await its result, poll it, cancel it, or stream its
/// progress events. Cloneable via the cheap accessors; the handle can
/// be dropped freely — the job still runs to completion (drop does not
/// cancel; call [`JobHandle::cancel`] for that).
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) salt: u64,
    pub(crate) question: String,
    pub(crate) slot: Arc<JobSlot>,
    pub(crate) cancel: CancelToken,
    pub(crate) events: Option<JobEvents>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("salt", &self.salt)
            .field("finished", &self.is_finished())
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    /// Scheduler-assigned job id (submission order, starting at 1).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The run salt this job executes under.
    pub fn salt(&self) -> u64 {
        self.salt
    }

    pub fn question(&self) -> &str {
        &self.question
    }

    /// Whether a terminal result is available.
    pub fn is_finished(&self) -> bool {
        self.slot.try_result().is_some()
    }

    /// Non-blocking poll for the terminal result.
    pub fn try_result(&self) -> Option<JobResult> {
        self.slot.try_result()
    }

    /// Block until the job finishes. Every admitted job terminates
    /// (complete, failed, timed out, or canceled), so this returns as
    /// long as the worker pool is alive.
    pub fn wait(&self) -> JobResult {
        self.slot
            .wait(None)
            .expect("job slot completed without a result")
    }

    /// Block up to `timeout` for the terminal result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        self.slot.wait(Some(timeout))
    }

    /// Request cancellation: a queued job completes as `Canceled` when a
    /// worker picks it up; a running job aborts at its next step
    /// boundary. Idempotent; a finished job is unaffected.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Register a completion watcher: `tx` receives a copy of the
    /// terminal [`JobResult`] when (or immediately, if it already has)
    /// the job finishes. The network server registers the submitting
    /// connection's channel here.
    pub fn notify(&self, tx: Sender<JobResult>) {
        self.slot.notify(tx);
    }

    /// The job-scoped event stream, present when the job was submitted
    /// with [`Scheduler::submit_streaming`]. Subscribed *before*
    /// admission, so the `job_queued` event onward is captured.
    ///
    /// [`Scheduler::submit_streaming`]: crate::Scheduler::submit_streaming
    pub fn events(&self) -> Option<&JobEvents> {
        self.events.as_ref()
    }

    /// Take ownership of the event stream (e.g. to move it to a
    /// forwarding thread).
    pub fn take_events(&mut self) -> Option<JobEvents> {
        self.events.take()
    }
}

/// A per-job view over the scheduler's [`EventBus`]: the underlying
/// subscription sees every job's events, this wrapper yields only the
/// ones belonging to `job` (matched via [`BusEvent::job_id`]).
///
/// [`EventBus`]: infera_obs::EventBus
pub struct JobEvents {
    pub(crate) sub: Subscription,
    pub(crate) job: u64,
}

impl JobEvents {
    fn matches(&self, ev: &BusEvent) -> bool {
        ev.job_id() == Some(self.job)
    }

    /// Next buffered event for this job (non-blocking; skips other
    /// jobs' events).
    pub fn try_next(&self) -> Option<BusEvent> {
        while let Some(ev) = self.sub.try_recv() {
            if self.matches(&ev) {
                return Some(ev);
            }
        }
        None
    }

    /// Block up to `timeout` for this job's next event.
    pub fn next_timeout(&self, timeout: Duration) -> Option<BusEvent> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            match self.sub.recv_timeout(left) {
                Some(ev) if self.matches(&ev) => return Some(ev),
                Some(_) => continue,
                None => return None,
            }
        }
    }

    /// Drain everything currently buffered for this job.
    pub fn drain(&self) -> Vec<BusEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.try_next() {
            out.push(ev);
        }
        out
    }

    /// Events dropped on this subscription because its channel was full
    /// (counts all jobs' events, not just this one's).
    pub fn dropped(&self) -> u64 {
        self.sub.dropped()
    }
}

impl std::fmt::Debug for JobEvents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobEvents").field("job", &self.job).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobStatus;
    use infera_core::InferaError;

    fn result(id: u64) -> JobResult {
        JobResult {
            id,
            question: "q".into(),
            salt: 1,
            status: JobStatus::Failed(InferaError::internal("test")),
            digest: 0,
            cache_hit: false,
            queue_ms: 0,
            run_ms: 0,
            attempts: 1,
        }
    }

    #[test]
    fn wait_returns_after_complete() {
        let slot = JobSlot::new();
        let waiter = {
            let slot = slot.clone();
            std::thread::spawn(move || slot.wait(Some(Duration::from_secs(5))))
        };
        std::thread::sleep(Duration::from_millis(20));
        slot.complete(result(3));
        let got = waiter.join().unwrap().expect("completed");
        assert_eq!(got.id, 3);
        assert_eq!(slot.try_result().unwrap().id, 3, "result stays readable");
    }

    #[test]
    fn wait_timeout_expires_on_unfinished_job() {
        let slot = JobSlot::new();
        assert!(slot.wait(Some(Duration::from_millis(30))).is_none());
    }

    #[test]
    fn watcher_registered_before_and_after_completion_both_deliver() {
        let slot = JobSlot::new();
        let (early_tx, early_rx) = crossbeam::channel::unbounded();
        slot.notify(early_tx);
        slot.complete(result(9));
        let (late_tx, late_rx) = crossbeam::channel::unbounded();
        slot.notify(late_tx);
        assert_eq!(early_rx.try_recv().unwrap().id, 9);
        assert_eq!(late_rx.try_recv().unwrap().id, 9);
    }
}
