//! Serving-layer correctness under concurrency: the scheduler may
//! change *when* work happens, never *what* it computes.

use infera_core::{InferA, SessionConfig};
use infera_hacc::EnsembleSpec;
use infera_llm::BehaviorProfile;
use infera_serve::{JobSpec, ResultCache, ResultKey, Scheduler, ServeConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn build_session(name: &str, config: SessionConfig) -> (Arc<InferA>, infera_hacc::Manifest) {
    let base = std::env::temp_dir().join("infera_serve_it").join(name);
    std::fs::remove_dir_all(&base).ok();
    let manifest = infera_hacc::generate(&EnsembleSpec::tiny(81), &base.join("ens")).unwrap();
    let session = Arc::new(
        InferA::from_manifest(manifest.clone())
            .work_dir(base.join("work"))
            .config(config)
            .build()
            .unwrap(),
    );
    (session, manifest)
}

const QUESTIONS: &[&str] = &[
    "What is the maximum fof_halo_mass at timestep 624 in simulation 1?",
    "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
    "How many halos are there at each timestep in simulation 0? Plot the count over time.",
    "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
];

/// Digests per question salt for one scheduler configuration.
fn run_with_workers(name: &str, workers: usize) -> HashMap<u64, u64> {
    let (session, _) = build_session(
        name,
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let sched = Scheduler::new(
        session,
        ServeConfig::with_pool(workers, QUESTIONS.len() * 2),
    );
    for (i, q) in QUESTIONS.iter().enumerate() {
        sched
            .submit(JobSpec::new(*q, (i as u64 + 1) * 100))
            .unwrap();
    }
    let results = sched.shutdown();
    assert_eq!(results.len(), QUESTIONS.len());
    results
        .iter()
        .map(|r| {
            assert!(
                r.report().is_some(),
                "job {} failed under {} workers",
                r.id,
                workers
            );
            (r.salt, r.digest)
        })
        .collect()
}

#[test]
fn concurrent_reports_are_bit_identical_to_serial() {
    let serial = run_with_workers("serial", 1);
    for workers in [2, 4] {
        let concurrent = run_with_workers(&format!("conc_{workers}"), workers);
        assert_eq!(
            serial, concurrent,
            "digests diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn shared_cache_survives_hammering() {
    // 8 workers resolving the same question with different salts all
    // read the ensemble through one shared decoded-batch cache.
    let (session, _) = build_session(
        "hammer",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let sched = Scheduler::new(
        session.clone(),
        ServeConfig::with_pool(8, 32),
    );
    for salt in 0..16u64 {
        sched
            .submit(JobSpec::new(QUESTIONS[0], salt))
            .unwrap();
    }
    let results = sched.shutdown();
    assert_eq!(results.len(), 16);
    assert!(results.iter().all(|r| r.report().is_some()));
    // Distinct salts are distinct cache keys — these were real runs, so
    // the decoded-batch cache absorbed the repeated ensemble reads.
    assert!(
        session.shared_cache().hit_count() > 0,
        "decoded-batch cache took no hits across 16 concurrent runs"
    );
    // All 16 runs load the same file selection, so the cache holds one
    // entry set, not 16 copies.
    let entries_after = session.shared_cache().len();
    assert!(entries_after > 0);
    let sched2 = Scheduler::new(
        session.clone(),
        ServeConfig::with_pool(8, 32),
    );
    for salt in 0..16u64 {
        sched2
            .submit(JobSpec::new(QUESTIONS[0], salt))
            .unwrap();
    }
    let second = sched2.shutdown();
    assert_eq!(second.len(), 16);
    assert_eq!(
        session.shared_cache().len(),
        entries_after,
        "re-asking adds no duplicate cache entries"
    );
}

#[test]
fn result_cache_invalidates_on_fingerprint_change() {
    let cache = ResultCache::new(16);
    let base = std::env::temp_dir().join("infera_serve_it/fingerprint");
    std::fs::remove_dir_all(&base).ok();
    let m1 = infera_hacc::generate(&EnsembleSpec::tiny(83), &base.join("ens1")).unwrap();
    let m2 = infera_hacc::generate(&EnsembleSpec::tiny(84), &base.join("ens2")).unwrap();
    assert_ne!(m1.fingerprint(), m2.fingerprint());

    cache.validate_fingerprint(m1.fingerprint());
    let (session, _) = build_session(
        "fingerprint_run",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let report = Arc::new(session.ask(QUESTIONS[0]).unwrap());
    let key = |fp: u64| ResultKey {
        question: QUESTIONS[0].to_string(),
        fingerprint: fp,
        seed: 42,
        salt: 1,
        semantic: "easy".to_string(),
    };
    cache.insert(key(m1.fingerprint()), report);
    assert_eq!(cache.len(), 1);

    // Same ensemble again: entries survive.
    assert!(!cache.validate_fingerprint(m1.fingerprint()));
    assert_eq!(cache.len(), 1);

    // Regenerated ensemble: everything cached is stale and dropped.
    assert!(cache.validate_fingerprint(m2.fingerprint()));
    assert_eq!(cache.len(), 0);
    assert!(cache.get(&key(m2.fingerprint())).is_none());
}

#[test]
#[allow(deprecated)]
fn scheduler_results_arrive_via_polling_too() {
    // The deprecated polling shims must keep working for old callers.
    let (session, _) = build_session(
        "polling",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let sched = Scheduler::new(
        session,
        ServeConfig::with_pool(2, 8),
    );
    sched.submit_spec(JobSpec::new(QUESTIONS[0], 7)).unwrap();
    let first = sched.next_result().expect("one result");
    assert_eq!(first.salt, 7);
    assert!(first.report().is_some());
    assert!(sched.try_next_result().is_none());
    assert!(sched.shutdown().is_empty());
}
