//! Golden-file test pinning the wire protocol byte-for-byte.
//!
//! `tests/golden/protocol_v1.txt` holds the exact line-delimited JSON
//! for every message in the v1 vocabulary. Clients in other languages
//! parse these bytes, so any drift must be a conscious change: update
//! the golden file *and* bump `PROTOCOL_VERSION` together.
//!
//! The golden lines only use fully-populated messages (every optional
//! field `Some`) so the bytes don't depend on how a serializer spells
//! absent optionals; the tolerance tests below pin the decode side for
//! both spellings (`"field":null` and the field omitted entirely).

use infera_serve::net::{
    decode_request, decode_response, encode_request, encode_response, Event, JobDone, RejectCode,
    Request, Response, PROTOCOL_VERSION,
};

const GOLDEN: &str = include_str!("golden/protocol_v1.txt");

fn golden_lines() -> Vec<(String, String)> {
    GOLDEN
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (label, json) = l
                .split_once(' ')
                .unwrap_or_else(|| panic!("malformed golden line: {l}"));
            (label.to_string(), json.to_string())
        })
        .collect()
}

fn golden_json(label: &str) -> String {
    golden_lines()
        .into_iter()
        .find(|(l, _)| l == label)
        .unwrap_or_else(|| panic!("no golden line labeled {label}"))
        .1
}

/// Every request message, fully populated, in golden-file order.
fn golden_requests() -> Vec<(&'static str, Request)> {
    vec![
        (
            "req_hello",
            Request::Hello {
                protocol_version: PROTOCOL_VERSION,
                client: Some("golden".to_string()),
            },
        ),
        (
            "req_submit",
            Request::Submit {
                question: "How many halos survive to z=0?".to_string(),
                salt: Some(42),
                semantic: Some("medium".to_string()),
                timeout_ms: Some(30000),
                events: true,
            },
        ),
        ("req_cancel", Request::Cancel { job: 7 }),
        ("req_ping", Request::Ping),
        ("req_bye", Request::Bye),
    ]
}

/// Every response message (and every event variant), fully populated.
fn golden_responses() -> Vec<(&'static str, Response)> {
    let done_ok = JobDone {
        job: 3,
        salt: 42,
        ok: true,
        digest: "00000000deadbeef".to_string(),
        cache_hit: false,
        queue_ms: 12,
        run_ms: 340,
        attempts: 1,
        completed: Some(true),
        redos: Some(0),
        tokens: Some(1187),
        result_rows: Some(24),
        visualizations: Some(1),
        error_kind: None,
        error: None,
    };
    let done_failed = JobDone {
        job: 4,
        salt: 43,
        ok: false,
        digest: "0000000000000000".to_string(),
        cache_hit: false,
        queue_ms: 2,
        run_ms: 51,
        attempts: 3,
        completed: None,
        redos: None,
        tokens: None,
        result_rows: None,
        visualizations: None,
        error_kind: Some("llm".to_string()),
        error: Some("llm call failed".to_string()),
    };
    vec![
        (
            "resp_hello",
            Response::Hello {
                protocol_version: PROTOCOL_VERSION,
                server: "infera-serve".to_string(),
                workers: 4,
                queue_capacity: 64,
            },
        ),
        ("resp_accepted", Response::Accepted { job: 3, salt: 42 }),
        (
            "resp_rejected_queue_full",
            Response::Rejected {
                code: RejectCode::QueueFull { capacity: 64 },
                message: "queue full (capacity 64)".to_string(),
            },
        ),
        (
            "resp_rejected_circuit_open",
            Response::Rejected {
                code: RejectCode::CircuitOpen {
                    class: "storage".to_string(),
                },
                message: "circuit open for storage".to_string(),
            },
        ),
        (
            "resp_rejected_shutting_down",
            Response::Rejected {
                code: RejectCode::ShuttingDown,
                message: "server draining".to_string(),
            },
        ),
        (
            "resp_cancel_ack",
            Response::CancelAck {
                job: 7,
                known: true,
            },
        ),
        ("resp_done_ok", Response::Done(done_ok)),
        ("resp_done_failed", Response::Done(done_failed)),
        ("resp_pong", Response::Pong),
        (
            "resp_error",
            Response::Error {
                kind: "protocol_mismatch".to_string(),
                message: "client speaks protocol v2, server v1".to_string(),
            },
        ),
        (
            "resp_goodbye_draining",
            Response::Goodbye {
                code: Some(RejectCode::ShuttingDown),
                message: "server draining: in-flight jobs are completing, no new connections"
                    .to_string(),
            },
        ),
        (
            "event_queued",
            Response::Event(Event::Queued { job: 3, salt: 42 }),
        ),
        (
            "event_started",
            Response::Event(Event::Started { job: 3, queue_ms: 12 }),
        ),
        (
            "event_plan_ready",
            Response::Event(Event::PlanReady { job: 3, steps: 4 }),
        ),
        (
            "event_step_started",
            Response::Event(Event::StepStarted {
                job: 3,
                step: "sql".to_string(),
            }),
        ),
        (
            "event_qa_attempt",
            Response::Event(Event::QaAttempt {
                job: 3,
                agent: "sql".to_string(),
                attempt: 1,
                outcome: "accepted".to_string(),
            }),
        ),
        (
            "event_shard_progress",
            Response::Event(Event::ShardProgress {
                job: 3,
                stage: "scatter".to_string(),
                dur_ms: 18,
            }),
        ),
        (
            "event_frame_ready",
            Response::Event(Event::FrameReady {
                job: 3,
                name: "halo_counts".to_string(),
                rows: 24,
                cols: 3,
            }),
        ),
        (
            "event_retried",
            Response::Event(Event::Retried {
                job: 3,
                attempt: 2,
                error: "transient storage read".to_string(),
            }),
        ),
        (
            "event_completed",
            Response::Event(Event::Completed {
                job: 3,
                run_ms: 340,
                digest: "00000000deadbeef".to_string(),
                cache_hit: false,
            }),
        ),
        (
            "event_failed",
            Response::Event(Event::Failed {
                job: 4,
                run_ms: 51,
                error: "llm call failed".to_string(),
            }),
        ),
        (
            "event_timed_out",
            Response::Event(Event::TimedOut { job: 5, run_ms: 30000 }),
        ),
    ]
}

#[test]
fn requests_encode_to_golden_bytes() {
    for (label, req) in golden_requests() {
        assert_eq!(
            encode_request(&req),
            golden_json(label),
            "wire bytes drifted for {label} — this is a protocol break; \
             update golden/protocol_v1.txt and bump PROTOCOL_VERSION"
        );
    }
}

#[test]
fn responses_encode_to_golden_bytes() {
    for (label, resp) in golden_responses() {
        assert_eq!(
            encode_response(&resp),
            golden_json(label),
            "wire bytes drifted for {label} — this is a protocol break; \
             update golden/protocol_v1.txt and bump PROTOCOL_VERSION"
        );
    }
}

#[test]
fn golden_bytes_decode_back_to_the_same_messages() {
    for (label, req) in golden_requests() {
        let decoded = decode_request(&golden_json(label))
            .unwrap_or_else(|e| panic!("golden {label} no longer parses: {e}"));
        assert_eq!(decoded, req, "decode drifted for {label}");
    }
    for (label, resp) in golden_responses() {
        let decoded = decode_response(&golden_json(label))
            .unwrap_or_else(|e| panic!("golden {label} no longer parses: {e}"));
        assert_eq!(decoded, resp, "decode drifted for {label}");
    }
}

#[test]
fn every_golden_line_is_covered() {
    // The golden file and the in-code vocabulary must stay in lockstep:
    // a line without a matching message (or vice versa) is drift.
    let labels: Vec<String> = golden_lines().into_iter().map(|(l, _)| l).collect();
    let expected: Vec<String> = golden_requests()
        .iter()
        .map(|(l, _)| (*l).to_string())
        .chain(golden_responses().iter().map(|(l, _)| (*l).to_string()))
        .collect();
    assert_eq!(labels, expected, "golden file and message vocabulary diverged");
}

#[test]
fn absent_and_null_optionals_decode_identically() {
    // Optional fields may arrive spelled `"field":null` or omitted
    // entirely; both decode to `None`. Clients in other languages lean
    // on this, so it is part of the wire contract.
    let hello = Request::Hello {
        protocol_version: 1,
        client: None,
    };
    for line in [
        r#"{"Hello":{"protocol_version":1}}"#,
        r#"{"Hello":{"protocol_version":1,"client":null}}"#,
    ] {
        assert_eq!(decode_request(line).unwrap(), hello, "line {line}");
    }

    let submit = Request::Submit {
        question: "q".to_string(),
        salt: None,
        semantic: None,
        timeout_ms: None,
        events: false,
    };
    for line in [
        r#"{"Submit":{"question":"q"}}"#,
        r#"{"Submit":{"question":"q","salt":null,"semantic":null,"timeout_ms":null,"events":false}}"#,
    ] {
        assert_eq!(decode_request(line).unwrap(), submit, "line {line}");
    }

    let goodbye = Response::Goodbye {
        code: None,
        message: "bye".to_string(),
    };
    for line in [
        r#"{"Goodbye":{"message":"bye"}}"#,
        r#"{"Goodbye":{"code":null,"message":"bye"}}"#,
    ] {
        assert_eq!(decode_response(line).unwrap(), goodbye, "line {line}");
    }
}

#[test]
fn version_constant_matches_golden_file_name() {
    // protocol_v1.txt pins v1; if the version moves, a new golden file
    // must be cut alongside it.
    assert_eq!(PROTOCOL_VERSION, 1);
}
