//! Chaos suite: the serving layer under deterministic fault injection.
//!
//! Every test installs a seeded `infera_faults::FaultPlan`, drives real
//! jobs through a real scheduler, and asserts the resilience invariants
//! end to end:
//!
//! * no job is lost or double-completed, with or without faults;
//! * a run that succeeds after retries is **bit-identical** (same
//!   report digest) to a never-faulted run — infrastructure faults must
//!   not leak into the analytical output;
//! * panics never escape a worker (jobs fail typed, the pool survives);
//! * permanent corruption is quarantined and never retried;
//! * repeated failures open the circuit breaker, which sheds load with
//!   a reason;
//! * the fault/retry/breaker metrics reconcile against what the plan
//!   actually injected.
//!
//! The fault plan is process-global, so every test holds `TEST_LOCK`
//! and clears the plan on exit (including panic exits, via `FaultGuard`).

use infera_core::{ErrorKind, InferA};
use infera_hacc::EnsembleSpec;
use infera_llm::BehaviorProfile;
use infera_obs::metric_names as m;
use infera_serve::scheduler::metric_names;
use infera_serve::{
    BreakerConfig, JobSpec, JobStatus, RejectReason, RetryPolicy, Scheduler, ServeConfig,
};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests (the plan is global) and guarantees teardown.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    fn install(spec: &str) -> FaultGuard {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        infera_faults::clear();
        infera_faults::install(infera_faults::FaultPlan::parse(spec).unwrap());
        FaultGuard(guard)
    }

    fn clean() -> FaultGuard {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        infera_faults::clear();
        FaultGuard(guard)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        infera_faults::clear();
    }
}

fn session(name: &str) -> Arc<InferA> {
    let base = std::env::temp_dir().join("infera_serve_chaos_tests").join(name);
    std::fs::remove_dir_all(&base).ok();
    let manifest = infera_hacc::generate(&EnsembleSpec::tiny(61), &base.join("ens")).unwrap();
    Arc::new(
        InferA::from_manifest(manifest)
            .work_dir(base.join("work"))
            .profile(BehaviorProfile::perfect())
            .build()
            .unwrap(),
    )
}

const Q: &str = "What is the maximum fof_halo_mass at timestep 624 in simulation 1?";

/// The digest of a clean (never-faulted) run of `Q` at salt 5. Each
/// caller gets its own ensemble directory (same spec + seed, so the
/// fingerprint and digest are identical across instances).
fn clean_digest(name: &str) -> u64 {
    let sched = Scheduler::new(session(name), ServeConfig::with_pool(1, 4));
    sched.submit(JobSpec::new(Q, 5)).unwrap();
    let results = sched.shutdown();
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert!(r.report().is_some(), "clean run must succeed: {:?}", r.status);
    assert_eq!(r.attempts, 1);
    r.digest
}

#[test]
fn serve_fault_retries_to_bit_identical_digest() {
    let _g = FaultGuard::clean();
    let baseline = clean_digest("retry_baseline");

    // One-shot injection: the first serve.job execution fails transiently.
    // (nth, not every-N: an every-N rule re-fires on the retry itself.)
    infera_faults::install(
        infera_faults::FaultPlan::parse("seed=1;serve.job=nth1").unwrap(),
    );
    let sched = Scheduler::new(session("retry_faulted"), ServeConfig::with_pool(1, 4));
    let r = sched.submit(JobSpec::new(Q, 5)).unwrap().wait();
    // Counters live on the installed plan, so read before clearing.
    let injected = infera_faults::total_injected();
    infera_faults::clear();

    assert!(r.report().is_some(), "retry must recover: {:?}", r.status);
    assert_eq!(r.attempts, 2, "one failed attempt, one successful retry");
    assert_eq!(
        r.digest, baseline,
        "a retried-to-success run must be bit-identical to a clean run"
    );
    // Metric reconciliation: what the plan injected is what the
    // scheduler retried and recovered.
    assert_eq!(injected, 1, "exactly one fault fired");
    let reg = sched.metrics();
    assert_eq!(reg.counter(metric_names::RETRY_ATTEMPTS), 1);
    assert_eq!(reg.counter(metric_names::RETRY_EXHAUSTED), 0);
    assert_eq!(reg.counter(metric_names::FAULT_RECOVERED), 1);
    assert_eq!(reg.counter(metric_names::JOBS_FAILED), 0);
    // The flight recorder notes the attempt count on the slow entry.
    let flight = sched.flight_recorder().snapshot();
    assert!(flight.slowest.iter().any(|e| e.attempts == 2), "flight entry carries attempts");
    sched.shutdown();
}

#[test]
fn storage_read_fault_aborts_run_and_retry_recovers() {
    let _g = FaultGuard::clean();
    let baseline = clean_digest("storage_baseline");

    // Build the session before arming the plan, so the one-shot trigger
    // fires inside the served query rather than during setup.
    let sess = session("storage_faulted");
    infera_faults::install(
        infera_faults::FaultPlan::parse("seed=2;storage.read=nth1").unwrap(),
    );
    let sched = Scheduler::new(sess, ServeConfig::with_pool(1, 4));
    let r = sched.submit(JobSpec::new(Q, 5)).unwrap().wait();
    infera_faults::clear();

    assert!(
        r.report().is_some(),
        "transient storage fault must be survived via retry: {:?}",
        r.status
    );
    assert!(r.attempts > 1, "the faulted attempt was replayed");
    assert_eq!(
        r.digest, baseline,
        "the fault must not leak into the redo loop (digest drift)"
    );
    assert!(sched.metrics().counter(metric_names::RETRY_ATTEMPTS) >= 1);
    assert_eq!(sched.metrics().counter(metric_names::RETRY_EXHAUSTED), 0);
    sched.shutdown();
}

#[test]
fn llm_fault_aborts_run_and_retry_recovers() {
    let _g = FaultGuard::clean();
    let baseline = clean_digest("llm_baseline");

    let sess = session("llm_faulted");
    infera_faults::install(
        infera_faults::FaultPlan::parse("seed=11;llm.call=nth1").unwrap(),
    );
    let sched = Scheduler::new(sess, ServeConfig::with_pool(1, 4));
    let r = sched.submit(JobSpec::new(Q, 5)).unwrap().wait();
    infera_faults::clear();

    assert!(
        r.report().is_some(),
        "transient LLM failure must be survived via retry: {:?}",
        r.status
    );
    assert!(r.attempts > 1, "the faulted attempt was replayed");
    assert_eq!(
        r.digest, baseline,
        "an LLM infra fault must abort and replay, not feed the redo loop"
    );
    sched.shutdown();
}

#[test]
fn corrupt_chunk_is_quarantined_and_never_retried() {
    let _g = FaultGuard::clean();
    let sess = session("corrupt");
    infera_faults::install(
        infera_faults::FaultPlan::parse("seed=3;storage.read=nth1:corrupt").unwrap(),
    );
    let sched = Scheduler::new(sess, ServeConfig::with_pool(1, 4));
    let r = sched.submit(JobSpec::new(Q, 5)).unwrap().wait();
    match &r.status {
        JobStatus::Failed(err) => {
            assert_eq!(
                err.kind(),
                ErrorKind::CorruptChunk,
                "corruption surfaces typed, not as a generic failure: {err}"
            );
            assert!(!err.is_retryable(), "a quarantined chunk re-reads identically");
        }
        JobStatus::Done(_) => panic!("corrupted read must fail the job"),
    }
    assert_eq!(r.attempts, 1, "permanent failures are not replayed");
    assert_eq!(sched.metrics().counter(metric_names::RETRY_ATTEMPTS), 0);
    // The quarantine was counted in the run's registry and absorbed.
    let snap = sched.global_metrics().snapshot();
    assert!(
        snap.metrics.counters.get(m::STORAGE_CHUNKS_QUARANTINED).copied().unwrap_or(0) >= 1,
        "quarantine metric absorbed into the global aggregate: {:?}",
        snap.metrics.counters
    );
    sched.shutdown();
}

#[test]
fn job_panic_is_isolated_and_pool_survives() {
    let _g = FaultGuard::install("seed=4;serve.job=nth1:panic");
    let sched = Scheduler::new(session("panic_job"), ServeConfig::with_pool(1, 4));
    let a = sched.submit(JobSpec::new(Q, 5)).unwrap();
    let b = sched.submit(JobSpec::new(Q, 6)).unwrap();
    let results = vec![a.wait(), b.wait()];

    assert_eq!(results.len(), 2, "both jobs produce results");
    let ra = results.iter().find(|r| r.id == a.id()).unwrap();
    let rb = results.iter().find(|r| r.id == b.id()).unwrap();
    match &ra.status {
        JobStatus::Failed(err) => {
            assert_eq!(err.kind(), ErrorKind::Internal);
            assert!(err.message().contains("job panicked"), "{err}");
            assert!(err.message().contains("fault-injected"), "{err}");
        }
        JobStatus::Done(_) => panic!("the injected panic must fail job {}", a.id()),
    }
    assert!(
        rb.report().is_some(),
        "the worker survives a panicking job and serves the next: {:?}",
        rb.status
    );
    let reg = sched.metrics();
    assert_eq!(reg.counter(metric_names::WORKER_PANICS), 1);
    assert_eq!(reg.counter(metric_names::WORKERS_LOST), 0, "caught per-job, not per-worker");
    assert!(reg.counter(metric_names::FAULT_RECOVERED) >= 1);
    sched.shutdown();
}

#[test]
fn worker_panic_respawns_without_shrinking_the_pool() {
    // The worker dies at the top of its loop (outside any job); the
    // respawn guard must bring it back and the pool must still serve.
    let _g = FaultGuard::install("seed=5;serve.worker=nth1:panic");
    let sched = Scheduler::new(session("panic_worker"), ServeConfig::with_pool(1, 4));
    let r = sched.submit(JobSpec::new(Q, 5)).unwrap().wait();

    assert!(
        r.report().is_some(),
        "a respawned worker serves the queue: {:?}",
        r.status
    );
    assert_eq!(sched.metrics().counter(metric_names::WORKERS_LOST), 1);
    sched.shutdown();
}

#[test]
fn repeated_failures_open_the_breaker_and_shed_load() {
    // Every serve.job execution fails: each job burns its whole retry
    // budget and fails with class "storage"; threshold 2 opens the
    // circuit, and the next submission is rejected with a reason.
    let _g = FaultGuard::install("seed=6;serve.job=every1");
    let mut config = ServeConfig::with_pool(1, 4);
    config.retry = RetryPolicy { max_attempts: 2, base_ms: 1, max_ms: 2 };
    config.breaker = BreakerConfig {
        threshold: 2,
        cooldown: Duration::from_secs(120),
    };
    let sched = Scheduler::new(session("breaker"), config);
    let ha = sched.submit(JobSpec::new(Q, 1)).unwrap();
    let hb = sched.submit(JobSpec::new(Q, 2)).unwrap();
    let first = ha.wait();
    let second = hb.wait();
    for r in [&first, &second] {
        assert!(matches!(r.status, JobStatus::Failed(_)), "every attempt was faulted");
        assert_eq!(r.attempts, 2, "retry budget consumed");
    }
    match sched.submit(JobSpec::new(Q, 3)) {
        Err(RejectReason::CircuitOpen { class }) => assert_eq!(class, "storage"),
        other => panic!("expected circuit-open rejection, got {:?}", other.err()),
    }
    let reg = sched.metrics();
    assert_eq!(reg.counter(metric_names::BREAKER_OPENED), 1);
    assert_eq!(reg.counter(metric_names::BREAKER_REJECTED), 1);
    assert_eq!(reg.counter(metric_names::RETRY_EXHAUSTED), 2);
    // The one-line stats surface reports the whole story.
    let line = sched.stats_line();
    assert!(line.contains("breaker: 1 opened / 1 rejected"), "{line}");
    sched.shutdown();
}

#[test]
fn graceful_shutdown_under_faults_loses_nothing() {
    // A mid-queue transient fault + shutdown: every admitted job still
    // completes exactly once, post-shutdown submissions are rejected.
    let _g = FaultGuard::install("seed=7;serve.job=nth2");
    let sched = Scheduler::new(session("graceful_chaos"), ServeConfig::with_pool(1, 8));
    let mut admitted = Vec::new();
    for salt in 0..4 {
        admitted.push(sched.submit(JobSpec::new(Q, salt)).unwrap().id());
    }
    sched.begin_shutdown();
    assert!(matches!(
        sched.submit(JobSpec::new(Q, 99)).err(),
        Some(RejectReason::ShuttingDown)
    ));
    // Retries still run during the drain (minus the backoff sleep), so
    // the faulted job completes rather than failing out of the queue.
    let results = sched.shutdown();
    let mut ids: Vec<u64> = results.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    assert_eq!(ids, admitted, "each admitted job completes exactly once");
    assert!(
        results.iter().all(|r| r.report().is_some()),
        "the injected fault was absorbed by a retry"
    );
    assert!(results.iter().any(|r| r.attempts > 1));
}

#[test]
fn persisted_artifacts_reconcile_injected_vs_recovered() {
    let _g = FaultGuard::clean();
    infera_faults::install(
        infera_faults::FaultPlan::parse("seed=8;serve.job=nth1;cache.result=nth2").unwrap(),
    );
    let sched = Scheduler::new(session("reconcile"), ServeConfig::with_pool(1, 4));
    // Job 1 hits serve.job (retried); job 2 repeats the question, hits
    // the forced cache.result miss, and recomputes to the same digest.
    let ha = sched.submit(JobSpec::new(Q, 5)).unwrap();
    let hb = sched.submit(JobSpec::new(Q, 5)).unwrap();
    let results = vec![ha.wait(), hb.wait()];
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.report().is_some()));
    assert_eq!(
        results[0].digest, results[1].digest,
        "a forced cache miss recomputes the identical report"
    );

    let work = std::env::temp_dir().join("infera_serve_chaos_tests/reconcile/obs_work");
    let dir = sched.persist_observability(&work).unwrap();
    // The plan carries its own injection counters — read before clear.
    let injected_total = infera_faults::total_injected();
    infera_faults::clear();
    let arts = infera_serve::load_observability(&dir).unwrap();
    let count = |name: &str| arts.global.metrics.counters.get(name).copied().unwrap_or(0);
    // `fault.injected` mirrors the plan's own count: the persisted
    // artifact reconciles exactly against what was actually injected.
    assert_eq!(count(m::FAULT_INJECTED), injected_total);
    assert_eq!(injected_total, 2, "both rules fired exactly once");
    assert_eq!(count(m::FAULT_RECOVERED), 2, "retry recovery + cache-miss recompute");
    assert_eq!(count(m::RETRY_ATTEMPTS), 1);
    assert_eq!(count(m::RETRY_EXHAUSTED), 0);
    assert_eq!(count(m::SERVE_JOBS_FAILED), 0);
    sched.shutdown();
}

#[test]
fn faulted_bench_reproduces_the_clean_baseline() {
    // The bench digest gate doubles as a chaos gate: faults are active
    // for every configuration after the serial baseline, and the
    // baseline's digests must still be reproduced bit-for-bit.
    let _g = FaultGuard::clean();
    let base = std::env::temp_dir().join("infera_serve_chaos_tests/bench");
    std::fs::remove_dir_all(&base).ok();
    let manifest = infera_hacc::generate(&EnsembleSpec::tiny(71), &base.join("ens")).unwrap();
    let mut opts = infera_serve::BenchOpts::smoke();
    opts.max_questions = 2;
    opts.faults = Some("seed=9;serve.job=nth1;storage.read=nth3;llm.call=nth5;serve.worker=nth1:panic".to_string());
    let report = infera_serve::run_bench(&manifest, &base.join("work"), &opts).unwrap();
    assert!(
        report.digests_match,
        "faulted configurations diverged: {:?}",
        report.divergent_questions
    );
    assert_eq!(report.fault_spec.as_deref(), Some("seed=9;serve.job=nth1;storage.read=nth3;llm.call=nth5;serve.worker=nth1:panic"));
    assert_eq!(report.rows[0].faults_injected, 0, "serial baseline runs clean");
    let injected: u64 = report.rows.iter().map(|r| r.faults_injected).sum();
    assert!(injected >= 1, "the plan fired in a faulted configuration");
    let text = report.to_text();
    assert!(text.contains("faults:"), "{text}");
    assert!(!infera_faults::is_active(), "bench cleared the plan");
}
