//! End-to-end tests for the network front end: concurrent streaming
//! clients against one [`NetServer`], per-client event isolation, the
//! serial digest anchor, disconnect-cancel, and the graceful drain.

use infera_core::{InferA, SessionConfig};
use infera_hacc::{EnsembleSpec, Manifest};
use infera_llm::BehaviorProfile;
use infera_serve::net::{
    Client, ClientConfig, ConnectError, NetServer, NetServerConfig, SubmitOutcome,
};
use infera_serve::{JobSpec, Scheduler, ServeConfig};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the tests in this binary: the fault plan is process
/// global, so a faulted test must never overlap a clean one.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    fn install(spec: &str) -> FaultGuard {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        infera_faults::clear();
        infera_faults::install(infera_faults::FaultPlan::parse(spec).unwrap());
        FaultGuard(guard)
    }

    fn clean() -> FaultGuard {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        infera_faults::clear();
        FaultGuard(guard)
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        infera_faults::clear();
    }
}

const QUESTIONS: &[&str] = &[
    "What is the maximum fof_halo_mass at timestep 624 in simulation 1?",
    "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
    "How many halos are there at each timestep in simulation 0? Plot the count over time.",
];

const DONE_TIMEOUT: Duration = Duration::from_secs(120);

fn session_config() -> SessionConfig {
    SessionConfig::default().with_profile(BehaviorProfile::perfect())
}

/// One ensemble + a bound server on an ephemeral port. Digests only
/// depend on `(seed, salt, question, ensemble fingerprint)`, so any
/// session built from the same manifest anchors them.
fn start_server(name: &str, workers: usize, queue: usize) -> (NetServer, Manifest, PathBuf) {
    let base = std::env::temp_dir().join("infera_net_it").join(name);
    std::fs::remove_dir_all(&base).ok();
    let manifest = infera_hacc::generate(&EnsembleSpec::tiny(97), &base.join("ens")).unwrap();
    let session = Arc::new(
        InferA::from_manifest(manifest.clone())
            .work_dir(base.join("server_work"))
            .config(session_config())
            .build()
            .unwrap(),
    );
    let sched = Arc::new(Scheduler::new(session, ServeConfig::with_pool(workers, queue)));
    let server = NetServer::bind(sched, "127.0.0.1:0", NetServerConfig::default()).unwrap();
    (server, manifest, base)
}

fn connect(server: &NetServer, config: &ClientConfig) -> Client {
    Client::connect(&server.local_addr().to_string(), config).unwrap()
}

#[test]
fn concurrent_clients_see_only_their_events_and_match_serial_digests() {
    let _g = FaultGuard::clean();
    let (server, manifest, base) = start_server("concurrent", 4, 32);
    let streaming = ClientConfig {
        collect_events: true,
        ..ClientConfig::default()
    };

    // Three clients, two streaming jobs each, disjoint salt ranges.
    let mut clients: Vec<Client> = (0..3).map(|_| connect(&server, &streaming)).collect();
    let mut jobs_of: Vec<Vec<(usize, u64, u64)>> = vec![Vec::new(); clients.len()];
    for (c, client) in clients.iter_mut().enumerate() {
        for j in 0..2usize {
            let q_idx = (c + j) % QUESTIONS.len();
            let salt = 1000 * (c as u64 + 1) + j as u64;
            match client.submit(QUESTIONS[q_idx], Some(salt), true).unwrap() {
                SubmitOutcome::Accepted { job, salt } => jobs_of[c].push((q_idx, salt, job)),
                SubmitOutcome::Rejected { message, .. } => {
                    panic!("client {c} rejected below capacity: {message}")
                }
            }
        }
    }

    // Every accepted job reaches exactly one terminal `Done` on the
    // connection that submitted it.
    let mut network_digests: Vec<(usize, u64, String)> = Vec::new();
    for (c, client) in clients.iter().enumerate() {
        for _ in 0..jobs_of[c].len() {
            let done = client
                .next_done(DONE_TIMEOUT)
                .unwrap_or_else(|| panic!("client {c}: job never completed"));
            let (q_idx, salt, _) = *jobs_of[c]
                .iter()
                .find(|(_, s, _)| *s == done.salt)
                .unwrap_or_else(|| panic!("client {c} got a Done for a foreign salt {}", done.salt));
            assert!(done.ok, "client {c} job salt {salt} failed: {:?}", done.error);
            network_digests.push((q_idx, salt, done.digest));
        }
        assert!(
            client.next_done(Duration::from_millis(200)).is_none(),
            "client {c} received an extra Done"
        );
    }

    // Event isolation: every event a client saw belongs to one of its
    // own jobs, and each job's progress stream ended with its terminal
    // event *before* the Done (the pump drains events first).
    for (c, client) in clients.iter().enumerate() {
        let own: Vec<u64> = jobs_of[c].iter().map(|(_, _, job)| *job).collect();
        let mut terminal_seen = vec![false; own.len()];
        let mut events = 0u64;
        while let Some(event) = client.try_next_event() {
            events += 1;
            let Some(slot) = own.iter().position(|j| *j == event.job()) else {
                panic!("client {c} saw an event for foreign job {}", event.job());
            };
            if event.is_terminal() {
                terminal_seen[slot] = true;
            }
        }
        assert!(events > 0, "client {c} streamed no events");
        assert_eq!(client.events_seen(), events);
        assert!(
            terminal_seen.iter().all(|t| *t),
            "client {c} missed a terminal event: {terminal_seen:?}"
        );
    }
    for client in clients {
        client.bye();
    }

    // Serial anchor: a fresh single-worker session over the same
    // ensemble must reproduce every network digest bit-for-bit.
    let serial_session = Arc::new(
        InferA::from_manifest(manifest)
            .work_dir(base.join("serial_work"))
            .config(session_config())
            .build()
            .unwrap(),
    );
    let serial = Scheduler::new(serial_session, ServeConfig::with_pool(1, 16));
    for (q_idx, salt, net_digest) in &network_digests {
        let handle = serial.submit(JobSpec::new(QUESTIONS[*q_idx], *salt)).unwrap();
        let anchor = handle.wait().digest;
        assert_eq!(
            *net_digest,
            format!("{anchor:016x}"),
            "network digest diverged from serial for salt {salt}"
        );
    }
    serial.shutdown();

    let stats = server.shutdown();
    assert_eq!(stats.connections, 3);
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.completed, 6, "a Done was lost");
    assert!(stats.events_sent >= 6, "events: {}", stats.events_sent);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn disconnect_mid_job_cancels_without_poisoning_the_pool() {
    let _g = FaultGuard::clean();
    // One worker and a deep queue: at abort time at least the queued
    // jobs are provably still in flight.
    let (server, _, _) = start_server("disconnect", 1, 8);

    let mut doomed = connect(&server, &ClientConfig::default());
    for i in 0..3u64 {
        let outcome = doomed
            .submit(QUESTIONS[i as usize % QUESTIONS.len()], Some(500 + i), false)
            .unwrap();
        assert!(matches!(outcome, SubmitOutcome::Accepted { .. }));
    }
    // Hard disconnect — no Bye. The server's reader sees EOF and
    // cancels this connection's in-flight jobs.
    doomed.abort();

    // The pool survives: a fresh client's job still completes cleanly.
    let mut after = connect(&server, &ClientConfig::default());
    match after.submit(QUESTIONS[0], Some(900), false).unwrap() {
        SubmitOutcome::Accepted { .. } => {}
        SubmitOutcome::Rejected { message, .. } => panic!("pool poisoned: {message}"),
    }
    let done = after.next_done(DONE_TIMEOUT).expect("post-disconnect job hung");
    assert!(done.ok, "post-disconnect job failed: {:?}", done.error);
    after.bye();

    let stats = server.shutdown();
    assert!(
        stats.canceled_on_eof >= 1,
        "disconnect canceled nothing (canceled_on_eof = {})",
        stats.canceled_on_eof
    );
}

#[test]
fn draining_server_refuses_new_connections_and_loses_no_accepted_jobs() {
    let _g = FaultGuard::clean();
    let (server, _, _) = start_server("drain", 2, 8);

    let mut client = connect(&server, &ClientConfig::default());
    let mut accepted = 0;
    for i in 0..4u64 {
        if let SubmitOutcome::Accepted { .. } = client
            .submit(QUESTIONS[i as usize % QUESTIONS.len()], Some(700 + i), false)
            .unwrap()
        {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 4);

    server.begin_shutdown();
    assert!(server.is_draining());

    // A fresh connection bounces with the typed refusal, not a reset.
    match Client::connect(&server.local_addr().to_string(), &ClientConfig::default()) {
        Err(ConnectError::Refused { kind, .. }) => assert_eq!(kind, "shutting_down"),
        Err(other) => panic!("wrong refusal from draining server: {other:?}"),
        Ok(_) => panic!("draining server let a connection in"),
    }
    assert!(server.refused_draining() >= 1);

    // A new submission on the existing connection rejects the same way.
    match client.submit(QUESTIONS[0], Some(999), false).unwrap() {
        SubmitOutcome::Rejected { code, .. } => {
            assert!(
                matches!(code, infera_serve::net::RejectCode::ShuttingDown),
                "wrong rejection during drain: {code:?}"
            );
        }
        SubmitOutcome::Accepted { .. } => panic!("draining scheduler accepted new work"),
    }

    // Every accepted job still delivers its Done.
    for i in 0..accepted {
        assert!(
            client.next_done(DONE_TIMEOUT).is_some(),
            "drain lost job {i} of {accepted}"
        );
    }
    client.bye();

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.completed, 4, "drain lost an accepted job");
    assert!(stats.refused_draining >= 1);
}

#[test]
fn faulted_connection_boundary_drops_one_client_and_spares_the_rest() {
    // The chaos-suite `serve.job` site sits at the connection boundary
    // in the network server: the first connection is dropped before its
    // reader starts, exactly like a client hitting a dying peer.
    let _g = FaultGuard::install("seed=21;serve.job=nth1");
    let (server, _, _) = start_server("faulted_conn", 2, 8);

    // The faulted connection never completes its handshake.
    assert!(
        Client::connect(&server.local_addr().to_string(), &ClientConfig::default()).is_err(),
        "faulted connection should drop before the handshake"
    );

    // The next connection is untouched and serves a full job.
    let mut survivor = connect(&server, &ClientConfig::default());
    match survivor.submit(QUESTIONS[0], Some(1300), false).unwrap() {
        SubmitOutcome::Accepted { .. } => {}
        SubmitOutcome::Rejected { message, .. } => {
            panic!("pool poisoned by faulted connection: {message}")
        }
    }
    let done = survivor.next_done(DONE_TIMEOUT).expect("survivor job hung");
    assert!(done.ok, "survivor job failed: {:?}", done.error);
    survivor.bye();

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.completed, 1);
}
