//! End-to-end observability: slow and failing jobs land in the flight
//! recorder with complete span traces, and the on-disk artifacts a
//! serve session leaves behind are exactly what `infera stats` reads.

use infera_core::{ErrorKind, InferA, SessionConfig};
use infera_hacc::EnsembleSpec;
use infera_llm::BehaviorProfile;
use infera_serve::{
    load_observability, persist_observability, FlightOutcome, JobSpec, JobStatus, Scheduler,
    ServeConfig,
};
use std::sync::Arc;
use std::time::Duration;

const Q: &str = "What is the maximum fof_halo_mass at timestep 624 in simulation 1?";

fn build_session(name: &str, config: SessionConfig) -> Arc<InferA> {
    let base = std::env::temp_dir().join("infera_serve_flight_it").join(name);
    std::fs::remove_dir_all(&base).ok();
    let manifest = infera_hacc::generate(&EnsembleSpec::tiny(91), &base.join("ens")).unwrap();
    Arc::new(
        InferA::from_manifest(manifest)
            .work_dir(base.join("work"))
            .config(config)
            .build()
            .unwrap(),
    )
}

#[test]
fn slow_and_failed_jobs_are_retrievable_with_full_traces() {
    let session = build_session(
        "recorder",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let sched = Scheduler::new(session, ServeConfig::with_pool(1, 16));
    let flight = sched.flight_recorder().clone();

    // A normal job: completes, and with an empty slowest ring it is by
    // definition among the N slowest, so its trace is retained.
    sched.submit(JobSpec::new(Q, 1)).unwrap();
    // An injected timeout: a deadline no real run can meet. It must
    // land in the failure ring even though there is no RunReport.
    sched
        .submit(JobSpec::new(Q, 2).timeout(Duration::from_nanos(1)))
        .unwrap();
    let results = sched.shutdown();
    assert_eq!(results.len(), 2);
    let timed_out = results.iter().find(|r| r.salt == 2).unwrap();
    match &timed_out.status {
        JobStatus::Failed(err) => assert_eq!(err.kind(), ErrorKind::Timeout),
        other => panic!("expected the deadline to expire, got {other:?}"),
    }

    let snap = flight.snapshot();
    assert_eq!(snap.slowest.len(), 1, "completed job retained");
    assert_eq!(snap.failures.len(), 1, "timed-out job retained");

    let slow = &snap.slowest[0];
    assert_eq!(slow.outcome, FlightOutcome::Completed);
    assert_eq!(slow.salt, 1);
    assert!(slow.error.is_none());
    assert_ne!(slow.digest, 0);
    assert!(
        !slow.trace.spans.is_empty(),
        "completed job carries its span trace"
    );
    let span_names: Vec<&str> = slow.trace.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(
        span_names.iter().any(|n| n.contains("planning")),
        "trace covers the planning stage: {span_names:?}"
    );

    let failed = &snap.failures[0];
    assert_eq!(failed.outcome, FlightOutcome::TimedOut);
    assert_eq!(failed.salt, 2);
    assert!(failed.error.is_some(), "failure records the error message");
    assert_eq!(failed.digest, 0);
    assert!(
        !failed.trace.spans.is_empty(),
        "a job with no RunReport still has a trace to dissect"
    );
}

#[test]
fn failing_jobs_keep_traces_too() {
    // An unknown column makes execution fail deterministically (a real
    // failure, not a deadline), exercising the Failed outcome path.
    let session = build_session(
        "failure",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let sched = Scheduler::new(session, ServeConfig::with_pool(1, 4));
    let flight = sched.flight_recorder().clone();
    sched
        .submit(JobSpec::new(
            "What is the maximum bogus_column_xyz at timestep 624 in simulation 1?",
            3,
        ))
        .unwrap();
    let results = sched.shutdown();
    assert_eq!(results.len(), 1);
    let snap = flight.snapshot();
    match &results[0].status {
        JobStatus::Failed(_) => {
            assert_eq!(snap.failures.len(), 1);
            assert_eq!(snap.failures[0].outcome, FlightOutcome::Failed);
            assert!(!snap.failures[0].trace.spans.is_empty());
        }
        // The workflow may instead degrade to a completed run with a
        // caveat; then the job sits in the slowest ring.
        _ => assert_eq!(snap.slowest.len(), 1),
    }
}

#[test]
fn slowest_ring_respects_capacity_end_to_end() {
    let session = build_session(
        "capacity",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let mut config = ServeConfig::with_pool(1, 16);
    config.flight_slowest = 2;
    let sched = Scheduler::new(session, config);
    let flight = sched.flight_recorder().clone();
    for salt in 1..=5u64 {
        sched.submit(JobSpec::new(Q, salt)).unwrap();
    }
    let results = sched.shutdown();
    assert_eq!(results.len(), 5);
    let snap = flight.snapshot();
    assert!(snap.slowest.len() <= 2, "ring bounded at capacity");
    assert!(snap.recorded >= 1);
    // Retained entries are the slowest, in descending order.
    for pair in snap.slowest.windows(2) {
        assert!(pair[0].run_ms >= pair[1].run_ms);
    }
}

#[test]
fn serve_artifacts_roundtrip_through_stats_loader() {
    let session = build_session(
        "artifacts",
        SessionConfig::default().with_profile(BehaviorProfile::perfect()),
    );
    let sched = Scheduler::new(session, ServeConfig::with_pool(2, 8));
    sched.submit(JobSpec::new(Q, 1)).unwrap();
    sched
        .submit(JobSpec::new(Q, 2).timeout(Duration::from_nanos(1)))
        .unwrap();
    let work = std::env::temp_dir().join("infera_serve_flight_it/artifacts_out");
    std::fs::remove_dir_all(&work).ok();
    std::fs::create_dir_all(&work).unwrap();

    let global = sched.global_metrics().clone();
    let bus = sched.bus().clone();
    let flight = sched.flight_recorder().clone();
    let results = sched.shutdown();
    assert_eq!(results.len(), 2);
    let dir = persist_observability(&work, &global, &bus, &flight).unwrap();
    assert!(dir.join("metrics.prom").is_file());

    let arts = load_observability(&work).unwrap();
    // The global snapshot merged every finished run's registry and the
    // scheduler's own counters.
    assert!(arts.global.runs_merged >= 1);
    use infera_obs::metric_names as m;
    assert!(arts.global.metrics.counters.get(m::SERVE_JOBS_COMPLETED) >= Some(&1));
    assert_eq!(arts.global.metrics.counters.get(m::SERVE_JOBS_TIMED_OUT), Some(&1));
    assert!(
        arts.global.metrics.histograms.contains_key(m::SERVE_RUN_MS),
        "run-time histogram persisted"
    );
    assert!(
        arts.global.metrics.histograms.contains_key(m::SERVE_QUEUE_WAIT_MS),
        "queue-wait histogram persisted"
    );
    // Prometheus exposition carries the serve counters.
    assert!(arts.prometheus.contains("infera_serve_jobs_completed"));
    assert!(arts.prometheus.contains("# TYPE"));
    // The timed-out job's trace survives the disk roundtrip intact.
    let failure = arts
        .flight
        .failures
        .iter()
        .find(|e| e.outcome == FlightOutcome::TimedOut)
        .expect("timed-out job in flight recorder");
    assert!(!failure.trace.spans.is_empty());
    let rendered = infera_obs::render_trace(&failure.trace);
    assert!(!rendered.trim().is_empty());
    // Every persisted metric name is a declared constant.
    for name in arts.global.metrics.counters.keys() {
        assert!(m::is_declared(name), "undeclared counter {name}");
    }
}
