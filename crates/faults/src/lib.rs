//! Seeded, deterministic fault injection for chaos testing the whole
//! stack.
//!
//! A [`FaultPlan`] names injection *sites* (string constants in
//! [`sites`]) and attaches a trigger (probability, nth call, or every-N
//! calls) plus a [`FaultMode`] to each. Components consult
//! [`check`] at their injection points; with no plan installed the cost
//! is a single relaxed atomic load (the same inactive-path discipline as
//! `obs::EventBus`), so production paths pay nothing.
//!
//! Determinism: probability triggers hash `(plan seed, site, call #)`
//! through splitmix64, so the same plan against the same call sequence
//! injects the same faults. `nth` triggers fire exactly once, which is
//! what chaos tests use when they need a retried run to succeed on the
//! second attempt.
//!
//! Plans parse from a compact spec (usable via the `INFERA_FAULTS` env
//! var or the `--faults` CLI flag):
//!
//! ```text
//! seed=42;storage.read=p0.05:error;llm.call=nth3:panic;cache.result=every10:miss
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Marker embedded in every injected error/panic message so recovery
/// code (and tests) can distinguish injected faults from organic ones.
pub const INJECTED_MARKER: &str = "fault-injected";

/// Well-known injection site names. Components pass these to [`check`];
/// plans reference them in specs. Keeping them here (rather than
/// scattered string literals) makes the fault surface greppable.
pub mod sites {
    /// Chunk read path in columnar storage (`TableStore::read_chunk_bytes`).
    pub const STORAGE_READ: &str = "storage.read";
    /// Chunk append path in columnar storage (`TableStore::write_chunk`).
    pub const STORAGE_APPEND: &str = "storage.append";
    /// Metadata flush (`TableStore::flush_meta`).
    pub const STORAGE_META: &str = "storage.meta";
    /// Inside a serve worker's per-job execution (panic isolation target).
    pub const SERVE_JOB: &str = "serve.job";
    /// Top of the serve worker loop, outside any job (respawn target).
    pub const SERVE_WORKER: &str = "serve.worker";
    /// Serve-level result cache lookups (forced misses).
    pub const CACHE_RESULT: &str = "cache.result";
    /// Cross-run shared load cache lookups (forced misses).
    pub const CACHE_SHARED: &str = "cache.shared";
    /// Virtual LLM call boundary in the agent workflow.
    pub const LLM_CALL: &str = "llm.call";
    /// Fragment serialization/dispatch to a shard worker.
    pub const SHARD_SEND: &str = "shard.send";
    /// Fragment execution on a shard worker.
    pub const SHARD_EXEC: &str = "shard.exec";
    /// Partial-result merge in the scatter-gather combiner.
    pub const SHARD_MERGE: &str = "shard.merge";

    /// All site names, for spec validation and docs.
    pub fn all() -> &'static [&'static str] {
        &[
            STORAGE_READ,
            STORAGE_APPEND,
            STORAGE_META,
            SERVE_JOB,
            SERVE_WORKER,
            CACHE_RESULT,
            CACHE_SHARED,
            LLM_CALL,
            SHARD_SEND,
            SHARD_EXEC,
            SHARD_MERGE,
        ]
    }
}

/// What an injection site should do when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// Return a transient-looking error (e.g. an I/O failure).
    Error,
    /// Corrupt the payload (storage flips a byte before checksums run).
    Corrupt,
    /// Panic at the site (exercises `catch_unwind` isolation).
    Panic,
    /// Force a cache miss (the lookup pretends the entry is absent).
    Miss,
    /// Tear a write: persist only a prefix of the bytes (simulated
    /// crash mid-append).
    Torn,
}

impl FaultMode {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "error" => Ok(FaultMode::Error),
            "corrupt" => Ok(FaultMode::Corrupt),
            "panic" => Ok(FaultMode::Panic),
            "miss" => Ok(FaultMode::Miss),
            "torn" => Ok(FaultMode::Torn),
            other => Err(format!(
                "unknown fault mode '{other}' (expected error|corrupt|panic|miss|torn)"
            )),
        }
    }

    /// Stable lowercase label, for logs and counters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultMode::Error => "error",
            FaultMode::Corrupt => "corrupt",
            FaultMode::Panic => "panic",
            FaultMode::Miss => "miss",
            FaultMode::Torn => "torn",
        }
    }
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire with this probability per call, decided deterministically
    /// from `(seed, site, call #)`.
    Probability(f64),
    /// Fire exactly once, on the k-th call (1-based).
    Nth(u64),
    /// Fire on every k-th call (k, 2k, 3k, ...).
    Every(u64),
}

impl Trigger {
    fn parse(s: &str) -> Result<Self, String> {
        if let Some(p) = s.strip_prefix('p') {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability in trigger '{s}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0,1] in trigger '{s}'"));
            }
            return Ok(Trigger::Probability(p));
        }
        if let Some(n) = s.strip_prefix("nth") {
            let n: u64 = n.parse().map_err(|_| format!("bad call index in trigger '{s}'"))?;
            if n == 0 {
                return Err("nth trigger is 1-based; nth0 never fires".to_string());
            }
            return Ok(Trigger::Nth(n));
        }
        if let Some(n) = s.strip_prefix("every") {
            let n: u64 = n.parse().map_err(|_| format!("bad period in trigger '{s}'"))?;
            if n == 0 {
                return Err("every0 is not a valid period".to_string());
            }
            return Ok(Trigger::Every(n));
        }
        Err(format!(
            "unknown trigger '{s}' (expected pX, nthK, or everyK)"
        ))
    }
}

/// One site's injection rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    pub site: String,
    pub trigger: Trigger,
    pub mode: FaultMode,
}

/// A parsed, seeded fault plan. Install it process-wide with
/// [`install`]; tear it down with [`clear`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse the compact spec grammar:
    /// `seed=N;site=trigger[:mode];site=trigger[:mode];...`
    ///
    /// Triggers: `pX` (probability, e.g. `p0.05`), `nthK` (fire once on
    /// call K, 1-based), `everyK` (fire on every K-th call). Mode
    /// defaults to `error`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got '{part}'"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("bad seed '{value}'"))?;
                continue;
            }
            if !sites::all().contains(&key) {
                return Err(format!(
                    "unknown fault site '{key}' (known: {})",
                    sites::all().join(", ")
                ));
            }
            let (trigger, mode) = match value.split_once(':') {
                Some((t, m)) => (Trigger::parse(t.trim())?, FaultMode::parse(m.trim())?),
                None => (Trigger::parse(value)?, FaultMode::Error),
            };
            rules.push(FaultRule { site: key.to_string(), trigger, mode });
        }
        if rules.is_empty() {
            return Err("fault plan has no rules".to_string());
        }
        Ok(FaultPlan { seed, rules })
    }
}

/// One installed rule plus its live counters.
struct ActiveRule {
    rule: FaultRule,
    calls: AtomicU64,
    injected: AtomicU64,
}

struct Installed {
    seed: u64,
    /// site -> rules for that site (a site may carry several rules).
    by_site: HashMap<String, Vec<ActiveRule>>,
}

/// Fast inactive gate: one relaxed load on every `check` when no plan
/// is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<Installed>>> = Mutex::new(None);

/// Injected panics unwind through this lock's critical sections only at
/// the call sites, never while the lock is held — but a poisoned lock
/// must not disable fault accounting, so poisoning is swallowed.
fn plan_lock() -> MutexGuard<'static, Option<Arc<Installed>>> {
    PLAN.lock().unwrap_or_else(|e| e.into_inner())
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a: cheap, stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Install a plan process-wide. Replaces any existing plan.
pub fn install(plan: FaultPlan) {
    let mut by_site: HashMap<String, Vec<ActiveRule>> = HashMap::new();
    for rule in plan.rules {
        by_site.entry(rule.site.clone()).or_default().push(ActiveRule {
            rule,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        });
    }
    *plan_lock() = Some(Arc::new(Installed { seed: plan.seed, by_site }));
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the installed plan; all sites go back to the one-load fast
/// path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *plan_lock() = None;
}

/// Whether any plan is installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install a plan from the `INFERA_FAULTS` env var, if set. Returns an
/// error only for a malformed spec; unset means no-op. Call explicitly
/// from binaries — libraries never read the environment on their own.
pub fn init_from_env() -> Result<bool, String> {
    match std::env::var("INFERA_FAULTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            install(FaultPlan::parse(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Consult the plan at an injection site. Returns the fault to inject
/// on this call, or `None`. When no plan is installed this is a single
/// relaxed atomic load.
pub fn check(site: &str) -> Option<FaultMode> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let installed = plan_lock().clone()?;
    let rules = installed.by_site.get(site)?;
    for active in rules {
        let call = active.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let fires = match active.rule.trigger {
            Trigger::Probability(p) => {
                let h = splitmix64(installed.seed ^ site_hash(site) ^ call);
                // Map the hash to [0,1) with 53-bit precision.
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                u < p
            }
            Trigger::Nth(n) => call == n,
            Trigger::Every(n) => call % n == 0,
        };
        if fires {
            active.injected.fetch_add(1, Ordering::Relaxed);
            return Some(active.rule.mode);
        }
    }
    None
}

/// Per-site injected-fault counts for the installed plan (empty when
/// inactive). Chaos tests reconcile these against `fault.*` metrics.
pub fn injected_counts() -> HashMap<String, u64> {
    let Some(installed) = plan_lock().clone() else {
        return HashMap::new();
    };
    let mut out = HashMap::new();
    for (site, rules) in &installed.by_site {
        let n: u64 = rules.iter().map(|r| r.injected.load(Ordering::Relaxed)).sum();
        out.insert(site.clone(), n);
    }
    out
}

/// Total faults injected by the installed plan.
pub fn total_injected() -> u64 {
    injected_counts().values().sum()
}

/// Format an injected-fault error message for a site.
pub fn injected_error(site: &str) -> String {
    format!("{INJECTED_MARKER}: {site}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The plan is process-global; serialize tests that install one.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42; storage.read=p0.05:error; llm.call=nth3:panic; cache.result=every10:miss",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, "storage.read");
        assert_eq!(plan.rules[0].trigger, Trigger::Probability(0.05));
        assert_eq!(plan.rules[0].mode, FaultMode::Error);
        assert_eq!(plan.rules[1].trigger, Trigger::Nth(3));
        assert_eq!(plan.rules[1].mode, FaultMode::Panic);
        assert_eq!(plan.rules[2].trigger, Trigger::Every(10));
        assert_eq!(plan.rules[2].mode, FaultMode::Miss);
    }

    #[test]
    fn parse_defaults_mode_to_error() {
        let plan = FaultPlan::parse("seed=1;storage.append=nth1").unwrap();
        assert_eq!(plan.rules[0].mode, FaultMode::Error);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("seed=1").is_err(), "no rules");
        assert!(FaultPlan::parse("seed=1;bogus.site=p0.5").is_err());
        assert!(FaultPlan::parse("seed=1;storage.read=p1.5").is_err());
        assert!(FaultPlan::parse("seed=1;storage.read=nth0").is_err());
        assert!(FaultPlan::parse("seed=1;storage.read=every0").is_err());
        assert!(FaultPlan::parse("seed=1;storage.read=sometimes").is_err());
        assert!(FaultPlan::parse("seed=1;storage.read=p0.5:melt").is_err());
    }

    #[test]
    fn inactive_check_returns_none() {
        let _g = TEST_LOCK.lock();
        clear();
        assert!(!is_active());
        assert_eq!(check(sites::STORAGE_READ), None);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = TEST_LOCK.lock();
        install(FaultPlan::parse("seed=7;storage.read=nth3:corrupt").unwrap());
        let fired: Vec<Option<FaultMode>> =
            (0..6).map(|_| check(sites::STORAGE_READ)).collect();
        assert_eq!(
            fired,
            vec![None, None, Some(FaultMode::Corrupt), None, None, None]
        );
        assert_eq!(total_injected(), 1);
        clear();
    }

    #[test]
    fn every_trigger_fires_periodically() {
        let _g = TEST_LOCK.lock();
        install(FaultPlan::parse("seed=7;llm.call=every2:error").unwrap());
        let fired: Vec<bool> = (0..6).map(|_| check(sites::LLM_CALL).is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
        assert_eq!(injected_counts()["llm.call"], 3);
        clear();
    }

    #[test]
    fn probability_trigger_is_deterministic_and_calibrated() {
        let _g = TEST_LOCK.lock();
        let run = |seed: u64| -> Vec<bool> {
            install(
                FaultPlan::parse(&format!("seed={seed};storage.read=p0.2:error")).unwrap(),
            );
            let v = (0..1000).map(|_| check(sites::STORAGE_READ).is_some()).collect();
            clear();
            v
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed, same call sequence, same injections");
        let c = run(100);
        assert_ne!(a, c, "different seed gives a different injection pattern");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(
            (120..=280).contains(&hits),
            "p0.2 over 1000 calls hit {hits} times"
        );
    }

    #[test]
    fn sites_are_isolated() {
        let _g = TEST_LOCK.lock();
        install(FaultPlan::parse("seed=1;storage.read=every1:error").unwrap());
        assert!(check(sites::STORAGE_READ).is_some());
        assert_eq!(check(sites::LLM_CALL), None);
        clear();
    }

    #[test]
    fn injected_error_carries_marker() {
        assert!(injected_error(sites::STORAGE_READ).contains(INJECTED_MARKER));
    }
}
