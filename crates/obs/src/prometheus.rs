//! Prometheus text exposition (format 0.0.4) for a [`MetricsRegistry`].
//!
//! The registry's dotted lowercase names (`serve.jobs_completed`) are
//! mapped to Prometheus conventions: dots become underscores and every
//! family is prefixed `infera_`, so `serve.jobs_completed` scrapes as
//! `infera_serve_jobs_completed`. Counters and gauges emit one sample;
//! histograms emit the full cumulative `_bucket{le="..."}` series
//! (including `+Inf`) plus `_sum` and `_count`, straight from the
//! fixed-bucket counts — no quantile estimation involved.
//!
//! Output is deterministic: families render in `BTreeMap` name order
//! and numbers use a stable formatting (integral values print without a
//! fractional part). The golden test in `crates/obs/tests/golden.rs`
//! pins the exact format.

use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// Map a registry metric name to a Prometheus family name:
/// `infera_` prefix, every non-`[a-zA-Z0-9_:]` byte replaced by `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("infera_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Stable number formatting: integral values (the overwhelmingly common
/// case for bucket bounds and sums of millisecond counts) print without
/// a trailing `.0`, everything else via Rust's shortest-roundtrip float.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render the registry as Prometheus text exposition.
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam} {value}");
    }
    for (name, value) in &snap.gauges {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", fmt_f64(*value));
    }
    // Histograms need real buckets, not the quantile summary.
    let mut hist_names = registry.histogram_names();
    hist_names.sort_unstable();
    for name in hist_names {
        let Some(hist) = registry.histogram_full(&name) else {
            continue;
        };
        let fam = sanitize_name(&name);
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds().iter().zip(hist.bucket_counts()) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{fam}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_f64(*bound)
            );
        }
        let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{fam}_sum {}", fmt_f64(hist.sum()));
        let _ = writeln!(out, "{fam}_count {}", hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_names;

    #[test]
    fn sanitize_prefixes_and_replaces() {
        assert_eq!(sanitize_name("serve.jobs_completed"), "infera_serve_jobs_completed");
        assert_eq!(sanitize_name("a-b c.d"), "infera_a_b_c_d");
    }

    #[test]
    fn numbers_format_deterministically() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-3.0), "-3");
    }

    #[test]
    fn counters_gauges_histograms_render() {
        let m = MetricsRegistry::new();
        m.inc(metric_names::SERVE_JOBS_COMPLETED, 4);
        m.set_gauge(metric_names::SERVE_QUEUE_DEPTH, 2.0);
        m.observe_with_buckets(metric_names::SERVE_RUN_MS, 3.0, &[1.0, 5.0, 10.0]);
        m.observe_with_buckets(metric_names::SERVE_RUN_MS, 7.0, &[1.0, 5.0, 10.0]);
        m.observe_with_buckets(metric_names::SERVE_RUN_MS, 100.0, &[1.0, 5.0, 10.0]);
        let text = render_prometheus(&m);
        assert!(text.contains("# TYPE infera_serve_jobs_completed counter"));
        assert!(text.contains("infera_serve_jobs_completed 4"));
        assert!(text.contains("# TYPE infera_serve_queue_depth gauge"));
        assert!(text.contains("infera_serve_queue_depth 2"));
        assert!(text.contains("# TYPE infera_serve_run_ms histogram"));
        // Cumulative buckets: ≤1 → 0, ≤5 → 1, ≤10 → 2, +Inf → 3.
        assert!(text.contains("infera_serve_run_ms_bucket{le=\"1\"} 0"));
        assert!(text.contains("infera_serve_run_ms_bucket{le=\"5\"} 1"));
        assert!(text.contains("infera_serve_run_ms_bucket{le=\"10\"} 2"));
        assert!(text.contains("infera_serve_run_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("infera_serve_run_ms_sum 110"));
        assert!(text.contains("infera_serve_run_ms_count 3"));
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(render_prometheus(&MetricsRegistry::new()), "");
    }
}
