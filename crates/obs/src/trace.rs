//! The span/event tracing core.
//!
//! A [`Tracer`] records one run's execution as a tree of spans. Spans are
//! RAII guards: [`Tracer::span`] opens a span as a child of the innermost
//! open span, and dropping the guard (or calling [`SpanGuard::finish`])
//! closes it. Spans carry key-value attributes and point events; the
//! convention-bearing attribute is `stage` — spans tagged with it are the
//! per-agent cost-attribution roots the exporters aggregate by (see
//! [`crate::stage_breakdown`]).
//!
//! Timestamps are microseconds relative to the tracer's creation, so a
//! trace is location-independent and two traces of the same seeded run
//! have identical shape (durations differ, structure does not).
//!
//! Concurrency: every operation locks one `parking_lot` mutex, so a
//! tracer may be shared freely across threads (the sandbox gateway and
//! rayon loaders record into the run's tracer). Parenting uses an
//! open-span stack, which assumes spans of one *logical* run open and
//! close in nested order — the supervisor loop is sequential, so this
//! holds; out-of-order drops degrade to a flatter tree, never a panic.
//! The same degrade-don't-panic rule applies to span-id lookups: a
//! guard whose span record is somehow gone (it cannot happen through
//! the public API, but a serve worker must not be killable by it)
//! silently drops the operation instead of indexing out of bounds.
//!
//! Live streaming: [`Tracer::attach_bus`] connects a tracer to an
//! [`EventBus`](crate::EventBus). From then on every span open, span
//! close, and point event is also published to the bus, tagged with the
//! run-identity attributes supplied at attach time. Publishing happens
//! *after* the tracer's own lock is released and is drop-not-block, so
//! the hot path cannot stall on a slow subscriber.

use crate::bus::{BusEventKind, EventBus};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a span within one tracer (its index in creation order).
pub type SpanId = u64;

/// An attribute value: string, integer, float, or bool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum AttrValue {
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl AttrValue {
    /// The string payload, if this is a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a u64, if numeric and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttrValue::U64(v) => Some(*v),
            AttrValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// A point event attached to a span (or to the tracer, when no span was
/// open — see [`TraceSnapshot::orphan_events`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub name: String,
    /// Microseconds since tracer creation.
    pub at_us: u64,
    pub attrs: BTreeMap<String, AttrValue>,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub name: String,
    /// Microseconds since tracer creation.
    pub start_us: u64,
    /// Set when the guard closes; `None` for still-open spans.
    pub end_us: Option<u64>,
    pub attrs: BTreeMap<String, AttrValue>,
    pub events: Vec<TraceEvent>,
}

impl SpanRecord {
    /// Span duration in microseconds (0 while still open).
    pub fn dur_us(&self) -> u64 {
        self.end_us
            .map_or(0, |end| end.saturating_sub(self.start_us))
    }
}

/// An owned copy of a tracer's state, safe to inspect/export while the
/// run continues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSnapshot {
    pub spans: Vec<SpanRecord>,
    /// Events recorded while no span was open (e.g. a model call outside
    /// any instrumented section). Exporters attribute these to the
    /// `(untraced)` stage so totals still reconcile.
    pub orphan_events: Vec<TraceEvent>,
}

/// A tracer's connection to the live event bus: the bus handle plus the
/// run-identity attributes stamped on every published event.
#[derive(Debug, Clone)]
struct BusSink {
    bus: EventBus,
    run: Arc<BTreeMap<String, AttrValue>>,
}

#[derive(Debug)]
struct TracerInner {
    origin: Instant,
    spans: Vec<SpanRecord>,
    /// Ids of currently-open spans, innermost last.
    stack: Vec<SpanId>,
    orphan_events: Vec<TraceEvent>,
    sink: Option<BusSink>,
}

/// A per-run trace collector. Cheap to clone (`Arc`); clones share state.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

fn attr_map(attrs: &[(&str, AttrValue)]) -> BTreeMap<String, AttrValue> {
    attrs
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect()
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                origin: Instant::now(),
                spans: Vec::new(),
                stack: Vec::new(),
                orphan_events: Vec::new(),
                sink: None,
            })),
        }
    }

    /// Connect this tracer to a live [`EventBus`]. Subsequent span
    /// opens/closes and point events are published to the bus tagged
    /// with `run_attrs` (job id, question, salt — whatever identifies
    /// this run to a subscriber watching many concurrent runs).
    pub fn attach_bus(&self, bus: EventBus, run_attrs: &[(&str, AttrValue)]) {
        let sink = BusSink {
            bus,
            run: Arc::new(attr_map(run_attrs)),
        };
        self.inner.lock().sink = Some(sink);
    }

    /// The attached bus, if any.
    pub fn bus(&self) -> Option<EventBus> {
        self.inner.lock().sink.as_ref().map(|s| s.bus.clone())
    }

    /// Clone the sink out of the lock iff someone is listening, so the
    /// no-subscriber cost is one atomic load on top of normal tracing.
    fn live_sink(inner: &TracerInner) -> Option<BusSink> {
        inner
            .sink
            .as_ref()
            .filter(|s| s.bus.is_active())
            .cloned()
    }

    fn publish(sink: Option<BusSink>, at_us: u64, kind: BusEventKind) {
        if let Some(sink) = sink {
            sink.bus.publish(at_us, &sink.run, kind);
        }
    }

    /// Open a span as a child of the innermost open span (or as a root).
    pub fn span(&self, name: &str) -> SpanGuard {
        let mut inner = self.inner.lock();
        let start_us = inner.origin.elapsed().as_micros() as u64;
        let id = inner.spans.len() as SpanId;
        let parent = inner.stack.last().copied();
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            start_us,
            end_us: None,
            attrs: BTreeMap::new(),
            events: Vec::new(),
        });
        inner.stack.push(id);
        let sink = Tracer::live_sink(&inner);
        drop(inner);
        Tracer::publish(
            sink,
            start_us,
            BusEventKind::SpanOpened {
                id,
                parent,
                name: name.to_string(),
            },
        );
        SpanGuard {
            tracer: self.clone(),
            id,
            finished: false,
        }
    }

    /// Record a point event on the innermost open span, or as an orphan
    /// event when no span is open.
    pub fn event(&self, name: &str, attrs: &[(&str, AttrValue)]) {
        let mut inner = self.inner.lock();
        let at_us = inner.origin.elapsed().as_micros() as u64;
        let ev = TraceEvent {
            name: name.to_string(),
            at_us,
            attrs: attr_map(attrs),
        };
        match inner
            .stack
            .last()
            .copied()
            .and_then(|id| inner.spans.get_mut(id as usize))
        {
            Some(span) => span.events.push(ev.clone()),
            None => inner.orphan_events.push(ev.clone()),
        }
        let sink = Tracer::live_sink(&inner);
        drop(inner);
        Tracer::publish(
            sink,
            at_us,
            BusEventKind::Point {
                name: ev.name,
                attrs: ev.attrs,
            },
        );
    }

    /// Microseconds since the tracer was created.
    pub fn elapsed_us(&self) -> u64 {
        self.inner.lock().origin.elapsed().as_micros() as u64
    }

    /// Wall time covered by the trace so far: from the first span's start
    /// to its end (or to now while it is still open). Zero with no spans.
    /// This is the run's wall-clock when the outermost span wraps the
    /// whole pipeline, which is the instrumentation convention.
    pub fn run_elapsed_us(&self) -> u64 {
        let inner = self.inner.lock();
        match inner.spans.first() {
            Some(root) => {
                let end = root
                    .end_us
                    .unwrap_or_else(|| inner.origin.elapsed().as_micros() as u64);
                end.saturating_sub(root.start_us)
            }
            None => 0,
        }
    }

    /// Number of spans recorded so far.
    pub fn n_spans(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Owned copy of the current state.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock();
        TraceSnapshot {
            spans: inner.spans.clone(),
            orphan_events: inner.orphan_events.clone(),
        }
    }

    fn close(&self, id: SpanId) -> u64 {
        let mut inner = self.inner.lock();
        let now = inner.origin.elapsed().as_micros() as u64;
        if let Some(pos) = inner.stack.iter().rposition(|&s| s == id) {
            inner.stack.remove(pos);
        }
        let Some(span) = inner.spans.get_mut(id as usize) else {
            return 0; // degraded: unknown span id, nothing to close
        };
        if span.end_us.is_none() {
            span.end_us = Some(now);
        }
        let dur_us = now.saturating_sub(span.start_us);
        let closed = (span.name.clone(), span.attrs.clone());
        let sink = Tracer::live_sink(&inner);
        drop(inner);
        Tracer::publish(
            sink,
            now,
            BusEventKind::SpanClosed {
                id,
                name: closed.0,
                dur_us,
                attrs: closed.1,
            },
        );
        dur_us
    }
}

/// RAII handle to an open span: closes the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    id: SpanId,
    finished: bool,
}

impl SpanGuard {
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Set (or overwrite) an attribute on this span.
    pub fn set_attr(&self, key: &str, value: impl Into<AttrValue>) {
        let mut inner = self.tracer.inner.lock();
        if let Some(span) = inner.spans.get_mut(self.id as usize) {
            span.attrs.insert(key.to_string(), value.into());
        }
    }

    /// Accumulate into a numeric attribute (starting from 0).
    pub fn add_u64(&self, key: &str, delta: u64) {
        let mut inner = self.tracer.inner.lock();
        if let Some(span) = inner.spans.get_mut(self.id as usize) {
            let base = span.attrs.get(key).and_then(AttrValue::as_u64).unwrap_or(0);
            span.attrs.insert(key.to_string(), AttrValue::U64(base + delta));
        }
    }

    /// Record a point event directly on this span.
    pub fn event(&self, name: &str, attrs: &[(&str, AttrValue)]) {
        let mut inner = self.tracer.inner.lock();
        let at_us = inner.origin.elapsed().as_micros() as u64;
        let ev = TraceEvent {
            name: name.to_string(),
            at_us,
            attrs: attr_map(attrs),
        };
        if let Some(span) = inner.spans.get_mut(self.id as usize) {
            span.events.push(ev.clone());
        }
        let sink = Tracer::live_sink(&inner);
        drop(inner);
        Tracer::publish(
            sink,
            at_us,
            BusEventKind::Point {
                name: ev.name,
                attrs: ev.attrs,
            },
        );
    }

    /// Microseconds since this span opened.
    pub fn elapsed_us(&self) -> u64 {
        let inner = self.tracer.inner.lock();
        let now = inner.origin.elapsed().as_micros() as u64;
        inner
            .spans
            .get(self.id as usize)
            .map_or(0, |span| now.saturating_sub(span.start_us))
    }

    /// Close the span now and return its duration in microseconds.
    pub fn finish(mut self) -> u64 {
        self.finished = true;
        self.tracer.close(self.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            self.tracer.close(self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_under_open_parent() {
        let t = Tracer::new();
        let root = t.span("run");
        let child = t.span("step");
        let grand = t.span("attempt");
        drop(grand);
        drop(child);
        let sibling = t.span("step2");
        drop(sibling);
        drop(root);

        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].parent, Some(1));
        assert_eq!(snap.spans[3].parent, Some(0));
        assert!(snap.spans.iter().all(|s| s.end_us.is_some()));
    }

    #[test]
    fn attrs_and_events_land_on_spans() {
        let t = Tracer::new();
        {
            let s = t.span("work");
            s.set_attr("stage", "sql");
            s.add_u64("rows", 3);
            s.add_u64("rows", 4);
            s.event("llm_call", &[("tokens", AttrValue::from(10u64))]);
        }
        t.event("late", &[]); // no open span -> orphan
        let snap = t.snapshot();
        let s = &snap.spans[0];
        assert_eq!(s.attrs.get("stage").and_then(AttrValue::as_str), Some("sql"));
        assert_eq!(s.attrs.get("rows").and_then(AttrValue::as_u64), Some(7));
        assert_eq!(s.events.len(), 1);
        assert_eq!(snap.orphan_events.len(), 1);
    }

    #[test]
    fn finish_returns_duration_and_run_elapsed_tracks_root() {
        let t = Tracer::new();
        assert_eq!(t.run_elapsed_us(), 0);
        let root = t.span("run");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let d = root.finish();
        assert!(d >= 1_000, "duration {d}us");
        let measured = t.run_elapsed_us();
        assert!(measured >= 1_000 && measured <= t.elapsed_us());
    }

    #[test]
    fn shared_across_threads() {
        let t = Tracer::new();
        let root = t.span("run");
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    t.event("tick", &[("i", AttrValue::from(i as u64))]);
                });
            }
        });
        drop(root);
        let snap = t.snapshot();
        assert_eq!(snap.spans[0].events.len(), 4);
    }

    #[test]
    fn attached_bus_sees_opens_closes_and_points() {
        let t = Tracer::new();
        let bus = EventBus::new();
        t.attach_bus(bus.clone(), &[("job", AttrValue::from(7u64))]);
        let sub = bus.subscribe(32);
        {
            let s = t.span("analysis");
            s.set_attr("stage", "planner");
            s.event("llm_call", &[("tokens", AttrValue::from(12u64))]);
        }
        t.event("orphan", &[]);
        let events = sub.drain();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
        assert_eq!(kinds, ["span_opened", "point", "span_closed", "point"]);
        // Run attrs ride on every event; close carries final span attrs.
        assert!(events
            .iter()
            .all(|e| e.run.get("job").and_then(AttrValue::as_u64) == Some(7)));
        match &events[2].kind {
            BusEventKind::SpanClosed { name, attrs, .. } => {
                assert_eq!(name, "analysis");
                assert_eq!(attrs.get("stage").and_then(AttrValue::as_str), Some("planner"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The trace itself is unchanged by streaming.
        assert_eq!(t.snapshot().spans.len(), 1);
    }

    #[test]
    fn unsubscribed_bus_adds_no_events_and_no_failures() {
        let t = Tracer::new();
        let bus = EventBus::new();
        t.attach_bus(bus.clone(), &[]);
        drop(t.span("quiet"));
        assert_eq!(bus.events_published(), 0);
    }

    #[test]
    fn serde_roundtrip_snapshot() {
        let t = Tracer::new();
        {
            let s = t.span("a");
            s.set_attr("k", 1u64);
            s.set_attr("s", "text");
            s.set_attr("f", 1.5f64);
            s.set_attr("b", true);
        }
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TraceSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
