//! The live event bus: span open/close and point events streamed to
//! subscribers while a run executes.
//!
//! PR 1's tracing was post-hoc — a run's trace became inspectable only
//! after the run finished and its snapshot was exported. The bus makes
//! the same stream observable *live*: a [`Tracer`] with an attached bus
//! (see [`Tracer::attach_bus`]) publishes every span open, span close,
//! and point event as it happens, and any number of subscribers consume
//! them through bounded channels.
//!
//! Backpressure semantics are drop-not-block, chosen for the hot path:
//!
//! * publishing never blocks and never allocates when nobody listens —
//!   [`EventBus::is_active`] is a single relaxed atomic load;
//! * each subscriber owns a **bounded** channel sized at subscribe time.
//!   A full channel drops the event *for that subscriber only* and
//!   counts the drop (per-subscriber via [`Subscription::dropped`],
//!   process-wide via [`EventBus::events_dropped`], exported as the
//!   `obs.events_dropped` counter). A slow dashboard can never stall a
//!   serve worker;
//! * a dropped [`Subscription`] is detected on the next publish and
//!   unregistered.
//!
//! The bus is `Clone` (shared handle) and carries its own clock so that
//! non-tracer publishers (the serve scheduler's job lifecycle events)
//! get coherent timestamps.
//!
//! [`Tracer`]: crate::Tracer
//! [`Tracer::attach_bus`]: crate::Tracer::attach_bus

use crate::trace::AttrValue;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What happened. Externally tagged (`{"SpanOpened": {...}}`) so the
/// JSONL stream stays self-describing and schema-stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BusEventKind {
    /// A span opened (`id`/`parent` are tracer-local span ids).
    SpanOpened {
        id: u64,
        parent: Option<u64>,
        name: String,
    },
    /// A span closed; `attrs` carries the span's final attributes (the
    /// `stage` tag, redo counts, outcomes — attributes are typically set
    /// between open and close, so the close event is the complete one).
    SpanClosed {
        id: u64,
        name: String,
        dur_us: u64,
        attrs: BTreeMap<String, AttrValue>,
    },
    /// A point event recorded on a span (or as an orphan).
    Point {
        name: String,
        attrs: BTreeMap<String, AttrValue>,
    },
    /// A lifecycle event published directly by an embedder (the serve
    /// scheduler's job queued/started/completed/rejected stream).
    Job {
        name: String,
        attrs: BTreeMap<String, AttrValue>,
    },
}

impl BusEventKind {
    /// Short label for one-line rendering.
    pub fn label(&self) -> &'static str {
        match self {
            BusEventKind::SpanOpened { .. } => "span_opened",
            BusEventKind::SpanClosed { .. } => "span_closed",
            BusEventKind::Point { .. } => "point",
            BusEventKind::Job { .. } => "job",
        }
    }
}

/// One published event: a global sequence number, the publisher-relative
/// timestamp, the run-identity attributes the publisher was tagged with
/// (job id, question, salt), and the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusEvent {
    pub seq: u64,
    /// Microseconds since the publisher's origin (tracer creation for
    /// span/point events, bus creation for job events).
    pub at_us: u64,
    /// Run-identity attributes (empty for bus-level events).
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub run: BTreeMap<String, AttrValue>,
    pub kind: BusEventKind,
}

impl BusEvent {
    /// The serve-layer job id this event belongs to, if any: span/point
    /// events carry it in the publisher's run-identity attributes (set by
    /// `Tracer::attach_bus`), job lifecycle events in their own attrs.
    /// Used by per-job / per-client event routing in the serving layer.
    pub fn job_id(&self) -> Option<u64> {
        if let Some(id) = self.run.get("job").and_then(AttrValue::as_u64) {
            return Some(id);
        }
        match &self.kind {
            BusEventKind::Job { attrs, .. } => attrs.get("job").and_then(AttrValue::as_u64),
            _ => None,
        }
    }
}

struct SubscriberSlot {
    tx: SyncSender<BusEvent>,
    dropped: Arc<AtomicU64>,
}

struct BusInner {
    origin: Instant,
    seq: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
    /// Cheap publish-side gate: true iff `subscribers` is non-empty.
    active: AtomicBool,
    subscribers: Mutex<Vec<SubscriberSlot>>,
}

/// The bus handle. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct EventBus {
    inner: Arc<BusInner>,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("published", &self.events_published())
            .field("dropped", &self.events_dropped())
            .finish_non_exhaustive()
    }
}

impl Default for EventBus {
    fn default() -> Self {
        EventBus::new()
    }
}

impl EventBus {
    pub fn new() -> EventBus {
        EventBus {
            inner: Arc::new(BusInner {
                origin: Instant::now(),
                seq: AtomicU64::new(0),
                published: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                active: AtomicBool::new(false),
                subscribers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether anyone is subscribed. Publishers check this before
    /// assembling an event, so an unobserved bus costs one atomic load.
    pub fn is_active(&self) -> bool {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Register a subscriber with a channel bounded at `capacity`
    /// events. Events published while the channel is full are dropped
    /// for this subscriber and counted, never blocked on.
    pub fn subscribe(&self, capacity: usize) -> Subscription {
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        let mut subs = self.inner.subscribers.lock();
        subs.push(SubscriberSlot {
            tx,
            dropped: dropped.clone(),
        });
        self.inner.active.store(true, Ordering::Relaxed);
        Subscription { rx, dropped }
    }

    /// Publish an event to every live subscriber. Full subscriber
    /// channels drop (and count); disconnected subscribers are pruned.
    /// No-op when nobody is subscribed.
    pub fn publish(&self, at_us: u64, run: &BTreeMap<String, AttrValue>, kind: BusEventKind) {
        if !self.is_active() {
            return;
        }
        let mut subs = self.inner.subscribers.lock();
        if subs.is_empty() {
            return;
        }
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.inner.published.fetch_add(1, Ordering::Relaxed);
        let event = BusEvent {
            seq,
            at_us,
            run: run.clone(),
            kind,
        };
        subs.retain(|slot| match slot.tx.try_send(event.clone()) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                slot.dropped.fetch_add(1, Ordering::Relaxed);
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
        if subs.is_empty() {
            self.inner.active.store(false, Ordering::Relaxed);
        }
    }

    /// Publish an embedder lifecycle event (kind [`BusEventKind::Job`])
    /// stamped with the bus's own clock.
    pub fn publish_job(&self, name: &str, attrs: &[(&str, AttrValue)]) {
        if !self.is_active() {
            return;
        }
        let at_us = self.inner.origin.elapsed().as_micros() as u64;
        let attrs: BTreeMap<String, AttrValue> = attrs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        self.publish(
            at_us,
            &BTreeMap::new(),
            BusEventKind::Job {
                name: name.to_string(),
                attrs,
            },
        );
    }

    /// Total events delivered to at least one subscriber channel.
    pub fn events_published(&self) -> u64 {
        self.inner.published.load(Ordering::Relaxed)
    }

    /// Total per-subscriber drops (an event dropped by two slow
    /// subscribers counts twice).
    pub fn events_dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

/// A subscriber's receiving end: a bounded queue of [`BusEvent`]s plus
/// this subscriber's drop counter. Dropping the subscription
/// unregisters it (detected at the next publish).
pub struct Subscription {
    rx: Receiver<BusEvent>,
    dropped: Arc<AtomicU64>,
}

impl Subscription {
    /// Next buffered event, if any (non-blocking).
    pub fn try_recv(&self) -> Option<BusEvent> {
        self.rx.try_recv().ok()
    }

    /// Block up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<BusEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drain everything currently buffered.
    pub fn drain(&self) -> Vec<BusEvent> {
        let mut out = Vec::new();
        while let Ok(ev) = self.rx.try_recv() {
            out.push(ev);
        }
        out
    }

    /// Events dropped for this subscriber because its channel was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(name: &str) -> BusEventKind {
        BusEventKind::Point {
            name: name.to_string(),
            attrs: BTreeMap::new(),
        }
    }

    #[test]
    fn inactive_bus_publishes_nothing() {
        let bus = EventBus::new();
        assert!(!bus.is_active());
        bus.publish(0, &BTreeMap::new(), point("x"));
        assert_eq!(bus.events_published(), 0);
    }

    #[test]
    fn subscriber_receives_in_order_with_seq() {
        let bus = EventBus::new();
        let sub = bus.subscribe(16);
        assert!(bus.is_active());
        for i in 0..5 {
            bus.publish(i, &BTreeMap::new(), point(&format!("e{i}")));
        }
        let got = sub.drain();
        assert_eq!(got.len(), 5);
        for (i, ev) in got.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.at_us, i as u64);
        }
        assert_eq!(sub.dropped(), 0);
    }

    #[test]
    fn full_channel_drops_and_counts_without_blocking() {
        let bus = EventBus::new();
        let sub = bus.subscribe(2);
        for i in 0..10 {
            bus.publish(i, &BTreeMap::new(), point("e"));
        }
        assert_eq!(sub.dropped(), 8);
        assert_eq!(bus.events_dropped(), 8);
        assert_eq!(bus.events_published(), 10);
        assert_eq!(sub.drain().len(), 2, "bounded channel kept the first 2");
    }

    #[test]
    fn slow_subscriber_does_not_affect_fast_one() {
        let bus = EventBus::new();
        let slow = bus.subscribe(1);
        let fast = bus.subscribe(64);
        for i in 0..8 {
            bus.publish(i, &BTreeMap::new(), point("e"));
        }
        assert_eq!(fast.drain().len(), 8);
        assert_eq!(fast.dropped(), 0);
        assert_eq!(slow.dropped(), 7);
    }

    #[test]
    fn dropped_subscription_is_pruned_and_bus_goes_idle() {
        let bus = EventBus::new();
        let sub = bus.subscribe(4);
        bus.publish(0, &BTreeMap::new(), point("a"));
        drop(sub);
        // Next publish detects the disconnect and deactivates the bus.
        bus.publish(1, &BTreeMap::new(), point("b"));
        assert!(!bus.is_active());
    }

    #[test]
    fn job_events_carry_attrs_and_serialize() {
        let bus = EventBus::new();
        let sub = bus.subscribe(4);
        bus.publish_job("job_started", &[("job", AttrValue::from(3u64))]);
        let ev = sub.try_recv().expect("event");
        match &ev.kind {
            BusEventKind::Job { name, attrs } => {
                assert_eq!(name, "job_started");
                assert_eq!(attrs.get("job").and_then(AttrValue::as_u64), Some(3));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let json = serde_json::to_string(&ev).unwrap();
        let back: BusEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn job_id_extracted_from_run_attrs_or_job_attrs() {
        let bus = EventBus::new();
        let sub = bus.subscribe(8);
        // Span-style event with run-identity attrs.
        let mut run = BTreeMap::new();
        run.insert("job".to_string(), AttrValue::from(42u64));
        bus.publish(0, &run, point("x"));
        // Lifecycle event with the id in its own attrs.
        bus.publish_job("job_started", &[("job", AttrValue::from(7u64))]);
        // No job anywhere.
        bus.publish(1, &BTreeMap::new(), point("y"));
        let got = sub.drain();
        assert_eq!(got[0].job_id(), Some(42));
        assert_eq!(got[1].job_id(), Some(7));
        assert_eq!(got[2].job_id(), None);
    }

    #[test]
    fn concurrent_publishers_never_panic_or_block() {
        let bus = EventBus::new();
        let sub = bus.subscribe(8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let bus = bus.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        bus.publish(t * 100 + i, &BTreeMap::new(), point("e"));
                    }
                });
            }
        });
        let received = sub.drain().len() as u64;
        assert_eq!(received + sub.dropped(), 400);
    }
}
