//! Process-wide metrics aggregation.
//!
//! Every run owns its own [`MetricsRegistry`] (per-run isolation keeps
//! reports reproducible), but a serving process needs one number for
//! "SQL queries executed since start", not one per run. [`GlobalMetrics`]
//! is that aggregation point: the serve scheduler absorbs each finished
//! job's registry into it, and operational surfaces (`infera serve
//! --stats-every`, `infera stats`, the Prometheus exposition) read from
//! it.
//!
//! Merge semantics follow [`MetricsRegistry::merge_from`]: counters and
//! histogram buckets add (exact when bucket bounds agree, which they do
//! for everything using the default ladder), gauges are last-write-wins.
//! Live process-level instruments (queue depth, bus drop counts) should
//! be recorded directly on [`GlobalMetrics::registry`] rather than
//! merged, so they are not double-counted.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct GlobalInner {
    registry: MetricsRegistry,
    runs_merged: AtomicU64,
    started: Instant,
}

/// Process-wide metrics aggregator. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct GlobalMetrics {
    inner: Arc<GlobalInner>,
}

impl Default for GlobalMetrics {
    fn default() -> Self {
        GlobalMetrics::new()
    }
}

impl std::fmt::Debug for GlobalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalMetrics")
            .field("runs_merged", &self.runs_merged())
            .finish_non_exhaustive()
    }
}

impl GlobalMetrics {
    pub fn new() -> GlobalMetrics {
        GlobalMetrics {
            inner: Arc::new(GlobalInner {
                registry: MetricsRegistry::new(),
                runs_merged: AtomicU64::new(0),
                started: Instant::now(),
            }),
        }
    }

    /// Fold one run's registry into the global aggregate.
    pub fn absorb(&self, run: &MetricsRegistry) {
        self.inner.registry.merge_from(run);
        self.inner.runs_merged.fetch_add(1, Ordering::Relaxed);
    }

    /// The aggregate registry itself — also the right place to record
    /// process-level instruments (queue depth gauges, scheduler
    /// counters) that have no per-run registry to live in.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// How many per-run registries have been absorbed.
    pub fn runs_merged(&self) -> u64 {
        self.inner.runs_merged.load(Ordering::Relaxed)
    }

    /// Milliseconds since this aggregator was created (process uptime
    /// for a server that creates it at startup).
    pub fn uptime_ms(&self) -> u64 {
        self.inner.started.elapsed().as_millis() as u64
    }

    /// Owned JSON-serializable snapshot of the aggregate.
    pub fn snapshot(&self) -> GlobalSnapshot {
        GlobalSnapshot {
            runs_merged: self.runs_merged(),
            uptime_ms: self.uptime_ms(),
            metrics: self.inner.registry.snapshot(),
        }
    }

    /// Prometheus text exposition of the aggregate (see
    /// [`crate::prometheus::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        crate::prometheus::render_prometheus(&self.inner.registry)
    }
}

/// Point-in-time JSON view of the global aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalSnapshot {
    pub runs_merged: u64,
    pub uptime_ms: u64,
    pub metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric_names;

    #[test]
    fn absorb_accumulates_across_runs() {
        let global = GlobalMetrics::new();
        for i in 0..3u64 {
            let run = MetricsRegistry::new();
            run.inc(metric_names::SQL_QUERIES, i + 1);
            run.observe(metric_names::SQL_EXEC_US, 100.0 * (i + 1) as f64);
            global.absorb(&run);
        }
        assert_eq!(global.runs_merged(), 3);
        assert_eq!(global.registry().counter(metric_names::SQL_QUERIES), 6);
        let h = global.registry().histogram(metric_names::SQL_EXEC_US).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 300.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let global = GlobalMetrics::new();
        let run = MetricsRegistry::new();
        run.inc(metric_names::RUN_REDOS, 2);
        run.set_gauge(metric_names::SERVE_QUEUE_DEPTH, 4.0);
        global.absorb(&run);
        let snap = global.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: GlobalSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.runs_merged, 1);
        assert_eq!(
            back.metrics.counters.get(metric_names::RUN_REDOS),
            Some(&2)
        );
    }

    #[test]
    fn concurrent_absorbs_are_safe() {
        let global = GlobalMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let global = global.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let run = MetricsRegistry::new();
                        run.inc(metric_names::SERVE_JOBS_COMPLETED, 1);
                        global.absorb(&run);
                    }
                });
            }
        });
        assert_eq!(global.runs_merged(), 100);
        assert_eq!(
            global.registry().counter(metric_names::SERVE_JOBS_COMPLETED),
            100
        );
    }
}
