//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with quantile summaries.
//!
//! All operations lock a single `parking_lot` mutex, so a registry may
//! be shared across threads (the eval harness fans runs across rayon;
//! the sandbox gateway executes on a worker thread). Names are plain
//! strings; the instrumentation convention is dotted lowercase, e.g.
//! `run.redos`, `sql.queries`, `sandbox.exec_us`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Well-known metric names shared across crates, so producers and the
/// report renderers agree without string drift.
pub mod names {
    /// On-disk (encoded) bytes written by table appends.
    pub const STORAGE_ENCODED_BYTES: &str = "storage.encoded_bytes";
    /// Raw-layout bytes those same appends represent; the ratio of the
    /// two counters is the realized compression ratio.
    pub const STORAGE_LOGICAL_BYTES: &str = "storage.logical_bytes";
    /// Rows a late-materializing scan never decoded because the
    /// predicate's selection vector rejected them.
    pub const SCAN_ROWS_PRUNED: &str = "scan.rows_pruned";
    /// Milliseconds spent building the shared join hash table (histogram;
    /// one observation per joined query).
    pub const JOIN_BUILD_MS: &str = "join.build_ms";
    /// Milliseconds spent probing the join table (histogram; one
    /// observation per scanned chunk).
    pub const JOIN_PROBE_MS: &str = "join.probe_ms";
    /// Radix partitions of the last join build (gauge; 1 = unpartitioned).
    pub const JOIN_PARTITIONS: &str = "join.partitions";
    /// Per-chunk group-by partials merged into final aggregates.
    pub const GROUPBY_PARTIALS_MERGED: &str = "groupby.partials_merged";
    /// Chunks answered by the dictionary-code group-by fast path
    /// (grouping on `u32` codes, no per-row string decode).
    pub const GROUPBY_DICT_FASTPATH_CHUNKS: &str = "groupby.dict_fastpath_chunks";
    /// Chunks answered by the dictionary-code join fast path (probing
    /// distinct dictionary entries instead of every row).
    pub const JOIN_DICT_FASTPATH_CHUNKS: &str = "join.dict_fastpath_chunks";
    /// Dictionary strings actually decoded on the fast paths — the
    /// savings story: compare against rows scanned.
    pub const DICT_STRINGS_DECODED: &str = "dict.strings_decoded";
}

/// A fixed-bucket histogram. `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit overflow bucket catches everything
/// above the last bound, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Default bucket bounds: a 1 / 2.5 / 5 ladder over nine decades,
    /// suitable for anything from microseconds to token counts.
    pub fn default_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(27);
        let mut decade = 1.0f64;
        for _ in 0..9 {
            bounds.push(decade);
            bounds.push(decade * 2.5);
            bounds.push(decade * 5.0);
            decade *= 10.0;
        }
        bounds
    }

    pub fn new(mut bounds: Vec<f64>) -> Histogram {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by walking cumulative
    /// bucket counts and interpolating linearly inside the target
    /// bucket. Bucket edges are clamped to the observed min/max, so the
    /// estimate never leaves the observed range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                let lower = if idx == 0 {
                    self.min
                } else {
                    self.bounds[idx - 1].max(self.min)
                };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx].min(self.max)
                } else {
                    self.max
                };
                let within = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return lower + within * (upper - lower);
            }
            cum = next;
        }
        self.max
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time quantile summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Owned copy of a registry's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Thread-safe metrics registry. Cheap to clone; clones share state.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<MetricsInner>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a counter by `delta` (created at 0 on first use).
    pub fn inc(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().gauges.get(name).copied()
    }

    /// Record an observation into a histogram with the default buckets.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(Histogram::default_bounds()))
            .observe(value);
    }

    /// Record into a histogram created with explicit bucket bounds. The
    /// bounds only apply on first creation of the named histogram.
    pub fn observe_with_buckets(&self, name: &str, value: f64, bounds: &[f64]) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    /// Quantile summary of a histogram, if it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner.lock().histograms.get(name).map(Histogram::summary)
    }

    /// Owned copy of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Human-readable dump of every metric, one per line.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "gauge   {name} = {v}");
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "hist    {name} count={} mean={:.2} p50={:.2} p90={:.2} p99={:.2} max={:.2}",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x", 2);
        m.inc("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.25);
        assert_eq!(m.gauge("g"), Some(1.25));
    }

    #[test]
    fn histogram_quantiles_on_uniform_distribution() {
        // 1..=1000 into buckets of width 100: quantiles interpolate to
        // the exact percentile values.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
        let mut h = Histogram::new(bounds);
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.p50 - 500.0).abs() < 1.5, "p50={}", s.p50);
        assert!((s.p90 - 900.0).abs() < 1.5, "p90={}", s.p90);
        assert!((s.p99 - 990.0).abs() < 1.5, "p99={}", s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn histogram_overflow_bucket_and_empty() {
        let mut h = Histogram::new(vec![10.0]);
        assert_eq!(h.summary().count, 0);
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(5.0);
        h.observe(50.0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 50.0);
        assert!(s.p99 <= 50.0);
    }

    #[test]
    fn registry_render_lists_everything() {
        let m = MetricsRegistry::new();
        m.inc("run.redos", 1);
        m.set_gauge("db.tables", 3.0);
        m.observe("sql.exec_us", 120.0);
        let text = m.render();
        assert!(text.contains("run.redos"));
        assert!(text.contains("db.tables"));
        assert!(text.contains("sql.exec_us"));
    }
}
