//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with quantile summaries.
//!
//! All operations lock a single `parking_lot` mutex, so a registry may
//! be shared across threads (the eval harness fans runs across rayon;
//! the sandbox gateway executes on a worker thread). Names are plain
//! strings; the instrumentation convention is dotted lowercase, e.g.
//! `run.redos`, `sql.queries`, `sandbox.exec_us`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Well-known metric names shared across crates, so producers and the
/// report renderers agree without string drift.
pub mod names {
    /// On-disk (encoded) bytes written by table appends.
    pub const STORAGE_ENCODED_BYTES: &str = "storage.encoded_bytes";
    /// Raw-layout bytes those same appends represent; the ratio of the
    /// two counters is the realized compression ratio.
    pub const STORAGE_LOGICAL_BYTES: &str = "storage.logical_bytes";
    /// Rows a late-materializing scan never decoded because the
    /// predicate's selection vector rejected them.
    pub const SCAN_ROWS_PRUNED: &str = "scan.rows_pruned";
    /// Milliseconds spent building the shared join hash table (histogram;
    /// one observation per joined query).
    pub const JOIN_BUILD_MS: &str = "join.build_ms";
    /// Milliseconds spent probing the join table (histogram; one
    /// observation per scanned chunk).
    pub const JOIN_PROBE_MS: &str = "join.probe_ms";
    /// Radix partitions of the last join build (gauge; 1 = unpartitioned).
    pub const JOIN_PARTITIONS: &str = "join.partitions";
    /// Per-chunk group-by partials merged into final aggregates.
    pub const GROUPBY_PARTIALS_MERGED: &str = "groupby.partials_merged";
    /// Chunks answered by the dictionary-code group-by fast path
    /// (grouping on `u32` codes, no per-row string decode).
    pub const GROUPBY_DICT_FASTPATH_CHUNKS: &str = "groupby.dict_fastpath_chunks";
    /// Chunks answered by the dictionary-code join fast path (probing
    /// distinct dictionary entries instead of every row).
    pub const JOIN_DICT_FASTPATH_CHUNKS: &str = "join.dict_fastpath_chunks";
    /// Dictionary strings actually decoded on the fast paths — the
    /// savings story: compare against rows scanned.
    pub const DICT_STRINGS_DECODED: &str = "dict.strings_decoded";

    // ---- workflow / agents -------------------------------------------------

    /// QA-triggered redo loops across a run's nodes.
    pub const RUN_REDOS: &str = "run.redos";
    /// Node attempts that ended in an error (before any redo).
    pub const RUN_STEP_FAILURES: &str = "run.step_failures";
    /// Runs aborted by an unrecoverable node failure.
    pub const RUN_ABORTS: &str = "run.aborts";
    /// QA loops that exhausted their revision budget.
    pub const QA_BUDGET_EXHAUSTED: &str = "qa.budget_exhausted";
    /// Decoded-batch loads answered by the cross-session shared cache.
    pub const LOAD_SHARED_CACHE_HITS: &str = "load.shared_cache_hits";

    // ---- sandbox -----------------------------------------------------------

    /// Programs executed by the sandbox gateway.
    pub const SANDBOX_EXECUTIONS: &str = "sandbox.executions";
    /// Programs rejected at parse time.
    pub const SANDBOX_PARSE_ERRORS: &str = "sandbox.parse_errors";
    /// Programs that started but failed during execution.
    pub const SANDBOX_EXEC_ERRORS: &str = "sandbox.exec_errors";
    /// Programs killed by the sandbox step-budget watchdog.
    pub const SANDBOX_TIMEOUTS: &str = "sandbox.timeouts";
    /// Per-program sandbox execution latency (histogram, µs).
    pub const SANDBOX_EXEC_US: &str = "sandbox.exec_us";

    // ---- sql / columnar ----------------------------------------------------

    /// Queries that failed logical planning.
    pub const SQL_PLAN_ERRORS: &str = "sql.plan_errors";
    /// Queries rejected by the SQL parser.
    pub const SQL_PARSE_ERRORS: &str = "sql.parse_errors";
    /// Chunks skipped by zone-map pruning.
    pub const SQL_CHUNKS_SKIPPED: &str = "sql.chunks_skipped";
    /// Rows actually scanned after pruning.
    pub const SQL_ROWS_SCANNED: &str = "sql.rows_scanned";
    /// Queries that failed during execution.
    pub const SQL_EXEC_ERRORS: &str = "sql.exec_errors";
    /// Per-query execution latency (histogram, µs).
    pub const SQL_EXEC_US: &str = "sql.exec_us";
    /// Queries executed.
    pub const SQL_QUERIES: &str = "sql.queries";
    /// Physical plan candidates scored by the cost-based optimizer
    /// (join orders and rewrite alternatives considered).
    pub const PLAN_CANDIDATES_CONSIDERED: &str = "plan.candidates_considered";
    /// WHERE conjuncts pushed below a join into a scan (local filter
    /// and/or zone-map pruning) instead of running post-join.
    pub const PLAN_PREDICATES_PUSHED: &str = "plan.predicates_pushed";
    /// Queries where the optimizer pre-aggregated below the join
    /// (group keys subsume the join key; matches counted, not gathered).
    pub const PLAN_PREAGG_APPLIED: &str = "plan.preagg_applied";
    /// Morsels (chunk-aligned work units) dispatched to the worker pool.
    pub const MORSEL_COUNT: &str = "morsel.count";
    /// Milliseconds workers spent waiting on the morsel queue
    /// (histogram; one observation per worker).
    pub const MORSEL_QUEUE_WAIT_MS: &str = "morsel.queue_wait_ms";

    // ---- serve scheduler ---------------------------------------------------

    /// Jobs currently queued (gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Jobs admitted to the queue.
    pub const SERVE_JOBS_ACCEPTED: &str = "serve.jobs_accepted";
    /// Jobs rejected at admission (queue full / shutting down).
    pub const SERVE_JOBS_REJECTED: &str = "serve.jobs_rejected";
    /// Jobs that finished with a report.
    pub const SERVE_JOBS_COMPLETED: &str = "serve.jobs_completed";
    /// Jobs that finished with an error (includes timeouts).
    pub const SERVE_JOBS_FAILED: &str = "serve.jobs_failed";
    /// The subset of failed jobs that hit their deadline.
    pub const SERVE_JOBS_TIMED_OUT: &str = "serve.jobs_timed_out";
    /// Jobs answered from the result cache.
    pub const SERVE_CACHE_HITS: &str = "serve.cache_hits";
    /// Admission-to-dequeue wait (histogram, ms).
    pub const SERVE_QUEUE_WAIT_MS: &str = "serve.queue_wait_ms";
    /// Dequeue-to-completion run time (histogram, ms).
    pub const SERVE_RUN_MS: &str = "serve.run_ms";

    // ---- resilience: fault injection, retry, circuit breaker ---------------

    /// Faults injected by the installed `infera-faults` plan (mirrored
    /// from the plan's own counters via `set_counter`).
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Injected faults the stack recovered from (retry-to-success,
    /// caught panic, checksum-detected corruption, forced-miss reload).
    pub const FAULT_RECOVERED: &str = "fault.recovered";
    /// Job re-executions after a transient failure (excludes the first
    /// attempt).
    pub const RETRY_ATTEMPTS: &str = "retry.attempts";
    /// Jobs that failed every attempt in the retry budget.
    pub const RETRY_EXHAUSTED: &str = "retry.exhausted";
    /// Circuit-breaker transitions into the open state.
    pub const BREAKER_OPENED: &str = "breaker.opened";
    /// Jobs rejected at admission because a breaker was open.
    pub const BREAKER_REJECTED: &str = "breaker.rejected";
    /// Chunks quarantined after checksum mismatch or torn-write
    /// detection; reads of a quarantined chunk fail fast.
    pub const STORAGE_CHUNKS_QUARANTINED: &str = "storage.chunks_quarantined";
    /// Worker threads whose loop was re-entered after a panic escaped a
    /// job (the pool self-heals; this counts the incidents).
    pub const SERVE_WORKERS_LOST: &str = "serve.workers_lost";
    /// Panics caught inside a job by per-job isolation (the job fails
    /// typed; the worker keeps running).
    pub const SERVE_WORKER_PANICS: &str = "serve.worker_panics";

    // ---- sharded scatter-gather execution ----------------------------------

    /// Plan fragments dispatched to shard workers.
    pub const SHARD_FRAGMENTS_SENT: &str = "shard.fragments_sent";
    /// Partial groups/rows merged by the scatter-gather combiner.
    pub const SHARD_PARTIALS_MERGED: &str = "shard.partials_merged";
    /// Wall-clock milliseconds spent in the combiner.
    pub const SHARD_COMBINE_MS: &str = "shard.combine_ms";
    /// Fragment-plan cache hits (plan hash + shard fingerprint).
    pub const SHARD_PLAN_CACHE_HITS: &str = "shard.plan_cache_hits";

    // ---- observability pipeline itself -------------------------------------

    /// Events delivered to at least one event-bus subscriber.
    pub const OBS_EVENTS_PUBLISHED: &str = "obs.events_published";
    /// Events dropped because a subscriber's bounded channel was full.
    pub const OBS_EVENTS_DROPPED: &str = "obs.events_dropped";

    /// Every declared metric name. The metric-name hygiene test asserts
    /// that each name appearing in a full-run snapshot is listed here,
    /// so ad-hoc (typo-prone) instrumentation strings fail CI.
    pub fn all() -> &'static [&'static str] {
        &[
            STORAGE_ENCODED_BYTES,
            STORAGE_LOGICAL_BYTES,
            SCAN_ROWS_PRUNED,
            JOIN_BUILD_MS,
            JOIN_PROBE_MS,
            JOIN_PARTITIONS,
            GROUPBY_PARTIALS_MERGED,
            GROUPBY_DICT_FASTPATH_CHUNKS,
            JOIN_DICT_FASTPATH_CHUNKS,
            DICT_STRINGS_DECODED,
            RUN_REDOS,
            RUN_STEP_FAILURES,
            RUN_ABORTS,
            QA_BUDGET_EXHAUSTED,
            LOAD_SHARED_CACHE_HITS,
            SANDBOX_EXECUTIONS,
            SANDBOX_PARSE_ERRORS,
            SANDBOX_EXEC_ERRORS,
            SANDBOX_TIMEOUTS,
            SANDBOX_EXEC_US,
            SQL_PLAN_ERRORS,
            SQL_PARSE_ERRORS,
            SQL_CHUNKS_SKIPPED,
            SQL_ROWS_SCANNED,
            SQL_EXEC_ERRORS,
            SQL_EXEC_US,
            SQL_QUERIES,
            PLAN_CANDIDATES_CONSIDERED,
            PLAN_PREDICATES_PUSHED,
            PLAN_PREAGG_APPLIED,
            MORSEL_COUNT,
            MORSEL_QUEUE_WAIT_MS,
            SERVE_QUEUE_DEPTH,
            SERVE_JOBS_ACCEPTED,
            SERVE_JOBS_REJECTED,
            SERVE_JOBS_COMPLETED,
            SERVE_JOBS_FAILED,
            SERVE_JOBS_TIMED_OUT,
            SERVE_CACHE_HITS,
            SERVE_QUEUE_WAIT_MS,
            SERVE_RUN_MS,
            FAULT_INJECTED,
            FAULT_RECOVERED,
            RETRY_ATTEMPTS,
            RETRY_EXHAUSTED,
            BREAKER_OPENED,
            BREAKER_REJECTED,
            STORAGE_CHUNKS_QUARANTINED,
            SERVE_WORKERS_LOST,
            SERVE_WORKER_PANICS,
            SHARD_FRAGMENTS_SENT,
            SHARD_PARTIALS_MERGED,
            SHARD_COMBINE_MS,
            SHARD_PLAN_CACHE_HITS,
            OBS_EVENTS_PUBLISHED,
            OBS_EVENTS_DROPPED,
        ]
    }

    /// Whether `name` is a declared constant.
    pub fn is_declared(name: &str) -> bool {
        all().contains(&name)
    }
}

/// A fixed-bucket histogram. `bounds` are inclusive upper bounds of the
/// finite buckets; one implicit overflow bucket catches everything
/// above the last bound, so `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Default bucket bounds: a 1 / 2.5 / 5 ladder over nine decades,
    /// suitable for anything from microseconds to token counts.
    pub fn default_bounds() -> Vec<f64> {
        let mut bounds = Vec::with_capacity(27);
        let mut decade = 1.0f64;
        for _ in 0..9 {
            bounds.push(decade);
            bounds.push(decade * 2.5);
            bounds.push(decade * 5.0);
            decade *= 10.0;
        }
        bounds
    }

    pub fn new(mut bounds: Vec<f64>) -> Histogram {
        bounds.retain(|b| b.is_finite());
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by walking cumulative
    /// bucket counts and interpolating linearly inside the target
    /// bucket. Bucket edges are clamped to the observed min/max, so the
    /// estimate never leaves the observed range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                let lower = if idx == 0 {
                    self.min
                } else {
                    self.bounds[idx - 1].max(self.min)
                };
                let upper = if idx < self.bounds.len() {
                    self.bounds[idx].min(self.max)
                } else {
                    self.max
                };
                let within = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return lower + within * (upper - lower);
            }
            cum = next;
        }
        self.max
    }

    /// Inclusive upper bounds of the finite buckets.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket, so
    /// `bucket_counts().len() == bounds().len() + 1`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Minimum observed value (`None` when empty).
    pub fn observed_min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observed value (`None` when empty).
    pub fn observed_max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold `other` into `self`.
    ///
    /// When the two histograms share bucket bounds (the common case —
    /// every registry uses [`Histogram::default_bounds`] unless told
    /// otherwise) the merge is exact: per-bucket counts add, and
    /// `merge(a, b)` is indistinguishable from having recorded every
    /// sample into one histogram. With differing bounds, each of
    /// `other`'s finite buckets is re-recorded at its upper bound and
    /// the overflow bucket maps to overflow — an approximation, but
    /// count/sum/min/max stay exact either way.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.bounds == other.bounds {
            for (c, o) in self.counts.iter_mut().zip(&other.counts) {
                *c += o;
            }
        } else {
            for (idx, &n) in other.counts.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let slot = if idx < other.bounds.len() {
                    let b = other.bounds[idx];
                    self.bounds
                        .iter()
                        .position(|&sb| b <= sb)
                        .unwrap_or(self.bounds.len())
                } else {
                    self.bounds.len()
                };
                self.counts[slot] += n;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time quantile summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Owned copy of a registry's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Thread-safe metrics registry. Cheap to clone; clones share state.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<MetricsInner>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a counter by `delta` (created at 0 on first use).
    pub fn inc(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().gauges.get(name).copied()
    }

    /// Record an observation into a histogram with the default buckets.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(Histogram::default_bounds()))
            .observe(value);
    }

    /// Record into a histogram created with explicit bucket bounds. The
    /// bounds only apply on first creation of the named histogram.
    pub fn observe_with_buckets(&self, name: &str, value: f64, bounds: &[f64]) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds.to_vec()))
            .observe(value);
    }

    /// Quantile summary of a histogram, if it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner.lock().histograms.get(name).map(Histogram::summary)
    }

    /// Set a counter to an absolute value. Reserved for mirroring an
    /// externally-authoritative count (the event bus's publish/drop
    /// totals) into the registry; normal instrumentation uses [`inc`].
    ///
    /// [`inc`]: MetricsRegistry::inc
    pub fn set_counter(&self, name: &str, value: u64) {
        let mut inner = self.inner.lock();
        inner.counters.insert(name.to_string(), value);
    }

    /// Fold another registry's state into this one: counters add,
    /// gauges take `other`'s value (last write wins), histograms merge
    /// per [`Histogram::merge`]. `other` is read under its own lock
    /// first, so the two registries may be under concurrent use.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let theirs = {
            let o = other.inner.lock();
            (o.counters.clone(), o.gauges.clone(), o.histograms.clone())
        };
        let mut inner = self.inner.lock();
        for (name, v) in theirs.0 {
            *inner.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in theirs.1 {
            inner.gauges.insert(name, v);
        }
        for (name, h) in theirs.2 {
            match inner.histograms.get_mut(&name) {
                Some(mine) => mine.merge(&h),
                None => {
                    inner.histograms.insert(name, h);
                }
            }
        }
    }

    /// Owned copy of a full histogram (buckets and all), for renderers
    /// that need more than the quantile summary (Prometheus exposition).
    pub fn histogram_full(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().histograms.get(name).cloned()
    }

    /// Names of every histogram in the registry.
    pub fn histogram_names(&self) -> Vec<String> {
        self.inner.lock().histograms.keys().cloned().collect()
    }

    /// Owned copy of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Human-readable dump of every metric, one per line.
    pub fn render(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "gauge   {name} = {v}");
        }
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "hist    {name} count={} mean={:.2} p50={:.2} p90={:.2} p99={:.2} max={:.2}",
                h.count, h.mean, h.p50, h.p90, h.p99, h.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x", 2);
        m.inc("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.gauge("g"), None);
        m.set_gauge("g", 1.25);
        assert_eq!(m.gauge("g"), Some(1.25));
    }

    #[test]
    fn histogram_quantiles_on_uniform_distribution() {
        // 1..=1000 into buckets of width 100: quantiles interpolate to
        // the exact percentile values.
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
        let mut h = Histogram::new(bounds);
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.p50 - 500.0).abs() < 1.5, "p50={}", s.p50);
        assert!((s.p90 - 900.0).abs() < 1.5, "p90={}", s.p90);
        assert!((s.p99 - 990.0).abs() < 1.5, "p99={}", s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn histogram_overflow_bucket_and_empty() {
        let mut h = Histogram::new(vec![10.0]);
        assert_eq!(h.summary().count, 0);
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(5.0);
        h.observe(50.0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 50.0);
        assert!(s.p99 <= 50.0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new(Histogram::default_bounds());
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(h.observed_min(), None);
        assert_eq!(h.observed_max(), None);
    }

    #[test]
    fn single_sample_quantiles_collapse_to_the_sample() {
        let mut h = Histogram::new(Histogram::default_bounds());
        h.observe(7.0);
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 7.0, "q={q}");
        }
        let s = h.summary();
        assert_eq!((s.count, s.min, s.max, s.mean), (1, 7.0, 7.0, 7.0));
    }

    #[test]
    fn overflow_bucket_quantiles_clamp_to_observed_max() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        // Everything above the last bound lands in the overflow bucket.
        h.observe(100.0);
        h.observe(1000.0);
        h.observe(250.0);
        assert_eq!(h.bucket_counts(), &[0, 0, 3]);
        assert!(h.quantile(0.99) <= 1000.0);
        assert!(h.quantile(0.01) >= 100.0, "clamped to observed min");
        assert_eq!(h.summary().max, 1000.0);
    }

    #[test]
    fn merge_same_bounds_equals_recording_into_one() {
        let samples_a = [0.5, 3.0, 42.0, 42.0, 9_999.0];
        let samples_b = [1.0, 1.0, 77.0, 1e12]; // 1e12 overflows the ladder
        let mut a = Histogram::new(Histogram::default_bounds());
        let mut b = Histogram::new(Histogram::default_bounds());
        let mut one = Histogram::new(Histogram::default_bounds());
        for &v in &samples_a {
            a.observe(v);
            one.observe(v);
        }
        for &v in &samples_b {
            b.observe(v);
            one.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, one, "merge(a, b) must equal recording all samples into one");
    }

    #[test]
    fn merge_is_associative_and_handles_empties() {
        let mut empty = Histogram::new(Histogram::default_bounds());
        let mut x = Histogram::new(Histogram::default_bounds());
        x.observe(5.0);
        // empty ∪ x == x ∪ empty == x
        let mut left = empty.clone();
        left.merge(&x);
        empty.merge(&x);
        assert_eq!(left, empty);
        assert_eq!(left.count(), 1);
        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut a = Histogram::new(Histogram::default_bounds());
        let mut b = Histogram::new(Histogram::default_bounds());
        let mut c = Histogram::new(Histogram::default_bounds());
        a.observe(1.0);
        b.observe(100.0);
        c.observe(10_000.0);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn merge_differing_bounds_keeps_totals_exact() {
        let mut coarse = Histogram::new(vec![10.0, 100.0]);
        let mut fine = Histogram::new(vec![1.0, 2.0, 5.0, 10.0, 50.0]);
        fine.observe(1.5);
        fine.observe(30.0);
        fine.observe(500.0); // fine's overflow
        coarse.observe(80.0);
        coarse.merge(&fine);
        assert_eq!(coarse.count(), 4);
        assert_eq!(coarse.sum(), 80.0 + 1.5 + 30.0 + 500.0);
        assert_eq!(coarse.observed_min(), Some(1.5));
        assert_eq!(coarse.observed_max(), Some(500.0));
        // Bucket placement: 1.5→≤10, 30→≤100, 500→overflow, 80→≤100.
        assert_eq!(coarse.bucket_counts(), &[1, 2, 1]);
    }

    #[test]
    fn registry_merge_from_adds_counters_and_merges_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.inc("c", 2);
        b.inc("c", 3);
        b.inc("only_b", 1);
        a.set_gauge("g", 1.0);
        b.set_gauge("g", 2.0);
        a.observe("h", 10.0);
        b.observe("h", 1000.0);
        b.observe("h2", 5.0);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(2.0), "gauges take the merged-in value");
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1000.0);
        assert_eq!(a.histogram("h2").unwrap().count, 1);
        // Self-merge is a no-op, not a double-count or deadlock.
        a.merge_from(&a.clone());
        assert_eq!(a.counter("c"), 5);
    }

    #[test]
    fn declared_names_are_unique_and_dotted() {
        let all = names::all();
        let mut seen = std::collections::BTreeSet::new();
        for name in all {
            assert!(seen.insert(*name), "duplicate declared name {name}");
            assert!(name.contains('.'), "metric name {name} must be dotted");
            assert_eq!(*name, name.to_lowercase(), "{name} must be lowercase");
        }
        assert!(names::is_declared(names::RUN_REDOS));
        assert!(!names::is_declared("run.typo_name"));
    }

    #[test]
    fn registry_render_lists_everything() {
        let m = MetricsRegistry::new();
        m.inc("run.redos", 1);
        m.set_gauge("db.tables", 3.0);
        m.observe("sql.exec_us", 120.0);
        let text = m.render();
        assert!(text.contains("run.redos"));
        assert!(text.contains("db.tables"));
        assert!(text.contains("sql.exec_us"));
    }
}
