//! `infera-obs` — structured tracing, metrics, and per-run trace export
//! for the InferA pipeline.
//!
//! Three pieces, all dependency-light (std + `parking_lot` + `serde`):
//!
//! * [`Tracer`] / [`SpanGuard`] — RAII span tree per run. The workflow
//!   opens a `run` root span, one `node:<agent>` span per plan step
//!   (tagged `stage = <agent>`), and one `attempt` span per QA redo
//!   iteration. The SQL engine and sandbox nest their own spans below
//!   whichever node is executing; the simulated LLM records an
//!   `llm_call` event per model invocation.
//! * [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms with p50/p90/p99 summaries; safe under rayon.
//! * Exporters — [`trace_to_jsonl`] (one JSON object per line) and
//!   [`stage_breakdown`] + [`render_breakdown`] (per-agent
//!   time/tokens/redos table). Costs recorded outside any stage span
//!   roll up to the [`UNTRACED_STAGE`] row, so totals reconcile with
//!   `RunReport` by construction.
//!
//! The live pipeline adds three more:
//!
//! * [`EventBus`] / [`Subscription`] — span opens/closes and point
//!   events streamed to bounded per-subscriber channels while the run
//!   executes (attach with [`Tracer::attach_bus`]); slow subscribers
//!   drop-and-count, never block.
//! * [`GlobalMetrics`] — process-wide aggregation of per-run registries
//!   for a serving process, with a JSON snapshot.
//! * [`render_prometheus`] — Prometheus text exposition (format 0.0.4)
//!   of any registry, histograms included.

mod bus;
mod export;
mod global;
mod metrics;
pub mod prometheus;
mod trace;

pub use bus::{BusEvent, BusEventKind, EventBus, Subscription};
pub use export::{
    merge_stage_costs, render_breakdown, render_trace, snapshot_breakdown, snapshot_to_jsonl,
    stage_breakdown, trace_to_jsonl, StageCost, UNTRACED_STAGE,
};
pub use global::{GlobalMetrics, GlobalSnapshot};
pub use metrics::{names as metric_names, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use prometheus::render_prometheus;
pub use trace::{AttrValue, SpanGuard, SpanId, SpanRecord, TraceEvent, TraceSnapshot, Tracer};

/// One run's observability context: a tracer and a metrics registry,
/// cloned together through every pipeline component. Cloning shares
/// state — every component that holds an `Obs` writes into the same
/// per-run trace and registry.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    pub tracer: Tracer,
    pub metrics: MetricsRegistry,
}

impl Obs {
    pub fn new() -> Obs {
        Obs::default()
    }
}
