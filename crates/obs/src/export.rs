//! Exporters: JSONL trace dump and the per-stage cost breakdown table.
//!
//! Cost attribution works off one convention: a span that carries a
//! `stage` string attribute is a *stage span* (e.g. the per-agent node
//! spans in the workflow set `stage = "sql"`). Every span is attributed
//! to its nearest ancestor-or-self stage span; `llm_call` events carry
//! token/latency payloads that roll up to the owning stage. Anything
//! recorded outside every stage span lands in the [`UNTRACED_STAGE`]
//! row, so column totals always reconcile with the run totals.

use crate::trace::{AttrValue, SpanRecord, TraceSnapshot, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Stage name used for costs that no stage span claimed.
pub const UNTRACED_STAGE: &str = "(untraced)";

/// Aggregated cost of one pipeline stage (agent node) within a run, or
/// across runs after [`merge_stage_costs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    pub stage: String,
    /// Number of stage spans (node executions) aggregated here.
    pub calls: u64,
    /// Inclusive wall time of the stage spans, microseconds.
    pub wall_us: u64,
    /// Number of `llm_call` events attributed to this stage.
    pub llm_calls: u64,
    /// Total tokens (prompt + completion) from those calls.
    pub tokens: u64,
    /// Simulated model latency from those calls, milliseconds.
    pub llm_latency_ms: u64,
    /// QA redo iterations recorded on the stage spans.
    pub redos: u64,
}

impl StageCost {
    fn empty(stage: &str) -> StageCost {
        StageCost {
            stage: stage.to_string(),
            calls: 0,
            wall_us: 0,
            llm_calls: 0,
            tokens: 0,
            llm_latency_ms: 0,
            redos: 0,
        }
    }

    fn absorb(&mut self, other: &StageCost) {
        self.calls += other.calls;
        self.wall_us += other.wall_us;
        self.llm_calls += other.llm_calls;
        self.tokens += other.tokens;
        self.llm_latency_ms += other.llm_latency_ms;
        self.redos += other.redos;
    }
}

/// Serialize a trace as JSON Lines: one `{"type":"span",...}` object per
/// span followed by one `{"type":"event",...}` object per orphan event.
/// `run_attrs` (e.g. question id, run index) are repeated on every line
/// so that lines from many runs can share one file and still be grouped.
pub fn trace_to_jsonl(tracer: &Tracer, run_attrs: &BTreeMap<String, AttrValue>) -> String {
    snapshot_to_jsonl(&tracer.snapshot(), run_attrs)
}

/// [`trace_to_jsonl`] over an already-taken snapshot.
pub fn snapshot_to_jsonl(snap: &TraceSnapshot, run_attrs: &BTreeMap<String, AttrValue>) -> String {
    #[derive(Serialize)]
    struct SpanLine<'a> {
        #[serde(rename = "type")]
        kind: &'static str,
        #[serde(skip_serializing_if = "BTreeMap::is_empty")]
        run: &'a BTreeMap<String, AttrValue>,
        id: u64,
        #[serde(skip_serializing_if = "Option::is_none")]
        parent: Option<u64>,
        name: &'a str,
        start_us: u64,
        #[serde(skip_serializing_if = "Option::is_none")]
        end_us: Option<u64>,
        dur_us: u64,
        #[serde(skip_serializing_if = "BTreeMap::is_empty")]
        attrs: &'a BTreeMap<String, AttrValue>,
        #[serde(skip_serializing_if = "Vec::is_empty")]
        events: &'a Vec<crate::trace::TraceEvent>,
    }

    #[derive(Serialize)]
    struct EventLine<'a> {
        #[serde(rename = "type")]
        kind: &'static str,
        #[serde(skip_serializing_if = "BTreeMap::is_empty")]
        run: &'a BTreeMap<String, AttrValue>,
        name: &'a str,
        at_us: u64,
        #[serde(skip_serializing_if = "BTreeMap::is_empty")]
        attrs: &'a BTreeMap<String, AttrValue>,
    }

    let mut out = String::new();
    for span in &snap.spans {
        let line = SpanLine {
            kind: "span",
            run: run_attrs,
            id: span.id,
            parent: span.parent,
            name: &span.name,
            start_us: span.start_us,
            end_us: span.end_us,
            dur_us: span.dur_us(),
            attrs: &span.attrs,
            events: &span.events,
        };
        // BTreeMap keys and struct fields serialize deterministically;
        // failure is impossible for this shape, but degrade to skipping
        // the line rather than panicking inside an exporter.
        if let Ok(json) = serde_json::to_string(&line) {
            out.push_str(&json);
            out.push('\n');
        }
    }
    for ev in &snap.orphan_events {
        let line = EventLine {
            kind: "event",
            run: run_attrs,
            name: &ev.name,
            at_us: ev.at_us,
            attrs: &ev.attrs,
        };
        if let Ok(json) = serde_json::to_string(&line) {
            out.push_str(&json);
            out.push('\n');
        }
    }
    out
}

/// Render a trace snapshot as an indented span tree, one line per span
/// with duration and key attributes — the human-readable counterpart to
/// [`snapshot_to_jsonl`], used by `infera stats --flight` to show what
/// a slow or failed job spent its time on.
pub fn render_trace(snap: &TraceSnapshot) -> String {
    // depth via parent chase; spans are stored in creation order so a
    // parent's depth is always known before its children's.
    let mut depth: Vec<usize> = Vec::with_capacity(snap.spans.len());
    let mut out = String::new();
    for span in &snap.spans {
        let d = span
            .parent
            .and_then(|p| depth.get(p as usize).copied())
            .map_or(0, |pd| pd + 1);
        depth.push(d);
        let _ = write!(
            out,
            "{:indent$}{} [{:.1} ms]",
            "",
            span.name,
            span.dur_us() as f64 / 1000.0,
            indent = d * 2
        );
        for key in ["stage", "outcome", "redos", "success"] {
            if let Some(v) = span.attrs.get(key) {
                let _ = match v {
                    AttrValue::Str(s) => write!(out, " {key}={s}"),
                    AttrValue::Bool(b) => write!(out, " {key}={b}"),
                    AttrValue::U64(n) => write!(out, " {key}={n}"),
                    AttrValue::I64(n) => write!(out, " {key}={n}"),
                    AttrValue::F64(n) => write!(out, " {key}={n}"),
                };
            }
        }
        if !span.events.is_empty() {
            let _ = write!(out, " ({} events)", span.events.len());
        }
        out.push('\n');
    }
    if !snap.orphan_events.is_empty() {
        let _ = writeln!(out, "(+{} orphan events)", snap.orphan_events.len());
    }
    out
}

fn stage_of(span: &SpanRecord) -> Option<&str> {
    span.attrs.get("stage").and_then(AttrValue::as_str)
}

/// Attribute every span and `llm_call` event in the trace to a stage and
/// aggregate per-stage cost. Rows come back in first-seen order (the
/// order stages first executed), with `(untraced)` last if present.
pub fn stage_breakdown(tracer: &Tracer) -> Vec<StageCost> {
    snapshot_breakdown(&tracer.snapshot())
}

/// [`stage_breakdown`] over an already-taken snapshot.
pub fn snapshot_breakdown(snap: &TraceSnapshot) -> Vec<StageCost> {
    // Spans are stored in creation order, so a parent's index is always
    // below its children's: one forward pass resolves each span's owning
    // stage from its parent's.
    let mut owner: Vec<Option<String>> = Vec::with_capacity(snap.spans.len());
    let mut order: Vec<String> = Vec::new();
    let mut rows: BTreeMap<String, StageCost> = BTreeMap::new();

    fn row_mut<'a>(
        rows: &'a mut BTreeMap<String, StageCost>,
        order: &mut Vec<String>,
        stage: &str,
    ) -> &'a mut StageCost {
        if !rows.contains_key(stage) {
            order.push(stage.to_string());
        }
        rows.entry(stage.to_string())
            .or_insert_with(|| StageCost::empty(stage))
    }

    for span in &snap.spans {
        let stage: Option<String> = match stage_of(span) {
            Some(s) => Some(s.to_string()),
            None => span
                .parent
                .and_then(|p| owner.get(p as usize).cloned().flatten()),
        };

        // Only the stage span itself contributes wall time (inclusive of
        // children), so nested spans never double-count.
        if let Some(s) = stage_of(span) {
            let r = row_mut(&mut rows, &mut order, s);
            r.calls += 1;
            r.wall_us += span.dur_us();
            r.redos += span.attrs.get("redos").and_then(AttrValue::as_u64).unwrap_or(0);
        }

        let key = stage.as_deref().unwrap_or(UNTRACED_STAGE);
        for ev in &span.events {
            if ev.name == "llm_call" {
                let r = row_mut(&mut rows, &mut order, key);
                r.llm_calls += 1;
                r.tokens += ev.attrs.get("tokens").and_then(AttrValue::as_u64).unwrap_or(0);
                r.llm_latency_ms += ev
                    .attrs
                    .get("latency_ms")
                    .and_then(AttrValue::as_u64)
                    .unwrap_or(0);
            }
        }
        owner.push(stage);
    }

    for ev in &snap.orphan_events {
        if ev.name == "llm_call" {
            let r = row_mut(&mut rows, &mut order, UNTRACED_STAGE);
            r.llm_calls += 1;
            r.tokens += ev.attrs.get("tokens").and_then(AttrValue::as_u64).unwrap_or(0);
            r.llm_latency_ms += ev
                .attrs
                .get("latency_ms")
                .and_then(AttrValue::as_u64)
                .unwrap_or(0);
        }
    }

    // First-seen order, untraced pinned last (stable sort keeps the rest).
    order.sort_by_key(|s| s == UNTRACED_STAGE);
    order.into_iter().filter_map(|s| rows.remove(&s)).collect()
}

/// Sum per-stage costs across runs, keyed by stage name. Row order
/// follows first appearance across the inputs, `(untraced)` last.
pub fn merge_stage_costs(per_run: &[Vec<StageCost>]) -> Vec<StageCost> {
    let mut order: Vec<String> = Vec::new();
    let mut rows: BTreeMap<String, StageCost> = BTreeMap::new();
    for run in per_run {
        for cost in run {
            if !rows.contains_key(&cost.stage) {
                order.push(cost.stage.clone());
                rows.insert(cost.stage.clone(), StageCost::empty(&cost.stage));
            }
            if let Some(r) = rows.get_mut(&cost.stage) {
                r.absorb(cost);
            }
        }
    }
    order.sort_by_key(|s| s == UNTRACED_STAGE);
    order.into_iter().filter_map(|s| rows.remove(&s)).collect()
}

/// Render stage costs as an aligned text table with a totals row.
pub fn render_breakdown(costs: &[StageCost]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>10} {:>9} {:>10} {:>12} {:>6}",
        "stage", "calls", "wall_ms", "llm_calls", "tokens", "llm_lat_ms", "redos"
    );
    let _ = writeln!(out, "{}", "-".repeat(75));
    let mut total = StageCost::empty("total");
    for c in costs {
        total.absorb(c);
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>10.1} {:>9} {:>10} {:>12} {:>6}",
            c.stage,
            c.calls,
            c.wall_us as f64 / 1000.0,
            c.llm_calls,
            c.tokens,
            c.llm_latency_ms,
            c.redos
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(75));
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>10.1} {:>9} {:>10} {:>12} {:>6}",
        total.stage,
        total.calls,
        total.wall_us as f64 / 1000.0,
        total.llm_calls,
        total.tokens,
        total.llm_latency_ms,
        total.redos
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample_trace() -> Tracer {
        let t = Tracer::new();
        let run = t.span("run");
        {
            let node = t.span("node:sql");
            node.set_attr("stage", "sql");
            node.set_attr("redos", 2u64);
            {
                let attempt = t.span("attempt");
                attempt.event(
                    "llm_call",
                    &[
                        ("tokens", AttrValue::from(100u64)),
                        ("latency_ms", AttrValue::from(7u64)),
                    ],
                );
            }
            node.event(
                "llm_call",
                &[
                    ("tokens", AttrValue::from(50u64)),
                    ("latency_ms", AttrValue::from(3u64)),
                ],
            );
        }
        run.event(
            "llm_call",
            &[
                ("tokens", AttrValue::from(25u64)),
                ("latency_ms", AttrValue::from(1u64)),
            ],
        );
        drop(run);
        t
    }

    #[test]
    fn breakdown_attributes_nested_events_to_stage() {
        let t = sample_trace();
        let costs = stage_breakdown(&t);
        let sql = costs.iter().find(|c| c.stage == "sql").expect("sql row");
        assert_eq!(sql.calls, 1);
        assert_eq!(sql.llm_calls, 2);
        assert_eq!(sql.tokens, 150);
        assert_eq!(sql.llm_latency_ms, 10);
        assert_eq!(sql.redos, 2);
        // The run-level call has no stage span above it -> untraced.
        let untraced = costs
            .iter()
            .find(|c| c.stage == UNTRACED_STAGE)
            .expect("untraced row");
        assert_eq!(untraced.tokens, 25);
        // Totals reconcile.
        let tokens: u64 = costs.iter().map(|c| c.tokens).sum();
        assert_eq!(tokens, 175);
        assert_eq!(costs.last().map(|c| c.stage.as_str()), Some(UNTRACED_STAGE));
    }

    #[test]
    fn jsonl_lines_parse_and_cover_all_spans() {
        let t = sample_trace();
        let mut run = BTreeMap::new();
        run.insert("question".to_string(), AttrValue::from(3u64));
        let jsonl = trace_to_jsonl(&t, &run);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), t.snapshot().spans.len());
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid json");
            assert_eq!(v["type"], "span");
            assert_eq!(v["run"]["question"], 3);
        }
    }

    #[test]
    fn merge_sums_rows_across_runs() {
        let a = stage_breakdown(&sample_trace());
        let b = stage_breakdown(&sample_trace());
        let merged = merge_stage_costs(&[a, b]);
        let sql = merged.iter().find(|c| c.stage == "sql").expect("sql row");
        assert_eq!(sql.calls, 2);
        assert_eq!(sql.tokens, 300);
        assert_eq!(sql.redos, 4);
    }

    #[test]
    fn render_trace_indents_children() {
        let snap = sample_trace().snapshot();
        let text = render_trace(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("run ["));
        assert!(lines[1].starts_with("  node:sql ["));
        assert!(lines[1].contains("stage=sql"));
        assert!(lines[2].starts_with("    attempt ["));
        assert!(lines[0].contains("(1 events)"));
    }

    #[test]
    fn render_has_total_row() {
        let costs = stage_breakdown(&sample_trace());
        let text = render_breakdown(&costs);
        assert!(text.contains("stage"));
        assert!(text.contains("sql"));
        assert!(text.contains("total"));
    }
}
