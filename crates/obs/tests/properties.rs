//! Integration tests for the satellite coverage requirements:
//! concurrent counter increments, histogram percentile correctness on a
//! known distribution, and span nesting/ordering in the exported tree.

use infera_obs::{
    render_breakdown, stage_breakdown, trace_to_jsonl, AttrValue, MetricsRegistry, Tracer,
    UNTRACED_STAGE,
};
use std::collections::BTreeMap;

#[test]
fn concurrent_counter_increments_from_many_threads() {
    let m = MetricsRegistry::new();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 1000;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let m = m.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    m.inc("test.hits", 1);
                }
            });
        }
    });
    assert_eq!(m.counter("test.hits"), (THREADS * PER_THREAD) as u64);
}

#[test]
fn concurrent_histogram_observations() {
    let m = MetricsRegistry::new();
    std::thread::scope(|s| {
        for t in 0..4 {
            let m = m.clone();
            s.spawn(move || {
                for i in 0..250 {
                    m.observe("test.lat", (t * 250 + i + 1) as f64);
                }
            });
        }
    });
    let h = m.histogram("test.lat").expect("histogram exists");
    assert_eq!(h.count, 1000);
    assert_eq!(h.min, 1.0);
    assert_eq!(h.max, 1000.0);
    assert!((h.sum - 500_500.0).abs() < 1e-6);
}

#[test]
fn histogram_percentiles_on_known_distribution() {
    let m = MetricsRegistry::new();
    // Uniform 1..=1000 with bucket bounds every 100: interpolation
    // recovers the exact percentiles.
    let bounds: Vec<f64> = (1..=10).map(|i| (i * 100) as f64).collect();
    for v in 1..=1000 {
        m.observe_with_buckets("uniform", v as f64, &bounds);
    }
    let h = m.histogram("uniform").expect("histogram exists");
    assert!((h.p50 - 500.0).abs() < 1.5, "p50={}", h.p50);
    assert!((h.p90 - 900.0).abs() < 1.5, "p90={}", h.p90);
    assert!((h.p99 - 990.0).abs() < 1.5, "p99={}", h.p99);
    assert!((h.mean - 500.5).abs() < 1e-6);
}

#[test]
fn span_nesting_and_ordering_in_exported_tree() {
    let t = Tracer::new();
    let run = t.span("run");
    run.set_attr("question", 7u64);
    for step in 0..3u64 {
        let node = t.span("node:sql");
        node.set_attr("stage", "sql");
        node.set_attr("step", step);
        for attempt in 0..2u64 {
            let a = t.span("attempt");
            a.set_attr("attempt", attempt);
            a.event(
                "llm_call",
                &[
                    ("tokens", AttrValue::from(10u64)),
                    ("latency_ms", AttrValue::from(1u64)),
                ],
            );
        }
    }
    drop(run);

    let snap = t.snapshot();
    // 1 root + 3 nodes + 6 attempts.
    assert_eq!(snap.spans.len(), 10);
    // Creation order is chronological: start times are monotone.
    for pair in snap.spans.windows(2) {
        assert!(pair[0].start_us <= pair[1].start_us);
    }
    // Every non-root span's parent appears earlier in the vec and wraps
    // it in time.
    for span in &snap.spans[1..] {
        let parent = span.parent.expect("non-root has a parent") as usize;
        assert!(parent < span.id as usize);
        let p = &snap.spans[parent];
        assert!(p.start_us <= span.start_us);
        assert!(p.end_us.unwrap_or(u64::MAX) >= span.end_us.expect("closed"));
    }
    // Node spans hang off the root; attempts hang off nodes.
    let nodes: Vec<_> = snap.spans.iter().filter(|s| s.name == "node:sql").collect();
    assert_eq!(nodes.len(), 3);
    assert!(nodes.iter().all(|s| s.parent == Some(0)));
    let attempts: Vec<_> = snap.spans.iter().filter(|s| s.name == "attempt").collect();
    assert_eq!(attempts.len(), 6);
    for a in &attempts {
        let p = a.parent.expect("attempt has parent") as usize;
        assert_eq!(snap.spans[p].name, "node:sql");
    }

    // The JSONL export round-trips the same structure.
    let jsonl = trace_to_jsonl(&t, &BTreeMap::new());
    let lines: Vec<serde_json::Value> = jsonl
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid json line"))
        .collect();
    assert_eq!(lines.len(), 10);
    assert_eq!(lines[0]["name"], "run");
    assert!(lines[0].get("parent").is_none());
    assert_eq!(lines[1]["parent"], 0);
    assert_eq!(lines[1]["attrs"]["stage"], "sql");
}

#[test]
fn breakdown_reconciles_tokens_with_trace_total() {
    let t = Tracer::new();
    let run = t.span("run");
    let mut expected_tokens = 0u64;
    for (stage, calls) in [("sql", 2u64), ("python", 3u64)] {
        let node = t.span("node");
        node.set_attr("stage", stage);
        for i in 0..calls {
            let tokens = 100 + i;
            expected_tokens += tokens;
            node.event(
                "llm_call",
                &[
                    ("tokens", AttrValue::from(tokens)),
                    ("latency_ms", AttrValue::from(2u64)),
                ],
            );
        }
    }
    // One call outside any stage span -> untraced row.
    run.event(
        "llm_call",
        &[("tokens", AttrValue::from(9u64)), ("latency_ms", AttrValue::from(1u64))],
    );
    expected_tokens += 9;
    drop(run);

    let costs = stage_breakdown(&t);
    let total: u64 = costs.iter().map(|c| c.tokens).sum();
    assert_eq!(total, expected_tokens);
    assert!(costs.iter().any(|c| c.stage == UNTRACED_STAGE));
    let table = render_breakdown(&costs);
    assert!(table.contains("python"));
    assert!(table.contains("total"));
}
