//! Golden-file tests pinning the two wire formats other tools consume:
//! the JSONL trace schema (`snapshot_to_jsonl`) and the Prometheus text
//! exposition (`render_prometheus`).
//!
//! The inputs are hand-constructed with fixed timestamps, so the
//! expected output is byte-exact. If either format changes these tests
//! must be updated deliberately — that is the point: downstream
//! consumers (dashboards, scrapers, the paper's analysis notebooks)
//! parse these bytes.

use infera_obs::{
    render_prometheus, snapshot_to_jsonl, AttrValue, MetricsRegistry, SpanRecord, TraceEvent,
    TraceSnapshot,
};
use std::collections::BTreeMap;

fn attrs(pairs: &[(&str, AttrValue)]) -> BTreeMap<String, AttrValue> {
    pairs
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect()
}

fn fixed_snapshot() -> TraceSnapshot {
    TraceSnapshot {
        spans: vec![
            SpanRecord {
                id: 0,
                parent: None,
                name: "analysis".to_string(),
                start_us: 10,
                end_us: Some(5010),
                attrs: attrs(&[("question", AttrValue::from("q1"))]),
                events: Vec::new(),
            },
            SpanRecord {
                id: 1,
                parent: Some(0),
                name: "node:sql".to_string(),
                start_us: 100,
                end_us: Some(4100),
                attrs: attrs(&[
                    ("redos", AttrValue::from(1u64)),
                    ("stage", AttrValue::from("sql")),
                ]),
                events: vec![TraceEvent {
                    name: "llm_call".to_string(),
                    at_us: 200,
                    attrs: attrs(&[
                        ("latency_ms", AttrValue::from(3u64)),
                        ("tokens", AttrValue::from(42u64)),
                    ]),
                }],
            },
        ],
        orphan_events: vec![TraceEvent {
            name: "late".to_string(),
            at_us: 5500,
            attrs: BTreeMap::new(),
        }],
    }
}

/// Pins the JSONL schema: field names, field order, type tags, and the
/// skip-empty rules, exactly as written to `trace.jsonl` files.
#[test]
fn jsonl_trace_schema_is_pinned() {
    let run = attrs(&[("salt", AttrValue::from(7u64))]);
    let got = snapshot_to_jsonl(&fixed_snapshot(), &run);
    let want = concat!(
        r#"{"type":"span","run":{"salt":7},"id":0,"name":"analysis","start_us":10,"end_us":5010,"dur_us":5000,"attrs":{"question":"q1"}}"#,
        "\n",
        r#"{"type":"span","run":{"salt":7},"id":1,"parent":0,"name":"node:sql","start_us":100,"end_us":4100,"dur_us":4000,"attrs":{"redos":1,"stage":"sql"},"events":[{"name":"llm_call","at_us":200,"attrs":{"latency_ms":3,"tokens":42}}]}"#,
        "\n",
        r#"{"type":"event","run":{"salt":7},"name":"late","at_us":5500}"#,
        "\n",
    );
    assert_eq!(got, want, "JSONL trace schema drifted");
}

/// Pins the Prometheus exposition: family naming, TYPE lines, cumulative
/// bucket encoding, and number formatting.
#[test]
fn prometheus_exposition_format_is_pinned() {
    let m = MetricsRegistry::new();
    m.inc("serve.jobs_completed", 12);
    m.inc("obs.events_dropped", 0);
    m.set_gauge("serve.queue_depth", 3.0);
    m.set_gauge("cache.ratio", 0.5);
    m.observe_with_buckets("serve.run_ms", 2.0, &[1.0, 2.5, 5.0]);
    m.observe_with_buckets("serve.run_ms", 4.0, &[1.0, 2.5, 5.0]);
    m.observe_with_buckets("serve.run_ms", 40.0, &[1.0, 2.5, 5.0]);
    let got = render_prometheus(&m);
    let want = "\
# TYPE infera_obs_events_dropped counter
infera_obs_events_dropped 0
# TYPE infera_serve_jobs_completed counter
infera_serve_jobs_completed 12
# TYPE infera_cache_ratio gauge
infera_cache_ratio 0.5
# TYPE infera_serve_queue_depth gauge
infera_serve_queue_depth 3
# TYPE infera_serve_run_ms histogram
infera_serve_run_ms_bucket{le=\"1\"} 0
infera_serve_run_ms_bucket{le=\"2.5\"} 1
infera_serve_run_ms_bucket{le=\"5\"} 2
infera_serve_run_ms_bucket{le=\"+Inf\"} 3
infera_serve_run_ms_sum 46
infera_serve_run_ms_count 3
";
    assert_eq!(got, want, "Prometheus exposition format drifted");
}

/// The JSONL output round-trips through a generic JSON parser — every
/// line is a self-contained object with a `type` tag.
#[test]
fn jsonl_lines_are_self_describing_json() {
    let got = snapshot_to_jsonl(&fixed_snapshot(), &BTreeMap::new());
    let mut kinds = Vec::new();
    for line in got.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid json line");
        kinds.push(v["type"].as_str().expect("type tag").to_string());
    }
    assert_eq!(kinds, ["span", "span", "event"]);
}
