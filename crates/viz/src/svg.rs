//! SVG chart rendering (matplotlib substitute).
//!
//! A small, dependency-free renderer producing self-contained SVG: line
//! and scatter series with axes, nice-number ticks, optional log scales,
//! grid lines and a legend. The visualization agent writes these files
//! into the provenance trail; tests validate structure (series counts,
//! labels) rather than pixels.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Categorical palette (colorblind-safe Okabe–Ito, cycled).
pub const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
];

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeriesKind {
    Line,
    Scatter,
}

/// One data series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    pub kind: SeriesKind,
    pub points: Vec<(f64, f64)>,
    /// Palette index (cycled).
    pub color: usize,
    /// Highlighted series draw thicker / larger (the Fig. 5 "target in
    /// red" idiom).
    pub highlight: bool,
}

impl Series {
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>, color: usize) -> Series {
        Series {
            name: name.into(),
            kind: SeriesKind::Line,
            points,
            color,
            highlight: false,
        }
    }

    pub fn scatter(name: impl Into<String>, points: Vec<(f64, f64)>, color: usize) -> Series {
        Series {
            name: name.into(),
            kind: SeriesKind::Scatter,
            points,
            color,
            highlight: false,
        }
    }

    pub fn highlighted(mut self) -> Series {
        self.highlight = true;
        self
    }
}

/// A 2-D chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chart {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub width: u32,
    pub height: u32,
    pub log_x: bool,
    pub log_y: bool,
    pub series: Vec<Series>,
}

impl Chart {
    pub fn new(title: impl Into<String>) -> Chart {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            width: 800,
            height: 500,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    pub fn with_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Chart {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    pub fn with_log_y(mut self) -> Chart {
        self.log_y = true;
        self
    }

    pub fn with_log_x(mut self) -> Chart {
        self.log_x = true;
        self
    }

    pub fn add_series(&mut self, s: Series) -> &mut Self {
        self.series.push(s);
        self
    }

    fn transform(v: f64, log: bool) -> Option<f64> {
        if log {
            (v > 0.0).then(|| v.log10())
        } else {
            v.is_finite().then_some(v)
        }
    }

    /// Render to an SVG string.
    pub fn render(&self) -> String {
        let (w, h) = (f64::from(self.width), f64::from(self.height));
        let margin = (70.0, 40.0, 60.0, 90.0); // left, top, bottom-extra, right(legend)
        let plot_w = w - margin.0 - margin.3;
        let plot_h = h - margin.1 - margin.2;

        // Collect transformed extents.
        let mut pts: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (si, s) in self.series.iter().enumerate() {
            let mut tp = Vec::with_capacity(s.points.len());
            for &(x, y) in &s.points {
                if let (Some(tx), Some(ty)) =
                    (Self::transform(x, self.log_x), Self::transform(y, self.log_y))
                {
                    xmin = xmin.min(tx);
                    xmax = xmax.max(tx);
                    ymin = ymin.min(ty);
                    ymax = ymax.max(ty);
                    tp.push((tx, ty));
                }
            }
            pts.push((si, tp));
        }
        if !xmin.is_finite() {
            xmin = 0.0;
            xmax = 1.0;
        }
        if !ymin.is_finite() {
            ymin = 0.0;
            ymax = 1.0;
        }
        if (xmax - xmin).abs() < 1e-300 {
            xmax = xmin + 1.0;
        }
        if (ymax - ymin).abs() < 1e-300 {
            ymax = ymin + 1.0;
        }
        let sx = |x: f64| margin.0 + (x - xmin) / (xmax - xmin) * plot_w;
        let sy = |y: f64| margin.1 + plot_h - (y - ymin) / (ymax - ymin) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
            self.width, self.height, self.width, self.height
        );
        let _ = write!(
            svg,
            r#"<rect width="100%" height="100%" fill="white"/><text x="{}" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            w / 2.0,
            escape(&self.title)
        );

        // Axes frame.
        let _ = write!(
            svg,
            r##"<rect x="{}" y="{}" width="{plot_w}" height="{plot_h}" fill="none" stroke="#333"/>"##,
            margin.0, margin.1
        );

        // Ticks + grid.
        for t in nice_ticks(xmin, xmax, 6) {
            let x = sx(t);
            let label = format_tick(t, self.log_x);
            let _ = write!(
                svg,
                r##"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="#ddd"/><text x="{x}" y="{}" font-size="11" text-anchor="middle" font-family="sans-serif">{label}</text>"##,
                margin.1,
                margin.1 + plot_h,
                margin.1 + plot_h + 18.0
            );
        }
        for t in nice_ticks(ymin, ymax, 6) {
            let y = sy(t);
            let label = format_tick(t, self.log_y);
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/><text x="{}" y="{}" font-size="11" text-anchor="end" font-family="sans-serif">{label}</text>"##,
                margin.0,
                margin.0 + plot_w,
                margin.0 - 6.0,
                y + 4.0
            );
        }

        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="13" text-anchor="middle" font-family="sans-serif">{}</text>"#,
            margin.0 + plot_w / 2.0,
            h - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-size="13" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 {})">{}</text>"#,
            margin.1 + plot_h / 2.0,
            margin.1 + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (si, tp) in &pts {
            let s = &self.series[*si];
            let color = if s.highlight {
                "#D00000"
            } else {
                PALETTE[s.color % PALETTE.len()]
            };
            match s.kind {
                SeriesKind::Line => {
                    let width = if s.highlight { 3.0 } else { 1.6 };
                    let mut path = String::new();
                    for (i, &(x, y)) in tp.iter().enumerate() {
                        let _ = write!(
                            path,
                            "{}{:.2},{:.2} ",
                            if i == 0 { "M" } else { "L" },
                            sx(x),
                            sy(y)
                        );
                    }
                    let _ = write!(
                        svg,
                        r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="{width}" class="series"/>"#
                    );
                }
                SeriesKind::Scatter => {
                    let r = if s.highlight { 5.0 } else { 2.6 };
                    let _ = write!(svg, r#"<g fill="{color}" class="series">"#);
                    for &(x, y) in tp {
                        let _ = write!(
                            svg,
                            r#"<circle cx="{:.2}" cy="{:.2}" r="{r}"/>"#,
                            sx(x),
                            sy(y)
                        );
                    }
                    svg.push_str("</g>");
                }
            }
        }

        // Legend (cap entries to keep 32-series figures readable).
        let legend_max = 12usize;
        for (i, s) in self.series.iter().take(legend_max).enumerate() {
            let y = margin.1 + 14.0 * i as f64 + 8.0;
            let x = margin.0 + plot_w + 8.0;
            let color = if s.highlight {
                "#D00000"
            } else {
                PALETTE[s.color % PALETTE.len()]
            };
            let _ = write!(
                svg,
                r#"<rect x="{x}" y="{}" width="10" height="10" fill="{color}"/><text x="{}" y="{}" font-size="10" font-family="sans-serif">{}</text>"#,
                y - 8.0,
                x + 14.0,
                y + 1.0,
                escape(&s.name)
            );
        }
        if self.series.len() > legend_max {
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" font-size="10" font-family="sans-serif">… {} more</text>"#,
                margin.0 + plot_w + 8.0,
                margin.1 + 14.0 * legend_max as f64 + 8.0,
                self.series.len() - legend_max
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn format_tick(t: f64, log: bool) -> String {
    if log {
        // Tick value is an exponent.
        if t.fract() == 0.0 && t.abs() < 24.0 {
            return format!("1e{}", t as i64);
        }
        return format!("1e{t:.1}");
    }
    if t == 0.0 {
        return "0".to_string();
    }
    let a = t.abs();
    if a >= 1e5 || a < 1e-3 {
        format!("{t:.1e}")
    } else if t.fract() == 0.0 {
        format!("{t:.0}")
    } else {
        format!("{t:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// "Nice" tick positions covering [min, max] with about `n` ticks.
pub fn nice_ticks(min: f64, max: f64, n: usize) -> Vec<f64> {
    if !(min.is_finite() && max.is_finite()) || max <= min || n == 0 {
        return vec![];
    }
    let raw_step = (max - min) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= max + step * 1e-9 {
        // Snap tiny float error to zero.
        ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
    }
    ticks
}

/// Histogram helper: equal-width bins over finite values.
/// Returns `(bin_center, count)` pairs ready for a line/bar chart.
pub fn histogram(values: &[f64], bins: usize) -> Vec<(f64, f64)> {
    let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() || bins == 0 {
        return vec![];
    }
    let min = clean.iter().copied().fold(f64::INFINITY, f64::min);
    let max = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((max - min) / bins as f64).max(f64::MIN_POSITIVE);
    let mut counts = vec![0usize; bins];
    for v in &clean {
        let idx = (((v - min) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (min + (i as f64 + 0.5) * width, c as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_ticks_cover_range() {
        let ticks = nice_ticks(0.0, 10.0, 5);
        assert!(!ticks.is_empty());
        assert!(ticks.first().unwrap() >= &0.0);
        assert!(ticks.last().unwrap() <= &10.0);
        let steps: Vec<f64> = ticks.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(steps.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9));
    }

    #[test]
    fn nice_ticks_degenerate() {
        assert!(nice_ticks(1.0, 1.0, 5).is_empty());
        assert!(nice_ticks(f64::NAN, 1.0, 5).is_empty());
    }

    #[test]
    fn render_contains_series_and_labels() {
        let mut c = Chart::new("Halo mass growth").with_labels("timestep", "mass [Msun/h]");
        c.add_series(Series::line("sim 0", vec![(0.0, 1.0), (1.0, 2.0)], 0));
        c.add_series(Series::scatter("sim 1", vec![(0.5, 1.5)], 1));
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("class=\"series\"").count(), 2);
        assert!(svg.contains("Halo mass growth"));
        assert!(svg.contains("timestep"));
        assert!(svg.contains("sim 1"));
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let mut c = Chart::new("log").with_log_y();
        c.add_series(Series::line("s", vec![(0.0, -5.0), (1.0, 10.0), (2.0, 100.0)], 0));
        let svg = c.render();
        // Only two points survive -> path has one M and one L.
        let path_start = svg.find("<path").unwrap();
        let path = &svg[path_start..svg[path_start..].find("/>").unwrap() + path_start];
        assert_eq!(path.matches('L').count(), 1);
    }

    #[test]
    fn highlight_draws_red() {
        let mut c = Chart::new("h");
        c.add_series(Series::scatter("target", vec![(1.0, 1.0)], 0).highlighted());
        assert!(c.render().contains("#D00000"));
    }

    #[test]
    fn histogram_bins_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = histogram(&values, 10);
        assert_eq!(h.len(), 10);
        assert!(h.iter().all(|&(_, c)| (c - 10.0).abs() < 1e-9));
        assert!(histogram(&[], 5).is_empty());
    }

    #[test]
    fn title_escaped() {
        let c = Chart::new("a < b & c");
        let svg = c.render();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn empty_chart_still_valid() {
        let svg = Chart::new("empty").render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn legend_caps_at_twelve() {
        let mut c = Chart::new("many");
        for i in 0..32 {
            c.add_series(Series::line(format!("sim {i}"), vec![(0.0, i as f64)], i));
        }
        let svg = c.render();
        assert!(svg.contains("… 20 more"));
    }
}
