//! High-level plotting from dataframes — the calls the visualization
//! agent's generated code makes.

use crate::svg::{histogram, Chart, Series};
use infera_frame::{DataFrame, FrameError, FrameResult, Value};

/// Line chart of `y` vs `x`, one series per distinct value of
/// `group_by` (or a single series when `group_by` is `None`).
///
/// This is the Fig. 4 primitive: "plot the halo count and halo mass for
/// 32 simulations over all timesteps" becomes one call with
/// `group_by = Some("sim")`.
pub fn line_plot(
    df: &DataFrame,
    x: &str,
    y: &str,
    group_by: Option<&str>,
    title: &str,
) -> FrameResult<Chart> {
    series_plot(df, x, y, group_by, title, true)
}

/// Scatter chart of `y` vs `x`, optionally grouped.
pub fn scatter_plot(
    df: &DataFrame,
    x: &str,
    y: &str,
    group_by: Option<&str>,
    title: &str,
) -> FrameResult<Chart> {
    series_plot(df, x, y, group_by, title, false)
}

fn series_plot(
    df: &DataFrame,
    x: &str,
    y: &str,
    group_by: Option<&str>,
    title: &str,
    line: bool,
) -> FrameResult<Chart> {
    let xv = df.column(x)?.to_f64_vec()?;
    let yv = df.column(y)?.to_f64_vec()?;
    let mut chart = Chart::new(title).with_labels(x, y);
    let make = |name: String, mut pts: Vec<(f64, f64)>, color: usize| {
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if line {
            Series::line(name, pts, color)
        } else {
            Series::scatter(name, pts, color)
        }
    };
    match group_by {
        None => {
            let pts: Vec<(f64, f64)> = xv.iter().copied().zip(yv.iter().copied()).collect();
            chart.add_series(make(y.to_string(), pts, 0));
        }
        Some(g) => {
            let gcol = df.column(g)?;
            // First-seen group order for stable colors.
            let mut groups: Vec<(Value, Vec<(f64, f64)>)> = Vec::new();
            for i in 0..df.n_rows() {
                let key = gcol.get(i);
                let entry = groups.iter_mut().find(|(k, _)| *k == key);
                let pts = match entry {
                    Some((_, pts)) => pts,
                    None => {
                        groups.push((key, Vec::new()));
                        &mut groups.last_mut().expect("just pushed").1
                    }
                };
                pts.push((xv[i], yv[i]));
            }
            for (ci, (key, pts)) in groups.into_iter().enumerate() {
                chart.add_series(make(format!("{g}={key}"), pts, ci));
            }
        }
    }
    Ok(chart)
}

/// Histogram chart of one numeric column.
pub fn histogram_plot(df: &DataFrame, column: &str, bins: usize, title: &str) -> FrameResult<Chart> {
    let v = df.column(column)?.to_f64_vec()?;
    let h = histogram(&v, bins);
    let mut chart = Chart::new(title).with_labels(column, "count");
    chart.add_series(Series::line("count", h, 0));
    Ok(chart)
}

/// Heatmap-style rendering of a correlation matrix produced by
/// [`DataFrame::corr_matrix`] — emitted as an SVG grid of colored cells.
pub fn corr_heatmap(df: &DataFrame, title: &str) -> FrameResult<String> {
    let labels = df.column("column")?.as_str_slice()?.to_vec();
    let n = labels.len();
    let cell = 48.0;
    let margin = 120.0;
    let size = margin + cell * n as f64 + 20.0;
    let mut svg = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}"><rect width="100%" height="100%" fill="white"/><text x="{}" y="20" font-size="14" text-anchor="middle" font-family="sans-serif">{title}</text>"#,
        size / 2.0
    );
    for (j, lj) in labels.iter().enumerate() {
        let col = df.column(lj)?.to_f64_vec()?;
        if col.len() != n {
            return Err(FrameError::Invalid(
                "corr_heatmap: not a square correlation matrix".into(),
            ));
        }
        for (i, &v) in col.iter().enumerate() {
            // Map [-1, 1] to blue..white..red.
            let v = v.clamp(-1.0, 1.0);
            let (r, g, b) = if v >= 0.0 {
                (255.0, 255.0 * (1.0 - v), 255.0 * (1.0 - v))
            } else {
                (255.0 * (1.0 + v), 255.0 * (1.0 + v), 255.0)
            };
            svg.push_str(&format!(
                r##"<rect x="{}" y="{}" width="{cell}" height="{cell}" fill="rgb({},{},{})" stroke="#999"/><text x="{}" y="{}" font-size="10" text-anchor="middle" font-family="sans-serif">{v:.2}</text>"##,
                margin + cell * j as f64,
                margin + cell * i as f64,
                r as u8,
                g as u8,
                b as u8,
                margin + cell * (j as f64 + 0.5),
                margin + cell * (i as f64 + 0.5) + 4.0,
            ));
        }
        // Row/column labels.
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="10" text-anchor="end" font-family="sans-serif">{lj}</text>"#,
            margin - 6.0,
            margin + cell * (j as f64 + 0.5) + 4.0
        ));
        svg.push_str(&format!(
            r#"<text x="{}" y="{}" font-size="10" text-anchor="start" font-family="sans-serif" transform="rotate(-60 {} {})">{lj}</text>"#,
            margin + cell * (j as f64 + 0.5),
            margin - 8.0,
            margin + cell * (j as f64 + 0.5),
            margin - 8.0
        ));
    }
    svg.push_str("</svg>");
    Ok(svg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_frame::Column;

    fn df() -> DataFrame {
        DataFrame::from_columns([
            ("step", Column::from(vec![1.0, 2.0, 1.0, 2.0])),
            ("mass", Column::from(vec![10.0, 20.0, 30.0, 60.0])),
            ("sim", Column::from(vec![0i64, 0, 1, 1])),
        ])
        .unwrap()
    }

    #[test]
    fn grouped_line_plot_one_series_per_group() {
        let chart = line_plot(&df(), "step", "mass", Some("sim"), "growth").unwrap();
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].name, "sim=0");
        // Points sorted by x within each series.
        assert!(chart.series[1]
            .points
            .windows(2)
            .all(|w| w[0].0 <= w[1].0));
        let svg = chart.render();
        assert!(svg.contains("sim=1"));
    }

    #[test]
    fn ungrouped_scatter() {
        let chart = scatter_plot(&df(), "mass", "step", None, "s").unwrap();
        assert_eq!(chart.series.len(), 1);
        assert_eq!(chart.series[0].points.len(), 4);
    }

    #[test]
    fn histogram_plot_builds() {
        let chart = histogram_plot(&df(), "mass", 4, "h").unwrap();
        assert_eq!(chart.series.len(), 1);
        let total: f64 = chart.series[0].points.iter().map(|p| p.1).sum();
        assert_eq!(total, 4.0);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(line_plot(&df(), "nope", "mass", None, "t").is_err());
    }

    #[test]
    fn corr_heatmap_from_matrix() {
        let m = df().corr_matrix(&["step", "mass"]).unwrap();
        let svg = corr_heatmap(&m, "corr").unwrap();
        assert!(svg.contains("</svg>"));
        assert!(svg.contains("1.00")); // diagonal
    }
}
