//! # infera-viz
//!
//! The visualization substrate (matplotlib / ParaView substitute): an SVG
//! chart renderer with line/scatter/histogram/heatmap forms ([`svg`],
//! [`plot`]) and a VTK legacy ASCII scene writer for 3-D halo
//! neighborhoods ([`vtk`]). The visualization agent emits these artifacts
//! into the provenance trail; Figures 1, 4 and 5 of the paper regenerate
//! through this crate.

pub mod plot;
pub mod svg;
pub mod vtk;

pub use plot::{corr_heatmap, histogram_plot, line_plot, scatter_plot};
pub use svg::{histogram, nice_ticks, Chart, Series, SeriesKind, PALETTE};
pub use vtk::Scene;
