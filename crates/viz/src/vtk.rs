//! VTK legacy ASCII scene writer (ParaView substitute).
//!
//! The paper's Fig. 5 renders a target dark-matter halo and its ≤20 Mpc
//! neighborhood in ParaView, with the target highlighted red. InferA's
//! custom ParaView tooling emits scene files; this module writes the
//! standard VTK legacy polydata format (point cloud + per-point scalars)
//! that ParaView opens directly.

use std::fmt::Write as _;

/// A 3-D point-cloud scene.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    pub title: String,
    points: Vec<[f32; 3]>,
    /// Per-point scalar (rendered via lookup table; by convention 1.0
    /// marks the highlighted target, 0.0 ordinary points).
    scalars: Vec<f32>,
    /// Per-point radius attribute (e.g. halo R500c) for glyph scaling.
    radii: Vec<f32>,
}

impl Scene {
    pub fn new(title: impl Into<String>) -> Scene {
        Scene {
            title: title.into(),
            points: Vec::new(),
            scalars: Vec::new(),
            radii: Vec::new(),
        }
    }

    /// Add one point.
    pub fn add_point(&mut self, pos: [f32; 3], scalar: f32, radius: f32) {
        self.points.push(pos);
        self.scalars.push(scalar);
        self.radii.push(radius);
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Serialize as VTK legacy ASCII polydata.
    pub fn to_vtk(&self) -> String {
        let n = self.points.len();
        let mut out = String::new();
        out.push_str("# vtk DataFile Version 3.0\n");
        // Title line must be a single line.
        let title: String = self.title.chars().filter(|c| *c != '\n').take(250).collect();
        let _ = writeln!(out, "{title}");
        out.push_str("ASCII\nDATASET POLYDATA\n");
        let _ = writeln!(out, "POINTS {n} float");
        for p in &self.points {
            let _ = writeln!(out, "{} {} {}", p[0], p[1], p[2]);
        }
        let _ = writeln!(out, "VERTICES {n} {}", 2 * n);
        for i in 0..n {
            let _ = writeln!(out, "1 {i}");
        }
        let _ = writeln!(out, "POINT_DATA {n}");
        out.push_str("SCALARS highlight float 1\nLOOKUP_TABLE default\n");
        for s in &self.scalars {
            let _ = writeln!(out, "{s}");
        }
        out.push_str("SCALARS radius float 1\nLOOKUP_TABLE default\n");
        for r in &self.radii {
            let _ = writeln!(out, "{r}");
        }
        out
    }

    /// Write to a `.vtk` file.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_vtk())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scene() -> Scene {
        let mut s = Scene::new("halo neighborhood");
        s.add_point([1.0, 2.0, 3.0], 1.0, 0.8); // target
        s.add_point([4.0, 5.0, 6.0], 0.0, 0.3);
        s.add_point([7.0, 8.0, 9.0], 0.0, 0.2);
        s
    }

    #[test]
    fn vtk_structure() {
        let text = scene().to_vtk();
        assert!(text.starts_with("# vtk DataFile Version 3.0\n"));
        assert!(text.contains("DATASET POLYDATA"));
        assert!(text.contains("POINTS 3 float"));
        assert!(text.contains("VERTICES 3 6"));
        assert!(text.contains("POINT_DATA 3"));
        assert!(text.contains("SCALARS highlight float 1"));
        assert!(text.contains("SCALARS radius float 1"));
    }

    #[test]
    fn point_and_scalar_counts_match() {
        let text = scene().to_vtk();
        let lines: Vec<&str> = text.lines().collect();
        let points_idx = lines.iter().position(|l| l.starts_with("POINTS")).unwrap();
        assert_eq!(lines[points_idx + 1], "1 2 3");
        // Exactly one scalar value of 1.0 (the highlighted target).
        let highlight_idx = lines
            .iter()
            .position(|l| l.starts_with("SCALARS highlight"))
            .unwrap();
        let vals = &lines[highlight_idx + 2..highlight_idx + 5];
        assert_eq!(vals.iter().filter(|v| **v == "1").count(), 1);
    }

    #[test]
    fn title_newlines_stripped() {
        let mut s = Scene::new("line1\nline2");
        s.add_point([0.0; 3], 0.0, 0.0);
        let text = s.to_vtk();
        assert!(text.lines().nth(1).unwrap().contains("line1line2"));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("infera_vtk_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scene.vtk");
        scene().write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("POINTS 3 float"));
        std::fs::remove_file(&path).ok();
    }
}
