//! Substrate micro-benchmarks: dataframe kernels, RAG retrieval, and the
//! sandbox DSL interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use infera_frame::{AggKind, AggSpec, Column, DataFrame, JoinKind, SortOrder};
use infera_rag::{Doc, Retriever};
use infera_sandbox::{ExecutionRequest, SandboxServer};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::hint::black_box;

fn frame(rows: usize) -> DataFrame {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(3);
    DataFrame::from_columns([
        ("tag", Column::I64((0..rows as i64).collect())),
        ("sim", Column::I64((0..rows).map(|i| (i % 8) as i64).collect())),
        (
            "mass",
            Column::F64((0..rows).map(|_| rng.random::<f64>() * 1e14).collect()),
        ),
        (
            "speed",
            Column::F64((0..rows).map(|_| rng.random::<f64>() * 900.0).collect()),
        ),
    ])
    .unwrap()
}

fn bench_frame_kernels(c: &mut Criterion) {
    let df = frame(100_000);
    let mut group = c.benchmark_group("frame");
    group.bench_function("sort_100k", |b| {
        b.iter(|| black_box(df.sort_by(&[("mass", SortOrder::Descending)]).unwrap()))
    });
    group.bench_function("top_n_100_of_100k", |b| {
        b.iter(|| black_box(df.top_n("mass", 100).unwrap()))
    });
    group.bench_function("group_by_8_groups_100k", |b| {
        b.iter(|| {
            black_box(
                df.group_by(
                    &["sim"],
                    &[
                        AggSpec::new("mass", AggKind::Mean),
                        AggSpec::new("mass", AggKind::Std).with_alias("mass_std"),
                    ],
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("linfit_100k", |b| {
        b.iter(|| black_box(df.linfit("mass", "speed").unwrap()))
    });
    let right = frame(20_000);
    group.bench_function("hash_join_100k_x_20k", |b| {
        b.iter(|| black_box(df.join(&right, "tag", "tag", JoinKind::Inner).unwrap()))
    });
    group.finish();
}

fn bench_rag(c: &mut Criterion) {
    let docs: Vec<Doc> = infera_hacc::column_dictionary()
        .into_iter()
        .map(|d| Doc::new(&d.column, &d.entity, &d.description, d.important))
        .collect();
    let retriever = Retriever::new(docs);
    c.bench_function("rag_embed", |b| {
        b.iter(|| {
            black_box(infera_rag::embed(
                "how does the gas mass fraction of massive halos evolve over time",
            ))
        })
    });
    c.bench_function("rag_mmr_top20", |b| {
        b.iter(|| black_box(retriever.mmr("largest friends-of-friends halos by mass", 20)))
    });
    c.bench_function("rag_four_prompt_retrieval", |b| {
        b.iter(|| {
            black_box(retriever.retrieve_for_task(
                "average halo size per timestep",
                "load halo counts",
                "1. load halos 2. aggregate 3. plot",
            ))
        })
    });
}

fn bench_sandbox(c: &mut Criterion) {
    let server = SandboxServer::new(infera_sandbox::domain::domain_registry());
    let mut inputs = HashMap::new();
    inputs.insert("halos".to_string(), frame(50_000));
    let program = "\
big = filter(halos, mass > 1e13)
scored = with_column(big, log_mass, log10(mass))
g = group_agg(scored, by=[sim], mean(log_mass), count(*))
top = top_n(big, mass, 100)
return g
";
    c.bench_function("dsl_parse", |b| {
        b.iter(|| black_box(infera_sandbox::lang::parse_program(program).unwrap()))
    });
    c.bench_function("dsl_execute_50k_rows", |b| {
        b.iter(|| {
            black_box(
                server
                    .execute(ExecutionRequest {
                        program: program.to_string(),
                        inputs: inputs.clone(),
                    })
                    .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_frame_kernels, bench_rag, bench_sandbox);
criterion_main!(benches);
