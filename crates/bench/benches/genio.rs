//! GenericIO-lite I/O benchmarks: the selective-column-read property that
//! underpins InferA's data reduction (reading 2 of 24 halo columns should
//! cost a fraction of a full read).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infera_hacc::{EntityKind, GenioReader, GenioWriter, SimConfig, SimModel, SubgridParams};
use std::hint::black_box;
use std::path::PathBuf;

fn setup_file(n_halos: usize) -> PathBuf {
    let dir = std::env::temp_dir().join("infera_bench_genio");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("halos_{n_halos}.gio"));
    if !path.exists() {
        let model = SimModel::new(
            7,
            0,
            SubgridParams::default(),
            SimConfig {
                n_halos,
                particles_per_step: 10,
                ..SimConfig::default()
            },
        );
        let mut w = GenioWriter::create(&path, EntityKind::Halos.schema()).unwrap();
        w.write_block(&model.halo_catalog(624)).unwrap();
        w.finish().unwrap();
    }
    path
}

fn bench_selective_read(c: &mut Criterion) {
    let mut group = c.benchmark_group("genio_read");
    for n_halos in [2_000usize, 20_000] {
        let path = setup_file(n_halos);
        group.bench_with_input(
            BenchmarkId::new("two_columns", n_halos),
            &path,
            |b, path| {
                b.iter(|| {
                    let mut r = GenioReader::open(path).unwrap();
                    black_box(
                        r.read_columns(&["fof_halo_tag", "fof_halo_mass"]).unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("all_columns", n_halos),
            &path,
            |b, path| {
                b.iter(|| {
                    let mut r = GenioReader::open(path).unwrap();
                    black_box(r.read_all().unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_catalog_generation(c: &mut Criterion) {
    let model = SimModel::new(
        3,
        0,
        SubgridParams::default(),
        SimConfig {
            n_halos: 5_000,
            particles_per_step: 10_000,
            ..SimConfig::default()
        },
    );
    c.bench_function("generate_halo_catalog_5k", |b| {
        b.iter(|| black_box(model.halo_catalog(498)))
    });
    c.bench_function("generate_particle_block_10k", |b| {
        b.iter(|| black_box(model.particle_block(498, 0, 10_000)))
    });
}

fn bench_compression(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("infera_bench_genio");
    std::fs::create_dir_all(&dir).unwrap();
    let model = SimModel::new(
        7,
        0,
        SubgridParams::default(),
        SimConfig {
            n_halos: 20_000,
            particles_per_step: 10,
            ..SimConfig::default()
        },
    );
    let block = model.halo_catalog(624);
    let raw = dir.join("halos_raw_cmp.gio");
    let comp = dir.join("halos_comp.gio");
    let mut w = GenioWriter::create(&raw, EntityKind::Halos.schema()).unwrap();
    w.write_block(&block).unwrap();
    let raw_size = w.finish().unwrap();
    let mut w = GenioWriter::create_compressed(&comp, EntityKind::Halos.schema()).unwrap();
    w.write_block(&block).unwrap();
    let comp_size = w.finish().unwrap();
    eprintln!(
        "[genio] halo catalog on disk: raw {raw_size} B vs compressed {comp_size} B ({:.0}%)",
        100.0 * comp_size as f64 / raw_size as f64
    );
    let mut group = c.benchmark_group("genio_codec");
    group.bench_function("read_int_columns_raw", |b| {
        b.iter(|| {
            let mut r = GenioReader::open(&raw).unwrap();
            black_box(r.read_columns(&["fof_halo_tag", "fof_halo_count"]).unwrap())
        })
    });
    group.bench_function("read_int_columns_compressed", |b| {
        b.iter(|| {
            let mut r = GenioReader::open(&comp).unwrap();
            black_box(r.read_columns(&["fof_halo_tag", "fof_halo_count"]).unwrap())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_selective_read,
    bench_catalog_generation,
    bench_compression
);
criterion_main!(benches);
