//! End-to-end pipeline benchmark: one full InferA question (plan +
//! supervisor-routed analysis + provenance) under the error-free profile,
//! on a small cached ensemble.

use criterion::{criterion_group, criterion_main, Criterion};
use infera_core::{InferA, SessionConfig};
use infera_hacc::EnsembleSpec;
use infera_llm::{BehaviorProfile, SemanticLevel};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let base = std::env::temp_dir().join("infera_bench_pipeline");
    let ens = base.join("ens");
    if !ens.join("ensemble.json").is_file() {
        infera_hacc::generate(&EnsembleSpec::tiny(99), &ens).unwrap();
    }
    let manifest = infera_hacc::Manifest::load(&ens).unwrap();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("ask_top20_question", |b| {
        b.iter(|| {
            let work = base.join("work");
            std::fs::remove_dir_all(&work).ok();
            let session = InferA::from_manifest(manifest.clone())
                .work_dir(&work)
                .seed(1)
                .profile(BehaviorProfile::perfect())
                .build()
                .unwrap();
            black_box(
                session
                    .ask_with_semantic(
                        "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
                        SemanticLevel::Easy,
                        1,
                    )
                    .unwrap(),
            )
        })
    });
    group.bench_function("planning_stage_only", |b| {
        let work = base.join("planwork");
        std::fs::remove_dir_all(&work).ok();
        let session = InferA::from_manifest(manifest.clone())
            .work_dir(&work)
            .seed(1)
            .profile(BehaviorProfile::perfect())
            .build()
            .unwrap();
        b.iter(|| {
            black_box(
                session
                    .plan("Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?")
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
