//! Columnar-database benchmarks: scans with projection pruning, zone-map
//! chunk skipping, grouped aggregation and joins.

use criterion::{criterion_group, criterion_main, Criterion};
use infera_columnar::Database;
use infera_frame::{Column, DataFrame};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn setup_db(rows: usize) -> Database {
    let dir = std::env::temp_dir().join(format!("infera_bench_columnar_{rows}"));
    std::fs::remove_dir_all(&dir).ok();
    let db = Database::create(&dir).unwrap();
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
    // Sorted-ish tag column gives zone maps selectivity on tag ranges.
    let tags: Vec<i64> = (0..rows as i64).collect();
    let sims: Vec<i64> = (0..rows).map(|i| (i % 4) as i64).collect();
    let mass: Vec<f64> = (0..rows).map(|_| 10f64.powf(11.0 + 4.0 * rng.random::<f64>())).collect();
    let count: Vec<i64> = mass.iter().map(|m| (m / 1.3e9) as i64).collect();
    let df = DataFrame::from_columns([
        ("tag", Column::I64(tags)),
        ("sim", Column::I64(sims)),
        ("mass", Column::F64(mass)),
        ("count", Column::I64(count)),
    ])
    .unwrap();
    db.create_table("halos", &df.schema()).unwrap();
    db.append_chunked("halos", &df, 8_192).unwrap();
    db
}

fn bench_queries(c: &mut Criterion) {
    let db = setup_db(200_000);
    let mut group = c.benchmark_group("columnar");

    group.bench_function("full_scan_project", |b| {
        b.iter(|| black_box(db.query("SELECT tag, mass FROM halos").unwrap()))
    });
    group.bench_function("zone_map_selective_filter", |b| {
        // Tags are sorted: the predicate hits ~1 of 25 chunks.
        b.iter(|| {
            black_box(
                db.query("SELECT tag, mass FROM halos WHERE tag >= 190000")
                    .unwrap(),
            )
        })
    });
    group.bench_function("non_selective_filter", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT tag FROM halos WHERE mass > 1e13")
                    .unwrap(),
            )
        })
    });
    group.bench_function("group_by_aggregate", |b| {
        b.iter(|| {
            black_box(
                db.query(
                    "SELECT sim, COUNT(*) AS n, AVG(mass) AS m, STDDEV(mass) AS s FROM halos GROUP BY sim",
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("top_100_order_by", |b| {
        b.iter(|| {
            black_box(
                db.query("SELECT tag, mass FROM halos ORDER BY mass DESC LIMIT 100")
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let db = setup_db(50_000);
    // A galaxies table referencing halos.
    let n = 100_000usize;
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(2);
    let gal = DataFrame::from_columns([
        ("gal_tag", Column::I64((0..n as i64).collect())),
        (
            "tag",
            Column::I64((0..n).map(|_| rng.random_range(0..50_000i64)).collect()),
        ),
        (
            "stellar",
            Column::F64((0..n).map(|_| rng.random::<f64>() * 1e11).collect()),
        ),
    ])
    .unwrap();
    db.create_table("galaxies", &gal.schema()).unwrap();
    db.append_chunked("galaxies", &gal, 8_192).unwrap();

    c.bench_function("columnar_join_50k_x_100k", |b| {
        b.iter(|| {
            black_box(
                db.query(
                    "SELECT halos.tag, stellar FROM halos JOIN galaxies ON halos.tag = galaxies.tag WHERE mass > 1e14",
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_queries, bench_join);
criterion_main!(benches);
