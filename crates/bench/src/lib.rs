//! Shared infrastructure for the benchmark/reproduction binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/`; see
//! DESIGN.md §4 for the experiment index. Generated ensembles are cached
//! under `target/infera-data/` so repeated invocations don't regenerate.

use infera_hacc::{EnsembleSpec, Manifest};
use std::path::{Path, PathBuf};

/// Root directory for cached ensembles and experiment outputs.
pub fn data_root() -> PathBuf {
    let root = std::env::var("INFERA_DATA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/infera-data")
        });
    std::fs::create_dir_all(&root).expect("create data root");
    root
}

/// Output directory for a named experiment.
pub fn out_dir(name: &str) -> PathBuf {
    let dir = data_root().join("out").join(name);
    std::fs::create_dir_all(&dir).expect("create out dir");
    dir
}

/// Generate (or reuse) a named ensemble.
pub fn ensure_ensemble(name: &str, spec: &EnsembleSpec) -> Manifest {
    let root = data_root().join(name);
    if root.join("ensemble.json").is_file() {
        if let Ok(m) = Manifest::load(&root) {
            // Reuse only if the cached ensemble matches the spec.
            if m.seed == spec.seed
                && m.n_sims as usize == spec.n_sims
                && m.steps == spec.steps
                && m.n_halos == spec.sim.n_halos
                && m.particles_per_step == spec.sim.particles_per_step
            {
                return m;
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }
    eprintln!("[infera-bench] generating ensemble '{name}' ...");
    let m = infera_hacc::generate(spec, &root).expect("ensemble generation");
    eprintln!(
        "[infera-bench] '{name}': {} sims x {} steps, {:.1} MB on disk",
        m.n_sims,
        m.steps.len(),
        m.total_bytes() as f64 / 1e6
    );
    m
}

/// The evaluation ensemble (Table 2; stands in for the 4-run 1.4 TB
/// LANL dataset).
pub fn eval_ensemble(quick: bool) -> Manifest {
    if quick {
        ensure_ensemble(
            "eval-quick",
            &EnsembleSpec {
                n_sims: 4,
                steps: EnsembleSpec::evenly_spaced_steps(8),
                sim: infera_hacc::SimConfig {
                    n_halos: 800,
                    particles_per_step: 4_000,
                    ..Default::default()
                },
                seed: 2025,
                particle_block_rows: 4_096,
            },
        )
    } else {
        ensure_ensemble("eval", &EnsembleSpec::eval_scale(2025))
    }
}

/// The 32-run scalability ensemble (Fig. 4; stands in for the 11.2 TB
/// ANL dataset).
pub fn case_study_ensemble(quick: bool) -> Manifest {
    if quick {
        ensure_ensemble(
            "case-study-quick",
            &EnsembleSpec {
                n_sims: 32,
                steps: EnsembleSpec::evenly_spaced_steps(6),
                sim: infera_hacc::SimConfig {
                    n_halos: 300,
                    particles_per_step: 2_000,
                    ..Default::default()
                },
                seed: 2026,
                particle_block_rows: 4_096,
            },
        )
    } else {
        ensure_ensemble("case-study", &EnsembleSpec::case_study_scale(2026))
    }
}

/// Parse `--quick` / `--runs N` / `--seed N` flags shared by the bins.
pub struct BinArgs {
    pub quick: bool,
    pub runs: Option<usize>,
    pub seed: u64,
}

impl BinArgs {
    pub fn parse() -> BinArgs {
        let args: Vec<String> = std::env::args().collect();
        let mut out = BinArgs {
            quick: args.iter().any(|a| a == "--quick"),
            runs: None,
            seed: 2025,
        };
        for i in 0..args.len() {
            if args[i] == "--runs" {
                out.runs = args.get(i + 1).and_then(|v| v.parse().ok());
            }
            if args[i] == "--seed" {
                if let Some(s) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    out.seed = s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensemble_caching_roundtrip() {
        let spec = EnsembleSpec::tiny(909);
        let name = "test-cache";
        std::fs::remove_dir_all(data_root().join(name)).ok();
        let m1 = ensure_ensemble(name, &spec);
        let mtime1 = std::fs::metadata(data_root().join(name).join("ensemble.json"))
            .unwrap()
            .modified()
            .unwrap();
        let m2 = ensure_ensemble(name, &spec);
        let mtime2 = std::fs::metadata(data_root().join(name).join("ensemble.json"))
            .unwrap()
            .modified()
            .unwrap();
        assert_eq!(m1.total_bytes(), m2.total_bytes());
        assert_eq!(mtime1, mtime2, "second call must reuse the cache");
        // A different spec regenerates.
        let mut other = spec.clone();
        other.sim.n_halos += 10;
        let m3 = ensure_ensemble(name, &other);
        assert_eq!(m3.n_halos, other.sim.n_halos);
        std::fs::remove_dir_all(data_root().join(name)).ok();
    }
}
