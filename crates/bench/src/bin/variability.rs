//! Regenerate the **§4.5 analytical-variability study**: the ambiguous
//! FSN/VEL parameter question diverges into multiple valid strategies
//! across runs, while the precise top-20 question reproduces identical
//! data outputs.

use infera_bench::{eval_ensemble, out_dir, BinArgs};
use infera_core::variability::variability_study;

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);
    let runs = args.runs.unwrap_or(10);
    let work = out_dir("variability");
    std::fs::remove_dir_all(&work).ok();
    let report =
        variability_study(&manifest, &work, runs, args.seed).expect("variability study");
    println!("{}", report.to_text());
    println!("strategy key: 0=mean of top-100 per sim, 1=linear regression vs parameters, 2=rank-median comparison, 3=correlation matrix");
}
