//! Regenerate **Figure 2**: the structure of a HACC ensemble — multiple
//! simulations, each with timesteps holding galaxies, halos and raw
//! particles — rendered as a text diagram plus the concrete manifest
//! inventory.

use infera_bench::{eval_ensemble, BinArgs};
use infera_hacc::EntityKind;

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);

    println!("Figure 2: ensemble structure\n");
    println!("ensemble ({} simulations, {} snapshots each, {:.1} MB total)",
        manifest.n_sims,
        manifest.steps.len(),
        manifest.total_bytes() as f64 / 1e6
    );
    for sim in 0..manifest.n_sims.min(3) {
        let p = manifest.params[sim as usize];
        println!("├── sim_{sim:04}  (f_SN={:.2}, log v_SN={:.2}, log T_AGN={:.2}, beta_BH={:.2}, M_seed={:.1e})",
            p.f_sn, p.log_v_sn, p.log_t_agn, p.beta_bh, p.m_seed);
        for (i, step) in manifest.steps.iter().enumerate().take(2) {
            let branch = if i == 0 { "│   ├──" } else { "│   ├──" };
            println!("{branch} step_{step:04}");
            for kind in EntityKind::ALL {
                let entry = manifest
                    .files
                    .iter()
                    .find(|f| f.sim == sim && f.step == *step && f.kind == kind.label());
                if let Some(e) = entry {
                    println!(
                        "│   │   ├── {}  ({} rows, {:.1} KB)",
                        kind.file_name(),
                        e.n_rows,
                        e.n_bytes as f64 / 1e3
                    );
                }
            }
        }
        println!("│   └── ... {} more snapshots", manifest.steps.len().saturating_sub(2));
    }
    println!("└── ... {} more simulations", manifest.n_sims.saturating_sub(3));

    println!("\nPer-entity totals across the ensemble:");
    for kind in EntityKind::ALL {
        let rows: u64 = manifest
            .files
            .iter()
            .filter(|f| f.kind == kind.label())
            .map(|f| f.n_rows)
            .sum();
        println!(
            "  {:<10} {:>12} rows  {:>10.1} MB  ({} columns)",
            kind.label(),
            rows,
            manifest.bytes_of_kind(kind) as f64 / 1e6,
            kind.column_names().len()
        );
    }
}
