//! Regenerate **Figure 5**: the ParaView case study — "visualize a target
//! dark matter halo and all surrounding halos within a 20 megaparsec
//! radius", with the target highlighted in red — through the full
//! pipeline with the custom radius-query tool.

use infera_bench::{eval_ensemble, out_dir, BinArgs};
use infera_core::InferA;
use infera_llm::{BehaviorProfile, SemanticLevel};

const QUERY: &str = "Visualize the largest dark matter halo in simulation 0 at timestep 624 and all surrounding halos within a 20 megaparsec radius.";

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);
    let work = out_dir(if args.quick { "figure5-quick" } else { "figure5" });
    std::fs::remove_dir_all(work.join("run")).ok();

    let session = InferA::from_manifest(manifest)
        .work_dir(work.join("run"))
        .seed(args.seed)
        .profile(BehaviorProfile::perfect())
        .build()
        .expect("session");
    let report = session
        .ask_with_semantic(QUERY, SemanticLevel::Easy, 5)
        .expect("figure 5 run");
    assert!(report.completed, "figure 5 run failed:\n{}", report.summary);

    let prov = infera_provenance::ProvenanceStore::create(&work.join("run/run_0001/provenance"))
        .expect("provenance");
    let scene_art = report
        .visualizations
        .last()
        .expect("scene artifact");
    let vtk = prov.get_text(scene_art).expect("vtk artifact");
    let path = work.join("figure5_scene.vtk");
    std::fs::write(&path, &vtk).expect("write vtk");

    let result = report.result.as_ref().expect("neighborhood frame");
    println!("Figure 5 ParaView scene written to {}", path.display());
    println!(
        "target + neighbors within 20 Mpc: {} halos (target highlighted, scalar=1)",
        result.n_rows()
    );
    println!(
        "max neighbor distance: {:.2} Mpc",
        result
            .column("distance_mpc")
            .unwrap()
            .to_f64_vec()
            .unwrap()
            .iter()
            .copied()
            .fold(0.0, f64::max)
    );
    println!("open in ParaView: File > Open > figure5_scene.vtk (legacy VTK polydata)");
}
