//! Regenerate **Table 2**: the 20-question × N-run evaluation of InferA,
//! grouped by analysis difficulty, semantic complexity, scope and success
//! status.
//!
//! ```text
//! cargo run -p infera-bench --bin table2 --release            # 10 runs/question (paper scale)
//! cargo run -p infera-bench --bin table2 --release -- --quick # 3 runs/question, small ensemble
//! ```

use infera_bench::{eval_ensemble, out_dir, BinArgs};
use infera_core::{evaluate, EvalConfig, SessionConfig};

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);
    let runs = args.runs.unwrap_or(if args.quick { 3 } else { 10 });
    let work = out_dir(if args.quick { "table2-quick" } else { "table2" });
    std::fs::remove_dir_all(work.join("runs")).ok();

    let cfg = EvalConfig {
        runs_per_question: runs,
        session: SessionConfig::default().with_seed(args.seed),
        only_questions: vec![],
    };
    eprintln!(
        "[table2] evaluating 20 questions x {runs} runs on a {:.1} MB ensemble ...",
        manifest.total_bytes() as f64 / 1e6
    );
    let results = evaluate(manifest, &work.join("runs"), &cfg).expect("evaluation");

    let text = results.table2_text();
    println!("{text}");
    println!(
        "overall planned-task completion: {:.0}% (paper: 93%)",
        results.overall_task_completion()
    );
    println!("\n{}", results.storage_study());

    // Attributed cost profile: where the wall time and tokens went,
    // aggregated over every run from the per-run traces.
    println!("\nper-stage cost breakdown (all runs):");
    println!("{}", results.stage_breakdown_text());

    let out = work.join("table2.txt");
    std::fs::write(&out, &text).expect("write table2.txt");
    eprintln!("[table2] written to {}", out.display());

    // Opt-in trace export: INFERA_TRACE=<path> dumps every run's span
    // tree as JSONL for offline analysis.
    let trace_path = std::env::var("INFERA_TRACE").unwrap_or_default();
    if !trace_path.is_empty() {
        let path = std::path::PathBuf::from(trace_path);
        match results.write_trace_jsonl(&path) {
            Ok(()) => eprintln!("[table2] trace written to {}", path.display()),
            Err(e) => eprintln!("[table2] trace export failed: {e}"),
        }
    }
}
