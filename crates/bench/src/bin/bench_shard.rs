//! Shard-scaling benchmark: re-runs the Figure 4 case-study workload
//! ("halo count and halo mass over all timesteps in all simulations")
//! over a 32-run ensemble partitioned across 1/2/4/8 shards, writing
//! `BENCH_shard.json`.
//!
//! ## Timing model
//!
//! Shard workers are simulated in-process (this host may have a single
//! core), so reported walls use the **simulated-distributed critical
//! path**: a query's wall is `max(per-shard fragment wall) +
//! combine wall`, i.e. what a cluster running the shards concurrently
//! would observe. Each shard scans only its `1/N` partition, so the
//! critical path shrinks near-linearly with the shard count.
//!
//! ## Correctness anchor
//!
//! Every digest is checked against a serial single-database run of the
//! same SQL over the same rows — bit-identical or the bench aborts.
//! A second pass runs with an active fault plan (transient send /
//! execute / merge failures); after retries the digests must again be
//! bit-identical.

use infera_bench::{data_root, ensure_ensemble};
use infera_columnar::Database;
use infera_frame::{Column, DataFrame};
use infera_hacc::{EnsembleSpec, EntityKind, GenioReader, Manifest, SimConfig};
use infera_shard::{ShardLayout, ShardedDb};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

const SHARD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// The Figure 4 case-study queries, restricted to order-independent
/// arithmetic (COUNT / MAX / MEDIAN / exact integer sums) so bitwise
/// equality across shard counts is meaningful.
const QUERIES: &[(&str, &str)] = &[
    (
        "max_mass_per_sim_step",
        "SELECT sim, step, MAX(fof_halo_mass) AS max_mass \
         FROM halos GROUP BY sim, step ORDER BY sim, step",
    ),
    (
        "max_count_per_sim_step",
        "SELECT sim, step, MAX(fof_halo_count) AS max_count \
         FROM halos GROUP BY sim, step ORDER BY sim, step",
    ),
    (
        "growth_per_step",
        "SELECT step, COUNT(*) AS n, SUM(fof_halo_count) AS total_count, \
         MEDIAN(fof_halo_mass) AS med_mass \
         FROM halos GROUP BY step ORDER BY step",
    ),
    (
        "massive_tail",
        "SELECT sim, COUNT(*) AS n_massive FROM halos \
         WHERE fof_halo_count > 100 GROUP BY sim ORDER BY sim",
    ),
];

#[derive(Debug, Serialize, Deserialize)]
struct QueryTiming {
    name: String,
    /// Critical-path wall: max per-shard fragment wall + combine wall.
    wall_ms: f64,
    max_shard_ms: f64,
    combine_ms: f64,
    rows_scanned_per_shard_max: u64,
    cache_hit: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct ScalePoint {
    shards: usize,
    /// Sum of per-query critical-path walls, best of `reps`.
    wall_ms: f64,
    speedup_vs_1: f64,
    digests_match: bool,
    queries: Vec<QueryTiming>,
}

#[derive(Debug, Serialize, Deserialize)]
struct FaultPass {
    plan: String,
    shards: usize,
    retries_consumed: u64,
    digests_match: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    smoke: bool,
    timing_model: String,
    host_cores: usize,
    n_sims: u32,
    n_steps: usize,
    halo_rows: u64,
    serial_digests: Vec<(String, String)>,
    scaling: Vec<ScalePoint>,
    fault_pass: FaultPass,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn digest(frame: &DataFrame) -> u64 {
    fnv64(frame.to_csv_string().as_bytes())
}

/// Halo-focused 32-run ensemble: Figure 4 touches only the halo
/// catalogs, so particles stay small to keep generation fast.
fn shard_ensemble(smoke: bool) -> Manifest {
    let (name, steps, n_halos) = if smoke {
        ("shard-bench-smoke", 2, 120)
    } else {
        ("shard-bench", 24, 2_000)
    };
    ensure_ensemble(
        name,
        &EnsembleSpec {
            n_sims: 32,
            steps: EnsembleSpec::evenly_spaced_steps(steps),
            sim: SimConfig {
                n_halos,
                particles_per_step: 512,
                ..SimConfig::default()
            },
            seed: 2026,
            particle_block_rows: 4_096,
        },
    )
}

/// Selective halo read over the whole ensemble, in (sim, step) order —
/// the loader's append discipline that makes shard-order concatenation
/// equal to the serial row order.
fn load_halo_batches(manifest: &Manifest) -> Vec<DataFrame> {
    let cols = ["fof_halo_tag", "fof_halo_count", "fof_halo_mass"];
    let mut batches = Vec::new();
    for sim in 0..manifest.n_sims {
        for &step in &manifest.steps {
            let path = manifest
                .file_path(sim, step, EntityKind::Halos)
                .expect("halo file");
            let mut reader = GenioReader::open(&path).expect("open halo file");
            let mut batch = reader.read_columns(&cols).expect("read halo columns");
            let n = batch.n_rows();
            batch
                .add_column("sim".into(), Column::I64(vec![i64::from(sim); n]))
                .expect("sim column");
            batch
                .add_column("step".into(), Column::I64(vec![i64::from(step); n]))
                .expect("step column");
            batches.push(batch);
        }
    }
    batches
}

fn fill(db: &ShardedDb, batches: &[DataFrame]) {
    db.create_table("halos", &batches[0].schema())
        .expect("create halos");
    for b in batches {
        db.append("halos", b).expect("append halos");
    }
}

/// Run every query once, returning per-query critical-path timings and
/// digests.
fn run_queries(db: &ShardedDb) -> (Vec<QueryTiming>, Vec<u64>) {
    let mut timings = Vec::new();
    let mut digests = Vec::new();
    for (name, sql) in QUERIES {
        let (frame, _, info) = db.query_traced(sql).expect("query");
        let max_shard_ms = info
            .per_shard
            .iter()
            .map(|s| s.wall_ms)
            .fold(0.0f64, f64::max);
        timings.push(QueryTiming {
            name: (*name).to_string(),
            wall_ms: max_shard_ms + info.combine_ms,
            max_shard_ms,
            combine_ms: info.combine_ms,
            rows_scanned_per_shard_max: info
                .per_shard
                .iter()
                .map(|s| s.rows_scanned)
                .max()
                .unwrap_or(0),
            cache_hit: info.cache_hit,
        });
        digests.push(digest(&frame));
    }
    (timings, digests)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke" || a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shard.json"));
    let reps = if smoke { 2 } else { 5 };

    let manifest = shard_ensemble(smoke);
    eprintln!(
        "bench-shard: ensemble ready ({} sims x {} steps)",
        manifest.n_sims,
        manifest.steps.len()
    );
    let batches = load_halo_batches(&manifest);
    let halo_rows: u64 = batches.iter().map(|b| b.n_rows() as u64).sum();
    eprintln!("bench-shard: {halo_rows} halo rows loaded");

    // Serial anchor: one plain database holding all rows.
    let work = data_root().join("out").join("bench-shard");
    std::fs::remove_dir_all(&work).ok();
    std::fs::create_dir_all(&work).expect("work dir");
    let serial_digests: Vec<u64> = {
        let dir = work.join("serial");
        let db = Database::create(&dir).expect("serial db");
        db.create_table("halos", &batches[0].schema()).expect("create");
        for b in &batches {
            db.append("halos", b).expect("append");
        }
        QUERIES
            .iter()
            .map(|(_, sql)| digest(&db.query(sql).expect("serial query")))
            .collect()
    };

    let mut scaling: Vec<ScalePoint> = Vec::new();
    let mut fault_pass: Option<FaultPass> = None;
    for &n_shards in SHARD_COUNTS {
        let dir = work.join(format!("shards_{n_shards}"));
        let layout = ShardLayout::build(n_shards, manifest.n_sims, manifest.fingerprint());
        let obs = infera_obs::Obs::new();
        let db = ShardedDb::create(&dir, layout, obs.clone()).expect("sharded db");
        fill(&db, &batches);

        // Per-query best-of-reps critical path (first rep also pays
        // fragment serialization; later reps hit the plan cache, as
        // serve would). The per-query minimum is the standard noise
        // floor estimator for short kernels.
        let mut queries: Vec<QueryTiming> = Vec::new();
        let mut digests: Vec<u64> = Vec::new();
        for _ in 0..reps {
            let (timings, run_digests) = run_queries(&db);
            if queries.is_empty() {
                queries = timings;
                digests = run_digests;
                continue;
            }
            assert!(digests == run_digests, "digests unstable across reps");
            for (best, t) in queries.iter_mut().zip(timings) {
                if t.wall_ms < best.wall_ms {
                    *best = t;
                }
            }
        }
        let wall_ms: f64 = queries.iter().map(|t| t.wall_ms).sum();
        let digests_match = digests == serial_digests;
        assert!(
            digests_match,
            "{n_shards}-shard digests diverged from the serial anchor"
        );
        scaling.push(ScalePoint {
            shards: n_shards,
            wall_ms,
            speedup_vs_1: 0.0, // filled below once the 1-shard wall is known
            digests_match,
            queries,
        });
        eprintln!("bench-shard: {n_shards} shard(s) wall {wall_ms:.2} ms");

        // Resilience pass on the widest layout: transient faults at
        // every boundary must retry to a bit-identical answer.
        if n_shards == *SHARD_COUNTS.last().unwrap() {
            let plan = "seed=42;shard.send=nth1:error;shard.exec=nth2:error;shard.merge=nth1:error";
            infera_faults::install(
                infera_faults::FaultPlan::parse(plan).expect("fault plan"),
            );
            let before = obs
                .metrics
                .counter(infera_obs::metric_names::RETRY_ATTEMPTS);
            let (_, digests) = run_queries(&db);
            infera_faults::clear();
            let retries = obs
                .metrics
                .counter(infera_obs::metric_names::RETRY_ATTEMPTS)
                - before;
            assert!(retries > 0, "fault plan injected no retries");
            assert!(
                digests == serial_digests,
                "faulted digests diverged from the serial anchor"
            );
            fault_pass = Some(FaultPass {
                plan: plan.to_string(),
                shards: n_shards,
                retries_consumed: retries,
                digests_match: true,
            });
        }
    }

    let base = scaling[0].wall_ms;
    for point in &mut scaling {
        point.speedup_vs_1 = base / point.wall_ms.max(1e-9);
        eprintln!(
            "bench-shard: {} shard(s) speedup {:.2}x",
            point.shards, point.speedup_vs_1
        );
    }

    let report = Report {
        bench: "shard-scatter-gather".to_string(),
        smoke,
        timing_model: "simulated-distributed critical path: per-query wall = \
                       max(per-shard fragment wall) + combine wall"
            .to_string(),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        n_sims: manifest.n_sims,
        n_steps: manifest.steps.len(),
        halo_rows,
        serial_digests: QUERIES
            .iter()
            .zip(&serial_digests)
            .map(|((name, _), d)| ((*name).to_string(), format!("{d:016x}")))
            .collect(),
        scaling,
        fault_pass: fault_pass.expect("fault pass ran"),
    };

    // The scaling gate: smoke mode is a correctness gate only (walls on
    // a loaded CI host are noise at that scale).
    if !smoke {
        let speedup_of = |n: usize| {
            report
                .scaling
                .iter()
                .find(|p| p.shards == n)
                .map_or(0.0, |p| p.speedup_vs_1)
        };
        assert!(
            speedup_of(4) >= 3.0,
            "4-shard speedup below 3x: {:.2}",
            speedup_of(4)
        );
        assert!(
            speedup_of(8) >= 5.0,
            "8-shard speedup below 5x: {:.2}",
            speedup_of(8)
        );
    }

    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write BENCH_shard.json");
    std::fs::remove_dir_all(&work).ok();
    println!(
        "bench-shard: wrote {} (digests bit-identical across {:?} shards{})",
        out_path.display(),
        SHARD_COUNTS,
        if smoke { ", smoke" } else { "" },
    );
}
