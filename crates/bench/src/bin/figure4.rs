//! Regenerate **Figure 4** and the §4.3 case study: "plot the halo count
//! and halo mass for 32 simulations over all timesteps" — the full InferA
//! pipeline over the 32-member scalability ensemble, reporting the same
//! quantities the paper does (database size, CSV sizes, runtime, tokens).
//!
//! Paper reference: 11.2 TB input → 18 GB database, ~1.4 MB dataframes,
//! 5403 s, 126,568 tokens.

use infera_bench::{case_study_ensemble, out_dir, BinArgs};
use infera_core::InferA;
use infera_llm::{BehaviorProfile, SemanticLevel};

const QUERY: &str = "Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass.";

fn main() {
    let args = BinArgs::parse();
    let manifest = case_study_ensemble(args.quick);
    let total_bytes = manifest.total_bytes();
    let work = out_dir(if args.quick { "figure4-quick" } else { "figure4" });
    std::fs::remove_dir_all(work.join("run")).ok();

    // The case study is a demo run, hence the perfect profile.
    let session = InferA::from_manifest(manifest)
        .work_dir(work.join("run"))
        .seed(args.seed)
        .profile(BehaviorProfile::perfect())
        .build()
        .expect("session");
    println!(
        "Figure 4 case study: 32-simulation ensemble, {:.1} MB on disk (stands in for 11.2 TB)\n",
        total_bytes as f64 / 1e6
    );
    let report = session
        .ask_with_semantic(QUERY, SemanticLevel::Easy, 4)
        .expect("case study run");
    assert!(report.completed, "case study failed:\n{}", report.summary);

    // Copy the two rendered figures out of the provenance store.
    let prov = infera_provenance::ProvenanceStore::create(&work.join("run/run_0001/provenance"))
        .expect("provenance");
    for (i, art) in report.visualizations.iter().enumerate() {
        let svg = prov.get_text(art).expect("svg artifact");
        let path = work.join(format!("figure4_{}.svg", i + 1));
        std::fs::write(&path, svg).expect("write svg");
        println!("plot {} -> {}", i + 1, path.display());
    }

    let result = report.result.as_ref().expect("tracked halos frame");
    println!("\ncase-study metrics (paper reference in parentheses):");
    println!(
        "  input ensemble:      {:>12.1} MB  (11.2 TB)",
        total_bytes as f64 / 1e6
    );
    println!(
        "  storage overhead:    {:>12.2} MB  (18 GB database + 1.4 MB dataframes)",
        report.storage_bytes as f64 / 1e6
    );
    println!(
        "  overhead fraction:   {:>12.3} %   (0.16 %)",
        100.0 * report.storage_bytes as f64 / total_bytes as f64
    );
    println!(
        "  runtime:             {:>12.1} s   (5403 s)",
        (report.wall_ms + report.llm_latency_ms) as f64 / 1000.0
    );
    println!("  tokens:              {:>12}     (126,568)", report.tokens);
    println!("\nper-stage cost breakdown:");
    println!("{}", report.breakdown_text());
    let trace_path = std::env::var("INFERA_TRACE").unwrap_or_default();
    if !trace_path.is_empty() {
        let mut run_attrs = std::collections::BTreeMap::new();
        run_attrs.insert(
            "question".to_string(),
            infera_obs::AttrValue::from(QUERY),
        );
        let jsonl = infera_obs::trace_to_jsonl(&report.trace, &run_attrs);
        match std::fs::write(&trace_path, jsonl) {
            Ok(()) => eprintln!("[figure4] trace written to {trace_path}"),
            Err(e) => eprintln!("[figure4] trace export failed: {e}"),
        }
    }
    // The final compute is the per-halo growth fit; one row per tracked halo.
    println!("  tracked halos (growth fits): {}", result.n_rows());
    if result.has_column("slope") {
        let slopes = result.column("slope").unwrap().to_f64_vec().unwrap();
        println!(
            "  log-mass growth slopes: {:?}",
            slopes.iter().map(|s| (s * 1e4).round() / 1e4).collect::<Vec<_>>()
        );
    }
    if args.quick {
        println!("\nnote: --quick uses a catalog-dominated mini ensemble; the overhead\n\
                  fraction is only meaningful at full scale (particles dominate there,\n\
                  as in the real data). Run without --quick for the headline ratio.");
    }
}
