//! Regenerate **Table 1**: the difficulty matrix of representative
//! evaluation questions (analysis difficulty × semantic complexity).

fn main() {
    println!("{}", infera_core::table1_text());
    println!("\nFull question set:");
    for q in infera_core::question_set() {
        println!(
            "Q{:<3} analysis={:<6} semantic={:<6} scope={:<22} {}",
            q.id,
            q.analysis.label(),
            q.semantic.label(),
            q.scope.label(),
            q.text
        );
    }
}
