//! Regenerate the **§4.4 baseline comparison**: direct LLM chat (context
//! overflow + hallucination) and PandasAI-style full ingestion (memory
//! blow-up) vs InferA's selective pipeline on the same question.

use infera_bench::{eval_ensemble, out_dir, BinArgs};
use infera_core::baselines::comparison_report;
use infera_core::InferA;
use infera_llm::{BehaviorProfile, SemanticLevel, SimulatedLlm, TokenMeter};

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);
    let llm = SimulatedLlm::new(args.seed, BehaviorProfile::default(), TokenMeter::new());
    println!("{}", comparison_report(&manifest, &llm));

    // InferA on the same class of question, for contrast.
    let work = out_dir("baselines");
    std::fs::remove_dir_all(work.join("run")).ok();
    let session = InferA::from_manifest(manifest.clone())
        .work_dir(work.join("run"))
        .seed(args.seed)
        .profile(BehaviorProfile::perfect())
        .build()
        .expect("session");
    let report = session
        .ask_with_semantic(
            "What is the maximum fof_halo_mass at timestep 624 in simulation 1?",
            SemanticLevel::Easy,
            1,
        )
        .expect("infera run");
    println!(
        "InferA, same question: completed={} (storage {:.2} MB of a {:.1} MB ensemble, {} tokens)",
        report.completed,
        report.storage_bytes as f64 / 1e6,
        manifest.total_bytes() as f64 / 1e6,
        report.tokens
    );
}
