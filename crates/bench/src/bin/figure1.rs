//! Regenerate **Figure 1**: a projected particle view of one HACC
//! simulation showing clustered dark-matter structure (halos) against the
//! background web.

use infera_bench::{eval_ensemble, out_dir, BinArgs};
use infera_hacc::EntityKind;
use infera_viz::{Chart, Series};

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);
    let model = manifest.spec().model(0);
    let step = *manifest.steps.last().expect("steps");

    // Raw particles, projected onto the x-y plane.
    let particles = model.catalog_frame(EntityKind::Particles, step);
    let xs = particles.column("x").unwrap().to_f64_vec().unwrap();
    let ys = particles.column("y").unwrap().to_f64_vec().unwrap();
    let pts: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();

    // Halo centers overlaid, sized set apart by a highlighted series for
    // the most massive (the "zoomed" cluster of the paper's figure).
    let halos = model.catalog_frame(EntityKind::Halos, step);
    let top = halos.top_n("fof_halo_mass", 25).unwrap();
    let hx = top.column("fof_halo_center_x").unwrap().to_f64_vec().unwrap();
    let hy = top.column("fof_halo_center_y").unwrap().to_f64_vec().unwrap();
    let halo_pts: Vec<(f64, f64)> = hx.into_iter().zip(hy).collect();

    let mut chart = Chart::new(format!(
        "Simulated HACC volume: {} particles, step {step} (projection)",
        particles.n_rows()
    ))
    .with_labels("x [Mpc/h]", "y [Mpc/h]");
    chart.width = 900;
    chart.height = 900;
    chart.add_series(Series::scatter("dark matter particles", pts, 5));
    chart.add_series(Series::scatter("most massive halos", halo_pts, 3).highlighted());

    let out = out_dir("figure1").join("figure1_particles.svg");
    std::fs::write(&out, chart.render()).expect("write svg");
    println!("Figure 1 written to {}", out.display());
    println!(
        "particles: {}; halos overlaid: {}; largest halo mass: {:.2e} Msun/h",
        particles.n_rows(),
        top.n_rows(),
        top.cell("fof_halo_mass", 0).unwrap().as_f64().unwrap()
    );
}
