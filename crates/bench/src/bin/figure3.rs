//! Regenerate **Figure 3**: the InferA multi-agent architecture — the
//! planning stage, the supervisor-routed analysis stage with its seven
//! specialized agents, and the provenance outputs — exported as Graphviz
//! DOT from the actual workflow graph.

use infera_agents::{build_workflow, AgentContext, RunConfig};
use infera_bench::{ensure_ensemble, out_dir};
use infera_hacc::EnsembleSpec;
use infera_llm::BehaviorProfile;
use std::sync::Arc;

fn main() {
    // A minimal ensemble is enough: the graph topology is data-independent.
    let manifest = ensure_ensemble("figure3", &EnsembleSpec::tiny(3));
    let session = out_dir("figure3").join("session");
    std::fs::remove_dir_all(&session).ok();
    let ctx = Arc::new(
        AgentContext::new(
            Arc::new(manifest),
            &session,
            1,
            BehaviorProfile::perfect(),
            RunConfig::default(),
        )
        .expect("context"),
    );
    let graph = build_workflow(ctx);
    let mut dot = graph.to_dot("InferA analysis stage");
    // Annotate the planning stage and provenance sinks around the
    // executable graph (they are not graph nodes).
    dot = dot.replace(
        "digraph \"InferA analysis stage\" {",
        "digraph \"InferA analysis stage\" {\n  \
         \"user\" [shape=ellipse];\n  \
         \"planning agent\" [shape=box, style=rounded];\n  \
         \"provenance store\" [shape=cylinder];\n  \
         \"user\" -> \"planning agent\" [label=\"question + feedback\"];\n  \
         \"planning agent\" -> \"supervisor\" [label=\"approved plan\"];\n  \
         \"documentation\" -> \"provenance store\";",
    );
    let out = out_dir("figure3").join("figure3_architecture.dot");
    std::fs::write(&out, &dot).expect("write dot");
    println!("Figure 3 (architecture graph) written to {}", out.display());
    println!("\n{dot}");
    println!("nodes: {:?}", graph.node_names());
}
