//! Regenerate the **design ablations**: multi-agent vs single-agent vs
//! static-linear architectures (§4.4.1), scored vs binary QA (§4.2.4),
//! limited vs full specialist context (§4.2.5), and GPT-4o-class vs weak
//! local model (§4).

use infera_bench::{eval_ensemble, out_dir, BinArgs};
use infera_core::ablation::{
    architecture_ablation, context_ablation, model_ablation, qa_ablation,
};
use infera_core::{evaluate, EvalConfig, SessionConfig, Table2Row};
use infera_agents::RunConfig;
use infera_llm::BehaviorProfile;

fn row(label: &str, r: &Table2Row) {
    println!(
        "  {:<24} %data={:>3.0} %visual={:>3.0} %runs={:>3.0} %complete={:>3.0} tokens={:>7.0} redos={:>5.2}",
        label, r.sat_data, r.sat_viz, r.completed, r.complete_frac, r.tokens, r.redos
    );
}

fn main() {
    let args = BinArgs::parse();
    let manifest = eval_ensemble(args.quick);
    let runs = args.runs.unwrap_or(if args.quick { 3 } else { 5 });
    // A mixed-difficulty subset keeps the ablation affordable.
    let questions = [1u32, 2, 8, 13, 16, 17];
    let work = out_dir("ablation");
    std::fs::remove_dir_all(&work).ok();

    println!("== Architecture ablation (\u{a7}4.4.1), {runs} runs x {} questions ==", questions.len());
    let arch = architecture_ablation(&manifest, &work.join("arch"), &questions, runs, args.seed)
        .expect("architecture ablation");
    for r in &arch {
        row(r.architecture.label(), &r.total);
    }

    println!("\n== QA-mode ablation (\u{a7}4.2.4) ==");
    let qa = qa_ablation(&manifest, &work.join("qa"), &questions, runs, args.seed)
        .expect("qa ablation");
    row("scored (threshold 50)", &qa.scored);
    row("binary judgement", &qa.binary);

    println!("\n== Context-policy ablation (\u{a7}4.2.5) ==");
    let ctx = context_ablation(&manifest, &work.join("ctx"), &questions, runs, args.seed)
        .expect("context ablation");
    row("limited context", &ctx.limited);
    row("full history", &ctx.full);
    println!(
        "  full-history token overhead: {:+.0}%",
        100.0 * (ctx.full.tokens / ctx.limited.tokens - 1.0)
    );

    // Documentation agent + human-in-the-loop studies share the harness.
    let total = |run_config: RunConfig, profile: BehaviorProfile, dir: &str| -> Table2Row {
        let cfg = EvalConfig {
            runs_per_question: runs,
            session: SessionConfig::default()
                .with_seed(args.seed)
                .with_profile(profile)
                .with_run_config(run_config),
            only_questions: questions.to_vec(),
        };
        evaluate(manifest.clone(), &work.join(dir), &cfg)
            .expect("ablation eval")
            .table2_rows()
            .into_iter()
            .find(|r| r.label == "total")
            .expect("total row")
    };

    println!("\n== Documentation-agent ablation (\u{a7}4.1.4) ==");
    let doc_on = total(RunConfig::default(), BehaviorProfile::default(), "doc_on");
    let doc_off = total(
        RunConfig {
            enable_documentation: false,
            ..RunConfig::default()
        },
        BehaviorProfile::default(),
        "doc_off",
    );
    row("documentation on", &doc_on);
    row("documentation off", &doc_off);
    println!(
        "  documentation token cost: {:+.0}%",
        100.0 * (doc_on.tokens / doc_off.tokens - 1.0)
    );

    println!("\n== Human-in-the-loop (\u{a7}4.2.2) ==");
    let auto = total(RunConfig::default(), BehaviorProfile::default(), "hitl_auto");
    let human = total(
        RunConfig {
            human_feedback: true,
            ..RunConfig::default()
        },
        BehaviorProfile::default(),
        "hitl_human",
    );
    row("autonomous (eval mode)", &auto);
    row("with human feedback", &human);

    println!("\n== Model ablation (GPT-4o-class vs weak local, \u{a7}4) ==");
    let model = model_ablation(&manifest, &work.join("model"), &questions, runs, args.seed)
        .expect("model ablation");
    row("gpt-4o-class", &model.gpt4o_class);
    row("weak local model", &model.weak_local);
}
