//! Columnar microbenchmark: the tracked perf trajectory for the storage
//! engine.
//!
//! Benchmarks ingest / filtered scan / group-by / join on a seeded
//! synthetic halo table at two scales, once with compression disabled
//! (the v1 raw chunk layout) and once with format-v2 compression + late
//! materialization — both measured in the same process so the
//! comparison is apples-to-apples. Results land in `BENCH_columnar.json`
//! at the repo root (override with `--out <path>`): one entry per
//! (op, format, scale) with rows, on-disk bytes, wall time, and
//! throughput, plus a summary of v2-vs-v1 ratios.
//!
//!   microbench             # both scales, best-of-5 timing
//!   microbench --smoke     # small scale only, single rep (CI gate)
//!
//! Methodology: each op is timed `reps` times and the minimum wall time
//! is kept (the usual microbenchmark floor estimator — other reps only
//! add scheduler noise). Ingest writes to a fresh directory per rep.

use infera_columnar::Database;
use infera_frame::{Column, DataFrame};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchEntry {
    op: String,
    /// "v1" = uncompressed raw chunks, "v2" = compressed + late
    /// materialization.
    format: String,
    rows: u64,
    bytes_on_disk: u64,
    logical_bytes: u64,
    wall_ms: f64,
    throughput_rows_per_s: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Summary {
    /// v1 bytes / v2 bytes on the filtered-scan dataset (higher is
    /// better; acceptance floor is 2.0).
    disk_reduction_filtered_scan: f64,
    /// Worst v2/v1 wall-time ratio across ops at the largest scale
    /// (must stay <= 1.05).
    worst_time_ratio: f64,
    worst_time_ratio_op: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    seed: u64,
    smoke: bool,
    entries: Vec<BenchEntry>,
    summary: Summary,
}

const OPS: [&str; 8] = [
    "ingest",
    "filtered_scan",
    "group_by",
    "join",
    "multi_join",
    "group_by_str",
    "filter_group_str",
    "join_str",
];

/// Ops gated by the `--baseline` throughput check (the kernel-sensitive
/// ones; ingest and scan have their own v2/v1 ratio guard).
const GATED_OPS: [&str; 4] = ["group_by", "join", "group_by_str", "join_str"];

/// The dictionary-friendly synthetic dataset: a sorted i64 tag
/// (frame-of-reference packs it far below 8 B/row), a 4-value string sim
/// label (dictionary), log-normal f64 masses (incompressible, stays
/// raw), a run-structured bool flag (RLE), and a small-range i64 count.
fn halo_frame(rows: usize, seed: u64) -> DataFrame {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
    let tags: Vec<i64> = (0..rows as i64).collect();
    let sims: Vec<String> = (0..rows).map(|i| format!("sim{}", i % 4)).collect();
    let mass: Vec<f64> = (0..rows)
        .map(|_| 10f64.powf(11.0 + 4.0 * rng.random::<f64>()))
        .collect();
    let central: Vec<bool> = (0..rows).map(|i| (i / 64) % 2 == 0).collect();
    let count: Vec<i64> = mass.iter().map(|m| (m / 1.3e9) as i64 % 10_000).collect();
    DataFrame::from_columns([
        ("tag", Column::I64(tags)),
        ("sim", Column::Str(sims)),
        ("mass", Column::F64(mass)),
        ("central", Column::Bool(central)),
        ("count", Column::I64(count)),
    ])
    .unwrap()
}

fn galaxy_frame(rows: usize, halo_rows: usize, seed: u64) -> DataFrame {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0x9e37);
    let halo_tag: Vec<i64> = (0..rows)
        .map(|_| (rng.random::<f64>() * halo_rows as f64) as i64)
        .collect();
    let lum: Vec<f64> = (0..rows).map(|_| rng.random::<f64>() * 1e9).collect();
    DataFrame::from_columns([
        ("halo_tag", Column::I64(halo_tag)),
        ("lum", Column::F64(lum)),
    ])
    .unwrap()
}

/// High-cardinality string-key tables: `events` scatters `rows` rows
/// across `rows / 20` distinct host labels; `hosts` holds one weight per
/// distinct label. String keys this wide are where per-row boxed-key
/// hashing used to dominate — and where the dictionary-code fast paths
/// pay off.
fn event_frames(rows: usize, seed: u64) -> (DataFrame, DataFrame) {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed ^ 0x5eed);
    let distinct = (rows / 20).max(16);
    let host: Vec<String> = (0..rows)
        .map(|_| {
            let h = (rng.random::<f64>() * distinct as f64) as usize;
            format!("compute-host-{h:06}")
        })
        .collect();
    let val: Vec<f64> = (0..rows).map(|_| rng.random::<f64>() * 1e3).collect();
    let events = DataFrame::from_columns([
        ("host", Column::Str(host)),
        ("val", Column::F64(val)),
    ])
    .unwrap();
    let hosts = DataFrame::from_columns([
        (
            "host",
            Column::Str(
                (0..distinct)
                    .map(|h| format!("compute-host-{h:06}"))
                    .collect(),
            ),
        ),
        (
            "weight",
            Column::F64((0..distinct).map(|h| h as f64 * 0.5).collect()),
        ),
    ])
    .unwrap();
    (events, hosts)
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("infera_microbench")
        .join(format!("{label}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Minimum wall time of `reps` runs, in milliseconds.
fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn run_scale(
    rows: usize,
    compress: bool,
    seed: u64,
    reps: usize,
    entries: &mut Vec<BenchEntry>,
) {
    let format = if compress { "v2" } else { "v1" };
    let halos = halo_frame(rows, seed);
    let galaxies = galaxy_frame(rows / 2, rows, seed);
    let chunk = 8_192;

    // Ingest: fresh database per rep; keep the last one for the queries.
    let mut db = None;
    let ingest_ms = time_min(reps, || {
        let dir = fresh_dir(&format!("{format}_{rows}"));
        let mut d = Database::create(&dir).unwrap();
        d.compress = compress;
        d.create_table("halos", &halos.schema()).unwrap();
        d.append_chunked("halos", &halos, chunk).unwrap();
        d.create_table("galaxies", &galaxies.schema()).unwrap();
        d.append_chunked("galaxies", &galaxies, chunk).unwrap();
        db = Some(d);
    });
    let db = db.expect("ingest ran");
    let bytes_on_disk = db.total_bytes();
    let logical_bytes = db.total_logical_bytes();
    let total_rows = (rows + rows / 2) as u64;
    let entry = |op: &str, wall_ms: f64, n_rows: u64| BenchEntry {
        op: op.to_string(),
        format: format.to_string(),
        rows: n_rows,
        bytes_on_disk,
        logical_bytes,
        wall_ms,
        throughput_rows_per_s: n_rows as f64 / (wall_ms / 1e3).max(1e-9),
    };
    entries.push(entry("ingest", ingest_ms, total_rows));

    // Filtered scan: selective predicate over the sorted tag column plus
    // a string-equality conjunct — exercises zone maps (numeric and
    // lexicographic) and the late-materialization path.
    let cut = (rows as f64 * 0.9) as i64;
    let sql = format!("SELECT tag, sim, mass FROM halos WHERE tag >= {cut} AND sim = 'sim1'");
    let ms = time_min(reps, || {
        db.query(&sql).unwrap();
    });
    entries.push(entry("filtered_scan", ms, rows as u64));

    // Grouped aggregation over the dictionary column.
    let ms = time_min(reps, || {
        db.query("SELECT sim, COUNT(*) AS n, AVG(mass) AS m FROM halos GROUP BY sim")
            .unwrap();
    });
    entries.push(entry("group_by", ms, rows as u64));

    // Join galaxies back to their halos.
    let ms = time_min(reps, || {
        db.query(
            "SELECT sim, COUNT(*) AS n, AVG(lum) AS l FROM galaxies JOIN halos ON galaxies.halo_tag = halos.tag GROUP BY sim",
        )
        .unwrap();
    });
    entries.push(entry("join", ms, total_rows));

    // Three-table join through the cost-based planner: the tiny sims
    // dimension should be reordered to build first, and the grouped
    // aggregation can pre-aggregate below it.
    let sims = DataFrame::from_columns([
        (
            "sim",
            Column::Str((0..4).map(|i| format!("sim{i}")).collect()),
        ),
        ("box_mpc", Column::F64(vec![250.0, 500.0, 1000.0, 2000.0])),
    ])
    .unwrap();
    db.create_table("sims", &sims.schema()).unwrap();
    db.append_chunked("sims", &sims, chunk).unwrap();
    let ms = time_min(reps, || {
        db.query(
            "SELECT sim, COUNT(*) AS n, AVG(mass) AS m, SUM(box_mpc) AS b FROM halos JOIN galaxies ON halos.tag = galaxies.halo_tag JOIN sims ON halos.sim = sims.sim GROUP BY sim",
        )
        .unwrap();
    });
    entries.push(entry("multi_join", ms, total_rows));

    // High-cardinality string keys (ingested outside the timed ingest so
    // the ingest trajectory stays comparable across revisions).
    let (events, hosts) = event_frames(rows, seed);
    db.create_table("events", &events.schema()).unwrap();
    db.append_chunked("events", &events, chunk).unwrap();
    db.create_table("hosts", &hosts.schema()).unwrap();
    db.append_chunked("hosts", &hosts, chunk).unwrap();

    let ms = time_min(reps, || {
        db.query("SELECT host, COUNT(*) AS n, AVG(val) AS v FROM events GROUP BY host")
            .unwrap();
    });
    entries.push(entry("group_by_str", ms, rows as u64));

    // Pushed predicate + string group keys: the planner must push the
    // val filter into the scan so zone maps and late materialization
    // kick in before grouping.
    let ms = time_min(reps, || {
        db.query(
            "SELECT host, COUNT(*) AS n, AVG(val) AS v FROM events WHERE val < 500 GROUP BY host",
        )
        .unwrap();
    });
    entries.push(entry("filter_group_str", ms, rows as u64));

    let ms = time_min(reps, || {
        db.query(
            "SELECT COUNT(*) AS n, SUM(weight) AS w FROM events JOIN hosts ON events.host = hosts.host",
        )
        .unwrap();
    });
    entries.push(entry("join_str", ms, rows as u64));
}

/// `--baseline` regression gate: compare this run's throughput against a
/// checked-in report for the kernel-sensitive ops. Returns the failures
/// (op/format pairs whose throughput dropped more than 25%).
fn baseline_regressions(baseline: &BenchReport, entries: &[BenchEntry]) -> Vec<String> {
    const MAX_DROP: f64 = 0.25;
    let mut failures = Vec::new();
    for e in entries {
        if !GATED_OPS.contains(&e.op.as_str()) {
            continue;
        }
        let Some(base) = baseline
            .entries
            .iter()
            .find(|b| b.op == e.op && b.format == e.format && b.rows == e.rows)
        else {
            continue;
        };
        let floor = base.throughput_rows_per_s * (1.0 - MAX_DROP);
        if e.throughput_rows_per_s < floor {
            failures.push(format!(
                "{}/{} at {} rows: {:.0} rows/s < 75% of baseline {:.0} rows/s",
                e.op, e.format, e.rows, e.throughput_rows_per_s, base.throughput_rows_per_s
            ));
        }
    }
    failures
}

fn summarize(entries: &[BenchEntry], largest_rows: u64) -> Summary {
    let find = |op: &str, format: &str| {
        entries
            .iter()
            .filter(|e| e.op == op && e.format == format)
            .max_by_key(|e| e.rows)
            .expect("entry present")
    };
    let v1_scan = find("filtered_scan", "v1");
    let v2_scan = find("filtered_scan", "v2");
    let disk_reduction = v1_scan.bytes_on_disk as f64 / v2_scan.bytes_on_disk.max(1) as f64;

    let mut worst = 0.0f64;
    let mut worst_op = String::new();
    for op in OPS {
        let (v1, v2) = (
            entries
                .iter()
                .find(|e| e.op == op && e.format == "v1" && e.rows >= largest_rows)
                .expect("v1 entry"),
            entries
                .iter()
                .find(|e| e.op == op && e.format == "v2" && e.rows >= largest_rows)
                .expect("v2 entry"),
        );
        let ratio = v2.wall_ms / v1.wall_ms.max(1e-9);
        if ratio > worst {
            worst = ratio;
            worst_op = op.to_string();
        }
    }
    Summary {
        disk_reduction_filtered_scan: disk_reduction,
        worst_time_ratio: worst,
        worst_time_ratio_op: worst_op,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_columnar.json")
        });
    let seed = 2025u64;
    let (scales, reps): (&[usize], usize) = if smoke {
        (&[20_000], 2)
    } else {
        (&[50_000, 200_000], 5)
    };

    let mut entries = Vec::new();
    for &rows in scales {
        for compress in [false, true] {
            run_scale(rows, compress, seed, reps, &mut entries);
        }
        eprintln!("microbench: scale {rows} done");
    }
    // Per-op row counts differ (join counts both tables), so the ratio
    // comparison anchors on the largest scale's base row count: only
    // that scale's entries have rows >= the floor.
    let scale_floor = *scales.last().unwrap() as u64;
    let summary = summarize(&entries, scale_floor);

    let report = BenchReport {
        seed,
        smoke,
        entries,
        summary,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write BENCH_columnar.json");

    println!(
        "microbench: wrote {} ({} entries)",
        out_path.display(),
        report.entries.len()
    );
    println!(
        "  on-disk reduction (filtered_scan dataset): {:.2}x (floor 2.0)",
        report.summary.disk_reduction_filtered_scan
    );
    println!(
        "  worst v2/v1 time ratio: {:.3} on {} (ceiling 1.05)",
        report.summary.worst_time_ratio, report.summary.worst_time_ratio_op
    );
    for e in &report.entries {
        println!(
            "  {:>6}r {:<14} {:<3} {:>10} B disk {:>9.2} ms {:>12.0} rows/s",
            e.rows, e.op, e.format, e.bytes_on_disk, e.wall_ms, e.throughput_rows_per_s
        );
    }

    if let Some(path) = baseline_path {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let baseline: BenchReport =
            serde_json::from_str(&json).expect("parse baseline report");
        let failures = baseline_regressions(&baseline, &report.entries);
        if failures.is_empty() {
            println!(
                "  baseline gate: join/group-by throughput within 25% of {}",
                path.display()
            );
        } else {
            eprintln!("microbench: throughput regression vs {}:", path.display());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
