//! Plan and run-state model shared by all agents.

use infera_hacc::EntityKind;
use infera_llm::SemanticLevel;
use infera_provenance::ArtifactId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One table of a load step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableLoad {
    /// Entity label ("halos", "galaxies", "cores", "particles").
    pub entity: String,
    /// Columns required by the downstream analysis (the intent's metric
    /// columns; the agent adds RAG-retrieved context columns).
    pub columns: Vec<String>,
    /// Database table name to create.
    pub output: String,
}

impl TableLoad {
    pub fn entity_kind(&self) -> EntityKind {
        EntityKind::parse(&self.entity).unwrap_or(EntityKind::Halos)
    }
}

/// Column-selection + file-selection spec the data-loading agent executes
/// — one step loads everything downstream tasks need ("the data-loading
/// agent ... determines which files and columns are necessary to load for
/// all downstream tasks").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Simulations to load.
    pub sims: Vec<u32>,
    /// Snapshot steps to load (already resolved to existing snapshots).
    pub steps: Vec<u32>,
    pub tables: Vec<TableLoad>,
    /// Also materialize the per-sim sub-grid parameter table (`params`)
    /// from the ensemble's params.json files.
    pub include_params: bool,
}

/// A SQL-stage filter: `column op value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlFilter {
    pub column: String,
    /// One of `=`, `!=`, `<`, `<=`, `>`, `>=`.
    pub op: String,
    pub value: f64,
}

/// One SELECT of the SQL stage: project/filter a loaded table into a
/// working frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSelect {
    pub table: String,
    /// Columns to keep (empty = all).
    pub columns: Vec<String>,
    pub filters: Vec<SqlFilter>,
    /// Output frame name in the sandbox environment.
    pub output: String,
}

/// The SQL agent's task: one or more SELECTs materializing the working
/// frames for the computation stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlSpec {
    pub selects: Vec<TableSelect>,
}

/// Typed computation templates the Python-programming agent turns into
/// analysis-DSL programs. Together these cover the full 20-question
/// evaluation set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComputeKind {
    /// `group_agg(input, by=[...], agg(column))`.
    GroupAgg {
        by: Vec<String>,
        aggs: Vec<(String, String)>, // (agg fn, column)
    },
    /// Whole-frame aggregates.
    AggregateAll { aggs: Vec<(String, String)> },
    /// Largest-N (or smallest-N, `ascending`) selection.
    TopN {
        column: String,
        n: usize,
        ascending: bool,
    },
    /// Derived column.
    WithColumn { name: String, expr: String },
    /// Track the tags of the step-`anchor_step` top-N rows across all
    /// steps.
    TrackTop {
        metric: String,
        n: usize,
        anchor_step: u32,
    },
    /// OLS fit of y on x (optionally log-transforming either axis); the
    /// template also leaves the fitted points as `<output>_pts` with
    /// `fit_x`/`fit_y` columns for downstream scatter plots.
    LinFit {
        x: String,
        y: String,
        log_x: bool,
        log_y: bool,
        /// Fit separately per value of this column (e.g. per sim/step).
        by: Option<String>,
    },
    /// Fit y(x), attach residuals, return the `n_lowest` most negative.
    FitResiduals {
        x: String,
        y: String,
        log_x: bool,
        n_lowest: usize,
    },
    /// Keep the top `n_halos` halos, join the `galaxies` frame by
    /// `fof_halo_tag`, keep the top `per_halo` galaxies per halo.
    JoinTopGalaxies {
        galaxies: String,
        n_halos: usize,
        per_halo: usize,
    },
    /// Per-group summary statistics of the given metrics (group =
    /// `fof_halo_tag` after a join) for side-by-side comparison.
    CompareGroups {
        group: String,
        metrics: Vec<String>,
    },
    /// Top-N halos and top-N galaxies, joined and annotated with the
    /// galaxy→host-center spatial offset (the Fig. 2 alignment analysis).
    AlignmentTopBoth { galaxies: String, n: usize },
    /// Join galaxies to halos, keep centrals, add log-mass columns — the
    /// SMHM data-cleaning stage.
    SmhmPrepare { galaxies: String },
    /// Per-simulation SMHM relation fit joined with the sub-grid
    /// parameters: slope / intrinsic scatter / efficiency per sim.
    SmhmFit,
    /// Custom tool: interestingness scoring (derives speed and kinetic
    /// energy first).
    Interestingness { columns: Vec<String>, n: usize },
    /// Custom tool: 2-D embedding.
    Umap { columns: Vec<String> },
    /// Custom tool: halo evolution tracking of the rank-th most massive
    /// halo at the anchor step.
    TrackHalo { tag_rank: usize, anchor_step: u32 },
    /// Custom tool: radius neighborhood of the rank-th largest halo.
    RadiusSelect {
        rank: usize,
        radius: f64,
        box_size: f64,
    },
    /// Locate the x where `column` peaks, then fit the log-decline after
    /// the peak.
    PeakAndDecline { x: String, column: String },
    /// The §4.5 ambiguous parameter-inference question; the planner picks
    /// one of four strategies at plan time.
    ParamCorrelation { strategy: u8 },
    /// Summary statistics.
    Describe,
}

impl ComputeKind {
    /// Short label for provenance / documentation.
    pub fn label(&self) -> &'static str {
        match self {
            ComputeKind::GroupAgg { .. } => "group_agg",
            ComputeKind::AggregateAll { .. } => "aggregate",
            ComputeKind::TopN { .. } => "top_n",
            ComputeKind::WithColumn { .. } => "with_column",
            ComputeKind::TrackTop { .. } => "track_top",
            ComputeKind::LinFit { .. } => "linfit",
            ComputeKind::FitResiduals { .. } => "fit_residuals",
            ComputeKind::JoinTopGalaxies { .. } => "join_top_galaxies",
            ComputeKind::CompareGroups { .. } => "compare_groups",
            ComputeKind::AlignmentTopBoth { .. } => "alignment",
            ComputeKind::SmhmPrepare { .. } => "smhm_prepare",
            ComputeKind::Interestingness { .. } => "interestingness",
            ComputeKind::Umap { .. } => "umap",
            ComputeKind::TrackHalo { .. } => "track_halo",
            ComputeKind::RadiusSelect { .. } => "radius_select",
            ComputeKind::PeakAndDecline { .. } => "peak_and_decline",
            ComputeKind::SmhmFit => "smhm_fit",
            ComputeKind::ParamCorrelation { .. } => "param_correlation",
            ComputeKind::Describe => "describe",
        }
    }

    /// Whether this computation requires a custom tool (vs builtins).
    pub fn uses_custom_tool(&self) -> bool {
        matches!(
            self,
            ComputeKind::Interestingness { .. }
                | ComputeKind::Umap { .. }
                | ComputeKind::TrackHalo { .. }
                | ComputeKind::RadiusSelect { .. }
        )
    }
}

/// Visualization templates the visualization agent renders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VizKind {
    Line {
        x: String,
        y: String,
        group: Option<String>,
        log_y: bool,
    },
    Scatter {
        x: String,
        y: String,
        group: Option<String>,
        /// Highlight the top-n rows by this column (UMAP question).
        highlight_top: Option<(String, usize)>,
    },
    Histogram {
        column: String,
        bins: usize,
        group: Option<String>,
    },
    Heatmap { columns: Vec<String> },
    /// 3-D ParaView-style scene from halo centers; first row = target.
    Scene3D,
}

impl VizKind {
    pub fn label(&self) -> &'static str {
        match self {
            VizKind::Line { .. } => "line",
            VizKind::Scatter { .. } => "scatter",
            VizKind::Histogram { .. } => "histogram",
            VizKind::Heatmap { .. } => "heatmap",
            VizKind::Scene3D => "scene3d",
        }
    }
}

/// One step of the approved plan. Only Load/Sql/Compute/Visualize count
/// as *analysis steps* for the paper's difficulty metric (planning, QA,
/// documentation and summarization are excluded, §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanStep {
    Load(LoadSpec),
    Sql(SqlSpec),
    Compute {
        kind: ComputeKind,
        input: String,
        output: String,
    },
    Visualize {
        kind: VizKind,
        input: String,
        title: String,
    },
}

impl PlanStep {
    /// Which specialist executes this step.
    pub fn agent(&self) -> &'static str {
        match self {
            PlanStep::Load(_) => "data_loading",
            PlanStep::Sql(_) => "sql",
            PlanStep::Compute { .. } => "python",
            PlanStep::Visualize { .. } => "visualization",
        }
    }

    /// One-line description for the plan text / provenance.
    pub fn describe(&self) -> String {
        match self {
            PlanStep::Load(l) => {
                let tables: Vec<String> = l
                    .tables
                    .iter()
                    .map(|t| format!("{}({} cols)", t.entity, t.columns.len()))
                    .collect();
                format!(
                    "load [{}] for {} sim(s) x {} step(s)",
                    tables.join(", "),
                    l.sims.len(),
                    l.steps.len()
                )
            }
            PlanStep::Sql(s) => {
                let sels: Vec<String> = s
                    .selects
                    .iter()
                    .map(|t| {
                        format!(
                            "'{}' ({} filters) -> '{}'",
                            t.table,
                            t.filters.len(),
                            t.output
                        )
                    })
                    .collect();
                format!("sql: {}", sels.join("; "))
            }
            PlanStep::Compute { kind, input, output } => {
                format!("compute {} on '{input}' -> '{output}'", kind.label())
            }
            PlanStep::Visualize { kind, input, title } => {
                format!("visualize {} of '{input}' ({title})", kind.label())
            }
        }
    }
}

/// The approved analysis plan.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Plan {
    pub steps: Vec<PlanStep>,
    /// Planner commentary shown to the user during review.
    pub rationale: String,
}

impl Plan {
    /// Number of analysis steps — the paper's analysis-difficulty metric.
    pub fn n_analysis_steps(&self) -> usize {
        self.steps.len()
    }

    /// Render as the numbered plan text shown to the user.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!("{}. [{}] {}\n", i + 1, s.agent(), s.describe()));
        }
        out
    }
}

/// Quality flags set when the model makes a valid-but-unsatisfactory
/// choice (§4.1.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityFlags {
    pub wrong_tool: bool,
    pub bad_analysis: bool,
    pub bad_viz: bool,
}

/// Outcome of one executed plan step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepOutcome {
    pub step: usize,
    pub agent: String,
    /// Redo iterations consumed (0 = first attempt succeeded).
    pub redos: u32,
    pub success: bool,
    pub message: String,
}

/// Mutable state threaded through the analysis graph.
#[derive(Debug, Default)]
pub struct RunState {
    pub question: String,
    pub semantic: SemanticLevel,
    pub plan: Plan,
    /// Index of the next plan step to execute.
    pub step_idx: usize,
    /// Working frames (sandbox environment).
    pub frames: HashMap<String, infera_frame::DataFrame>,
    pub outcomes: Vec<StepOutcome>,
    pub flags: QualityFlags,
    /// Whether the run aborted before completing the plan.
    pub failed: bool,
    /// Artifact ids of produced visualizations.
    pub visualizations: Vec<ArtifactId>,
    /// Artifact ids of produced data outputs (CSVs).
    pub data_outputs: Vec<ArtifactId>,
    /// Conversation history (supervisor context; the §4.2.5 policy
    /// controls how much of it each prompt carries).
    pub history: Vec<String>,
    /// Final documentation summary.
    pub summary: String,
}

impl RunState {
    pub fn new(question: &str, semantic: SemanticLevel, plan: Plan) -> RunState {
        RunState {
            question: question.to_string(),
            semantic,
            plan,
            ..RunState::default()
        }
    }

    /// Total redo iterations across all steps — the Table 2 "Redo
    /// Iterations" metric.
    pub fn total_redos(&self) -> u32 {
        self.outcomes.iter().map(|o| o.redos).sum()
    }

    /// Fraction of planned steps completed — the Table 2 "% Complete"
    /// metric.
    pub fn completion_fraction(&self) -> f64 {
        if self.plan.steps.is_empty() {
            return 0.0;
        }
        let done = self.outcomes.iter().filter(|o| o.success).count();
        done as f64 / self.plan.steps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> Plan {
        Plan {
            steps: vec![
                PlanStep::Load(LoadSpec {
                    sims: vec![0],
                    steps: vec![624],
                    tables: vec![TableLoad {
                        entity: "halos".into(),
                        columns: vec!["fof_halo_tag".into(), "fof_halo_mass".into()],
                        output: "halos".into(),
                    }],
                    include_params: false,
                }),
                PlanStep::Sql(SqlSpec {
                    selects: vec![TableSelect {
                        table: "halos".into(),
                        columns: vec![],
                        filters: vec![],
                        output: "halos".into(),
                    }],
                }),
                PlanStep::Compute {
                    kind: ComputeKind::TopN {
                        column: "fof_halo_mass".into(),
                        n: 20,
                        ascending: false,
                    },
                    input: "halos".into(),
                    output: "top".into(),
                },
                PlanStep::Visualize {
                    kind: VizKind::Scatter {
                        x: "fof_halo_center_x".into(),
                        y: "fof_halo_center_y".into(),
                        group: None,
                        highlight_top: None,
                    },
                    input: "top".into(),
                    title: "top halos".into(),
                },
            ],
            rationale: String::new(),
        }
    }

    #[test]
    fn plan_step_agents() {
        let plan = sample_plan();
        let agents: Vec<&str> = plan.steps.iter().map(PlanStep::agent).collect();
        assert_eq!(agents, vec!["data_loading", "sql", "python", "visualization"]);
        assert_eq!(plan.n_analysis_steps(), 4);
    }

    #[test]
    fn plan_text_is_numbered() {
        let text = sample_plan().to_text();
        assert!(text.starts_with("1. [data_loading]"));
        assert!(text.contains("4. [visualization]"));
    }

    #[test]
    fn run_state_metrics() {
        let mut state = RunState::new("q", SemanticLevel::Medium, sample_plan());
        state.outcomes.push(StepOutcome {
            step: 0,
            agent: "data_loading".into(),
            redos: 0,
            success: true,
            message: String::new(),
        });
        state.outcomes.push(StepOutcome {
            step: 1,
            agent: "sql".into(),
            redos: 3,
            success: true,
            message: String::new(),
        });
        assert_eq!(state.total_redos(), 3);
        assert!((state.completion_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compute_kind_tool_classification() {
        assert!(ComputeKind::Umap { columns: vec![] }.uses_custom_tool());
        assert!(!ComputeKind::Describe.uses_custom_tool());
    }

    #[test]
    fn serde_roundtrip_plan() {
        let plan = sample_plan();
        let json = serde_json::to_string(&plan).unwrap();
        let back: Plan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
