//! The planning agent (§3, planning stage).
//!
//! Compiles an extracted [`Intent`] into the step-by-step [`Plan`] the
//! supervisor executes, and runs the multi-turn plan-refinement dialogue.
//! Plans are mostly deterministic per intent, with two calibrated sources
//! of run-to-run variability matching the paper: an optional extra
//! data-inspection step (the paper's per-question mean step counts are
//! fractional, e.g. 7.7 for the 8-step SMHM question), and an explicit
//! 4-way strategy draw for the ambiguous §4.5 parameter question.

use crate::context::AgentContext;
use crate::intent::{Goal, Intent};
use crate::state::{
    ComputeKind, LoadSpec, Plan, PlanStep, SqlFilter, SqlSpec, TableLoad, TableSelect, VizKind,
};

const HALO_BASE: &[&str] = &["fof_halo_tag", "fof_halo_count", "fof_halo_mass"];
const HALO_CENTERS: &[&str] = &[
    "fof_halo_center_x",
    "fof_halo_center_y",
    "fof_halo_center_z",
];
const HALO_VELS: &[&str] = &[
    "fof_halo_mean_vx",
    "fof_halo_mean_vy",
    "fof_halo_mean_vz",
];

fn cols(groups: &[&[&str]]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for g in groups {
        for c in *g {
            if !out.iter().any(|x| x == c) {
                out.push((*c).to_string());
            }
        }
    }
    out
}

fn load(
    sims: &[u32],
    steps: &[u32],
    tables: Vec<TableLoad>,
    include_params: bool,
) -> PlanStep {
    PlanStep::Load(LoadSpec {
        sims: sims.to_vec(),
        steps: steps.to_vec(),
        tables,
        include_params,
    })
}

fn table(entity: &str, columns: Vec<String>) -> TableLoad {
    TableLoad {
        entity: entity.to_string(),
        columns,
        output: entity.to_string(),
    }
}

fn sql(selects: Vec<TableSelect>) -> PlanStep {
    PlanStep::Sql(SqlSpec { selects })
}

fn select_all(table: &str) -> TableSelect {
    TableSelect {
        table: table.to_string(),
        columns: vec![],
        filters: vec![],
        output: table.to_string(),
    }
}

fn compute(kind: ComputeKind, input: &str, output: &str) -> PlanStep {
    PlanStep::Compute {
        kind,
        input: input.to_string(),
        output: output.to_string(),
    }
}

fn viz(kind: VizKind, input: &str, title: &str) -> PlanStep {
    PlanStep::Visualize {
        kind,
        input: input.to_string(),
        title: title.to_string(),
    }
}

fn line(x: &str, y: &str, group: Option<&str>) -> VizKind {
    VizKind::Line {
        x: x.to_string(),
        y: y.to_string(),
        group: group.map(str::to_string),
        log_y: false,
    }
}

fn scatter(x: &str, y: &str, group: Option<&str>) -> VizKind {
    VizKind::Scatter {
        x: x.to_string(),
        y: y.to_string(),
        group: group.map(str::to_string),
        highlight_top: None,
    }
}

/// Compile an intent into the canonical plan for its goal.
pub fn compile_plan(intent: &Intent, ctx: &AgentContext) -> Plan {
    let sims = &intent.sims;
    let steps = &intent.steps;
    let multi_sim = sims.len() > 1;
    let last_step = *steps.last().unwrap_or(&infera_hacc::FINAL_STEP);
    let box_size = ctx.manifest.box_size;

    let mut plan_steps: Vec<PlanStep> = Vec::new();
    #[allow(unused_assignments)]
    let mut rationale = String::new();

    match &intent.goal {
        Goal::GroupTrend { entity, column, agg, by } => {
            let key = if entity == "galaxies" { "gal_tag" } else { "fof_halo_tag" };
            plan_steps.push(load(
                sims,
                steps,
                vec![table(entity, cols(&[&[key, column.as_str()]]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all(entity)]));
            let alias = format!("{agg}_{column}");
            plan_steps.push(compute(
                ComputeKind::GroupAgg {
                    by: vec![by.column().to_string()],
                    aggs: vec![(agg.clone(), column.clone())],
                },
                entity,
                "r1",
            ));
            plan_steps.push(viz(
                line(by.column(), &alias, None),
                "r1",
                &format!("{agg} {column} per {}", by.column()),
            ));
            rationale = format!("aggregate {column} with {agg} per {}", by.column());
        }
        Goal::TopN { entity, column, n } => {
            let (key, centers): (&str, &[&str]) = if entity == "galaxies" {
                ("gal_tag", &["gal_center_x", "gal_center_y"])
            } else {
                ("fof_halo_tag", &["fof_halo_center_x", "fof_halo_center_y"])
            };
            plan_steps.push(load(
                sims,
                steps,
                vec![table(entity, cols(&[&[key, column.as_str()], centers]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all(entity)]));
            plan_steps.push(compute(
                ComputeKind::TopN {
                    column: column.clone(),
                    n: *n,
                    ascending: false,
                },
                entity,
                "r1",
            ));
            if *n == 1 {
                plan_steps.push(viz(
                    VizKind::Histogram {
                        column: column.clone(),
                        bins: 30,
                        group: None,
                    },
                    entity,
                    &format!("distribution of {column} (max highlighted)"),
                ));
            } else {
                plan_steps.push(viz(
                    scatter(centers[0], centers[1], None),
                    "r1",
                    &format!("top {n} by {column}"),
                ));
            }
            rationale = format!("select top {n} rows by {column}");
        }
        Goal::Distribution { entity, column, by_sim } => {
            let key = if entity == "galaxies" { "gal_tag" } else { "fof_halo_tag" };
            plan_steps.push(load(
                sims,
                steps,
                vec![table(entity, cols(&[&[key, column.as_str()]]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all(entity)]));
            plan_steps.push(compute(ComputeKind::Describe, entity, "r1"));
            plan_steps.push(viz(
                VizKind::Histogram {
                    column: column.clone(),
                    bins: 40,
                    group: by_sim.then(|| "sim".to_string()),
                },
                entity,
                &format!("distribution of {column}"),
            ));
            rationale = format!("summary statistics + histogram of {column}");
        }
        Goal::TrackTopMass { n } => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table("halos", cols(&[HALO_BASE]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::TrackTop {
                    metric: "fof_halo_mass".into(),
                    n: *n,
                    anchor_step: last_step,
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::LinFit {
                    x: "step".into(),
                    y: "fof_halo_mass".into(),
                    log_x: false,
                    log_y: true,
                    by: Some("fof_halo_tag".into()),
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                line("step", "fof_halo_count", Some("fof_halo_tag")),
                "r1",
                "largest halos: particle count vs step",
            ));
            plan_steps.push(viz(
                line("step", "fof_halo_mass", Some("fof_halo_tag")),
                "r1",
                "largest halos: mass vs step",
            ));
            rationale = format!("track the {n} most massive z=0 halos and fit their growth");
        }
        Goal::TopBothAlignment { n } => {
            plan_steps.push(load(
                sims,
                steps,
                vec![
                    table("halos", cols(&[HALO_BASE, HALO_CENTERS, &["sod_halo_radius"]])),
                    table(
                        "galaxies",
                        cols(&[&[
                            "gal_tag",
                            "fof_halo_tag",
                            "gal_mass",
                            "gal_center_x",
                            "gal_center_y",
                            "gal_center_z",
                        ]]),
                    ),
                ],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos"), select_all("galaxies")]));
            plan_steps.push(compute(
                ComputeKind::AlignmentTopBoth {
                    galaxies: "galaxies".into(),
                    n: *n,
                },
                "halos",
                "r1",
            ));
            plan_steps.push(viz(VizKind::Scene3D, "r1", "top halos and galaxies"));
            plan_steps.push(viz(
                VizKind::Histogram {
                    column: "offset_mpc".into(),
                    bins: 30,
                    group: None,
                },
                "r1",
                "galaxy-halo center offsets",
            ));
            rationale = format!("top {n} halos + galaxies, 3-D scene and offset statistics");
        }
        Goal::InterestingnessUmap { top, highlight } => {
            let feature_cols = vec![
                "speed".to_string(),
                "fof_halo_mass".to_string(),
                "kinetic_energy".to_string(),
            ];
            plan_steps.push(load(
                sims,
                steps,
                vec![table("halos", cols(&[HALO_BASE, HALO_VELS]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::Interestingness {
                    columns: feature_cols.clone(),
                    n: *top,
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::Umap {
                    columns: feature_cols,
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                VizKind::Scatter {
                    x: "umap_x".into(),
                    y: "umap_y".into(),
                    group: None,
                    highlight_top: Some(("interestingness".into(), *highlight)),
                },
                "r2",
                "UMAP of interesting halos",
            ));
            rationale = format!("score {top} halos, embed, highlight top {highlight}");
        }
        Goal::GasFractionEvolution => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table(
                    "halos",
                    cols(&[&["fof_halo_tag", "sod_halo_M500c", "sod_halo_MGas500c"]]),
                )],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::WithColumn {
                    name: "gas_fraction".into(),
                    expr: "sod_halo_MGas500c / sod_halo_M500c".into(),
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::LinFit {
                    x: "sod_halo_M500c".into(),
                    y: "gas_fraction".into(),
                    log_x: true,
                    log_y: false,
                    by: Some("step".into()),
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                line("step", "slope", None),
                "r2",
                "gas fraction relation: slope vs step",
            ));
            plan_steps.push(viz(
                line("step", "intercept", None),
                "r2",
                "gas fraction relation: normalization vs step",
            ));
            rationale = "fit f_gas(M500c) per snapshot, plot slope and normalization".into();
        }
        Goal::CompareTopHaloGalaxies { n_halos, per_halo } => {
            plan_steps.push(load(
                sims,
                steps,
                vec![
                    table("halos", cols(&[HALO_BASE])),
                    table(
                        "galaxies",
                        cols(&[&[
                            "gal_tag",
                            "fof_halo_tag",
                            "gal_mass",
                            "gal_stellar_mass",
                            "gal_gas_mass",
                            "gal_kinetic_energy",
                        ]]),
                    ),
                ],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos"), select_all("galaxies")]));
            plan_steps.push(compute(
                ComputeKind::JoinTopGalaxies {
                    galaxies: "galaxies".into(),
                    n_halos: *n_halos,
                    per_halo: *per_halo,
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::CompareGroups {
                    group: "fof_halo_tag".into(),
                    metrics: vec![
                        "gal_gas_mass".into(),
                        "gal_mass".into(),
                        "gal_kinetic_energy".into(),
                    ],
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                scatter("gal_mass", "gal_kinetic_energy", Some("fof_halo_tag")),
                "r1",
                "galaxies of the two largest halos",
            ));
            rationale = format!("top {n_halos} halos, {per_halo} galaxies each, compare groups");
        }
        Goal::SmhmSeedStudy => {
            plan_steps.push(load(
                sims,
                steps,
                vec![
                    table("halos", cols(&[&["fof_halo_tag", "fof_halo_mass"]])),
                    table(
                        "galaxies",
                        cols(&[&[
                            "gal_tag",
                            "fof_halo_tag",
                            "gal_stellar_mass",
                            "gal_is_central",
                        ]]),
                    ),
                ],
                true,
            ));
            plan_steps.push(sql(vec![select_all("halos"), select_all("galaxies")]));
            plan_steps.push(compute(
                ComputeKind::SmhmPrepare {
                    galaxies: "galaxies".into(),
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(ComputeKind::SmhmFit, "r1", "r2"));
            plan_steps.push(viz(
                scatter("lmh", "lms", Some("sim")),
                "r1",
                "stellar mass vs halo mass",
            ));
            plan_steps.push(viz(
                line("m_seed", "scatter", None),
                "r2",
                "SMHM intrinsic scatter vs seed mass",
            ));
            plan_steps.push(compute(
                ComputeKind::TopN {
                    column: "scatter".into(),
                    n: 1,
                    ascending: true,
                },
                "r2",
                "r3",
            ));
            plan_steps.push(viz(
                line("m_seed", "efficiency", None),
                "r2",
                "stellar-mass assembly efficiency vs seed mass",
            ));
            rationale =
                "per-sim SMHM fits, scatter and efficiency vs seed mass, find the tightest".into();
        }
        Goal::ParamInference => {
            // The ambiguous question: four valid strategies (§4.5); the
            // model commits to one per run.
            let strategy = ctx.llm.pick(4) as u8;
            plan_steps.push(load(
                sims,
                steps,
                vec![table(
                    "halos",
                    cols(&[HALO_BASE, &["fof_halo_vel_disp", "sod_halo_MGas500c"]]),
                )],
                true,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::ParamCorrelation { strategy },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(ComputeKind::Describe, "r1", "r2"));
            plan_steps.push(viz(
                scatter("f_sn", "metric", None),
                "r1",
                "halo-count response to f_SN",
            ));
            plan_steps.push(viz(
                scatter("log_v_sn", "metric", None),
                "r1",
                "halo-count response to log v_SN",
            ));
            rationale = format!("ambiguous parameter inference, strategy {strategy}");
        }
        Goal::SpeedStudy { n } => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table("halos", cols(&[HALO_BASE, HALO_VELS]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::WithColumn {
                    name: "speed".into(),
                    expr: "sqrt(fof_halo_mean_vx*fof_halo_mean_vx + fof_halo_mean_vy*fof_halo_mean_vy + fof_halo_mean_vz*fof_halo_mean_vz)"
                        .into(),
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::TopN {
                    column: "speed".into(),
                    n: *n,
                    ascending: false,
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                VizKind::Histogram {
                    column: "speed".into(),
                    bins: 40,
                    group: multi_sim.then(|| "sim".to_string()),
                },
                "r2",
                "speed distribution of the fastest halos",
            ));
            rationale = format!("derive speed, keep the fastest {n}, plot distribution");
        }
        Goal::VelDispRelation => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table(
                    "halos",
                    cols(&[&["fof_halo_tag", "fof_halo_mass", "fof_halo_vel_disp"]]),
                )],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::WithColumn {
                    name: "log_mass".into(),
                    expr: "log10(fof_halo_mass)".into(),
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::LinFit {
                    x: "log_mass".into(),
                    y: "fof_halo_vel_disp".into(),
                    log_x: false,
                    log_y: true,
                    by: None,
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                scatter("fit_x", "fit_y", None),
                "r2_pts",
                "velocity dispersion vs halo mass",
            ));
            rationale = "log-log fit of the mass - velocity dispersion relation".into();
        }
        Goal::GasDeficient { n } => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table(
                    "halos",
                    cols(&[&["fof_halo_tag", "sod_halo_M500c", "sod_halo_MGas500c"]]),
                )],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::WithColumn {
                    name: "gas_fraction".into(),
                    expr: "sod_halo_MGas500c / sod_halo_M500c".into(),
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::FitResiduals {
                    x: "sod_halo_M500c".into(),
                    y: "gas_fraction".into(),
                    log_x: true,
                    n_lowest: *n,
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                scatter("fit_x", "gas_fraction", None),
                "r2_fitted",
                "gas fraction vs mass with deficient systems",
            ));
            if multi_sim {
                // Ensemble variant: which simulations produce the
                // deficient systems?
                plan_steps.push(compute(
                    ComputeKind::GroupAgg {
                        by: vec!["sim".into()],
                        aggs: vec![("count".into(), "fof_halo_tag".into())],
                    },
                    "r2",
                    "r3",
                ));
                plan_steps.push(viz(
                    line("sim", "count_fof_halo_tag", None),
                    "r3",
                    "gas-deficient systems per simulation",
                ));
            }
            rationale = format!("fit the mean f_gas trend, report the {n} most deficient");
        }
        Goal::AssemblyHistory => {
            plan_steps.push(load(
                sims,
                steps,
                vec![
                    table("halos", cols(&[HALO_BASE])),
                    table(
                        "cores",
                        cols(&[&["core_tag", "fof_halo_tag", "core_infall_step"]]),
                    ),
                ],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos"), select_all("cores")]));
            plan_steps.push(compute(
                ComputeKind::TrackHalo {
                    tag_rank: 1,
                    anchor_step: last_step,
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::LinFit {
                    x: "step".into(),
                    y: "fof_halo_mass".into(),
                    log_x: false,
                    log_y: true,
                    by: None,
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                line("step", "fof_halo_mass", None),
                "r1",
                "assembly history of the most massive halo",
            ));
            rationale = "track the most massive halo, fit its log-mass growth rate".into();
        }
        Goal::SfrPeakDecline => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table("galaxies", cols(&[&["gal_tag", "gal_sfr"]]))],
                false,
            ));
            plan_steps.push(sql(vec![select_all("galaxies")]));
            plan_steps.push(compute(
                ComputeKind::GroupAgg {
                    by: vec!["step".into()],
                    aggs: vec![("mean".into(), "gal_sfr".into())],
                },
                "galaxies",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::PeakAndDecline {
                    x: "step".into(),
                    column: "mean_gal_sfr".into(),
                },
                "r1",
                "r2",
            ));
            plan_steps.push(viz(
                line("step", "mean_gal_sfr", None),
                "r1",
                "mean star formation rate vs step",
            ));
            plan_steps.push(viz(
                VizKind::Line {
                    x: "step".into(),
                    y: "mean_gal_sfr".into(),
                    group: None,
                    log_y: true,
                },
                "r1",
                "log SFR decline after the peak",
            ));
            rationale = "per-step mean SFR, locate the peak, fit the decline".into();
        }
        Goal::MedianGasVsTime => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table(
                    "halos",
                    cols(&[&["fof_halo_tag", "sod_halo_M500c", "sod_halo_MGas500c"]]),
                )],
                false,
            ));
            plan_steps.push(sql(vec![TableSelect {
                table: "halos".into(),
                columns: vec![],
                filters: vec![SqlFilter {
                    column: "sod_halo_M500c".into(),
                    op: ">".into(),
                    value: 1.0e13,
                }],
                output: "halos".into(),
            }]));
            plan_steps.push(compute(
                ComputeKind::GroupAgg {
                    by: vec!["sim".into(), "step".into()],
                    aggs: vec![("median".into(), "sod_halo_MGas500c".into())],
                },
                "halos",
                "r1",
            ));
            plan_steps.push(compute(
                ComputeKind::GroupAgg {
                    by: vec!["step".into()],
                    aggs: vec![("median".into(), "sod_halo_MGas500c".into())],
                },
                "halos",
                "r2",
            ));
            plan_steps.push(viz(
                line("step", "median_sod_halo_MGas500c", Some("sim")),
                "r1",
                "median gas mass of massive halos per sim",
            ));
            plan_steps.push(viz(
                line("step", "median_sod_halo_MGas500c", None),
                "r2",
                "ensemble median gas mass of massive halos",
            ));
            rationale = "median gas mass of M500c>1e13 halos, per sim and ensemble".into();
        }
        Goal::RadiusScene { rank, radius } => {
            plan_steps.push(load(
                sims,
                steps,
                vec![table(
                    "halos",
                    cols(&[HALO_BASE, HALO_CENTERS, &["sod_halo_radius"]]),
                )],
                false,
            ));
            plan_steps.push(sql(vec![select_all("halos")]));
            plan_steps.push(compute(
                ComputeKind::RadiusSelect {
                    rank: *rank,
                    radius: *radius,
                    box_size,
                },
                "halos",
                "r1",
            ));
            plan_steps.push(viz(
                VizKind::Scene3D,
                "r1",
                &format!("halos within {radius} Mpc of the target"),
            ));
            rationale = format!("neighborhood of the rank-{rank} halo within {radius} Mpc");
        }
    }

    Plan {
        steps: plan_steps,
        rationale,
    }
}

/// Run the planning stage: intent extraction, plan compilation, and the
/// multi-turn refinement dialogue (token-accounted). Without human
/// feedback the agent is instructed to "ignore missing requirements and
/// continue" (§3.3), optionally inserting an extra data-inspection step —
/// the source of the paper's fractional mean step counts.
pub fn plan_question(ctx: &AgentContext, question: &str) -> (Intent, Plan) {
    let intent = crate::intent::parse_intent(question, &ctx.manifest, &ctx.retriever);
    let mut plan = compile_plan(&intent, ctx);

    // Chain-of-thought planning call(s).
    let retrieved = ctx.retriever.retrieve_for_task(question, "draft analysis plan", "");
    let doc_text: String = retrieved
        .iter()
        .map(|d| format!("- {}: {}\n", d.key, d.text))
        .collect();
    let prompt = format!(
        "{}\n\nThink step by step and draft an analysis plan.\n\
         ## Question\n{question}\n## Data context\n{doc_text}",
        crate::prompts::preamble("planner")
    );
    ctx.llm.charge("planner", &prompt, &plan.to_text());

    // Refinement turns: either human feedback or the self-continue
    // instruction; each turn is another model call.
    let turns = 1 + ctx.llm.pick(2);
    for turn in 0..turns {
        let feedback = if ctx.config.human_feedback {
            "user: the plan looks right, proceed"
        } else {
            "system: no human feedback available; ignore missing requirements and continue"
        };
        let refine_prompt = format!(
            "{}\n\n## Question\n{question}\n## Data context\n{doc_text}\n\
             ## Current plan (turn {turn})\n{}\n## Feedback\n{feedback}",
            crate::prompts::preamble("planner"),
            plan.to_text()
        );
        ctx.llm.charge("planner", &refine_prompt, &plan.to_text());
    }

    // Plan-shape variability: occasionally add an inspection step after
    // SQL (valid, just extra work).
    if ctx.llm.flip(0.3) {
        let sql_pos = plan
            .steps
            .iter()
            .position(|s| matches!(s, PlanStep::Sql(_)))
            .map(|p| p + 1)
            .unwrap_or(plan.steps.len());
        // Inspect the first loaded table.
        let input = plan
            .steps
            .iter()
            .find_map(|s| match s {
                PlanStep::Load(l) => l.tables.first().map(|t| t.output.clone()),
                _ => None,
            })
            .unwrap_or_else(|| "halos".to_string());
        plan.steps.insert(
            sql_pos,
            compute(ComputeKind::Describe, &input, "inspection"),
        );
    }

    (intent, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{AgentContext, RunConfig};
    use infera_hacc::EnsembleSpec;
    use infera_llm::BehaviorProfile;
    use std::path::PathBuf;

    fn ctx(name: &str, seed: u64) -> AgentContext {
        let base: PathBuf = std::env::temp_dir().join("infera_planner_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest = infera_hacc::generate(&EnsembleSpec::tiny(7), &base.join("ens")).unwrap();
        AgentContext::new(
            std::sync::Arc::new(manifest),
            &base.join("session"),
            seed,
            BehaviorProfile::perfect(),
            RunConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn easy_questions_have_four_analysis_steps() {
        let c = ctx("easy4", 1);
        let (_, plan) = plan_question(
            &c,
            "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
        );
        // Perfect profile still allows the optional inspection step; the
        // canonical compile is 4.
        let (intent, _) = plan_question(&c, "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?");
        let canonical = compile_plan(&intent, &c);
        assert_eq!(canonical.n_analysis_steps(), 4);
        assert!(plan.n_analysis_steps() >= 4);
        let agents: Vec<&str> = canonical.steps.iter().map(PlanStep::agent).collect();
        assert_eq!(agents, vec!["data_loading", "sql", "python", "visualization"]);
    }

    #[test]
    fn smhm_question_has_eight_steps() {
        let c = ctx("smhm8", 2);
        let (intent, _) = plan_question(
            &c,
            "At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass?",
        );
        let plan = compile_plan(&intent, &c);
        assert_eq!(plan.n_analysis_steps(), 8);
        // Loads params for the parameter study.
        match &plan.steps[0] {
            PlanStep::Load(l) => assert!(l.include_params),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn track_question_has_two_plots() {
        let c = ctx("track", 3);
        let (intent, _) = plan_question(
            &c,
            "Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass.",
        );
        let plan = compile_plan(&intent, &c);
        let n_viz = plan
            .steps
            .iter()
            .filter(|s| matches!(s, PlanStep::Visualize { .. }))
            .count();
        assert_eq!(n_viz, 2);
        assert_eq!(plan.n_analysis_steps(), 6);
    }

    #[test]
    fn planning_charges_tokens() {
        let c = ctx("tokens", 4);
        let before = c.llm.meter().total_tokens();
        plan_question(&c, "How many halos are there at each timestep in simulation 0?");
        assert!(c.llm.meter().total_tokens() > before + 500);
    }

    #[test]
    fn param_inference_strategy_varies_with_seed() {
        let mut strategies = std::collections::HashSet::new();
        for seed in 0..12 {
            let c = ctx(&format!("strategy{seed}"), seed);
            let (intent, _) = plan_question(
                &c,
                "Can you make an inference on the direction of the FSN and VEL parameters in order to increase the halo count of the 100 largest halos in timestep 624?",
            );
            let plan = compile_plan(&intent, &c);
            for s in &plan.steps {
                if let PlanStep::Compute {
                    kind: ComputeKind::ParamCorrelation { strategy },
                    ..
                } = s
                {
                    strategies.insert(*strategy);
                }
            }
        }
        assert!(strategies.len() >= 3, "only {strategies:?}");
    }

    #[test]
    fn wiring_is_consistent() {
        // Every compute/viz input must be produced by an earlier step (a
        // load table, sql output, a prior compute output, or a
        // `_pts`/`_fitted` side frame).
        let c = ctx("wiring", 5);
        let questions = [
            "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
            "Please find the largest 100 galaxies and 100 halos at timestep 498 in simulation 0. I would like to plot all of them in Paraview and also see how well aligned those galaxies and halos are to each other.",
            "Which halos at timestep 624 in simulation 0 have unusually low baryon content for their mass? Show the 50 most gas-deficient systems relative to the mean trend.",
            "Identify the epoch when star formation peaked in simulation 0 and quantify how quickly it declines afterwards with a fitted rate.",
        ];
        for q in questions {
            let (intent, _) = plan_question(&c, q);
            let plan = compile_plan(&intent, &c);
            let mut available: Vec<String> = vec!["params".into()];
            for step in &plan.steps {
                match step {
                    PlanStep::Load(l) => {
                        for t in &l.tables {
                            available.push(t.output.clone());
                        }
                    }
                    PlanStep::Sql(s) => {
                        for sel in &s.selects {
                            assert!(
                                available.contains(&sel.table),
                                "{q}: sql reads unknown table {}",
                                sel.table
                            );
                            available.push(sel.output.clone());
                        }
                    }
                    PlanStep::Compute { input, output, .. } => {
                        assert!(
                            available.contains(input),
                            "{q}: compute reads unknown frame {input}"
                        );
                        available.push(output.clone());
                        available.push(format!("{output}_pts"));
                        available.push(format!("{output}_fitted"));
                    }
                    PlanStep::Visualize { input, .. } => {
                        assert!(
                            available.contains(input),
                            "{q}: viz reads unknown frame {input}"
                        );
                    }
                }
            }
        }
    }
}
