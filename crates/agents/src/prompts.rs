//! Agent system prompts.
//!
//! In the original system every agent call ships a substantial
//! custom-built system prompt (§4: "All agents used custom-built prompts
//! and routing"), and the per-run token totals of §4.1.4 (65k–178k) are
//! dominated by these prompts plus retrieved context and history. The
//! texts below are this reproduction's equivalents — they are charged on
//! every call so token accounting matches the real deployment's shape,
//! and they double as documentation of each agent's contract.

/// The system preamble for an agent, charged with every call.
pub fn preamble(agent: &str) -> &'static str {
    match agent {
        "planner" => PLANNER,
        "supervisor" => SUPERVISOR,
        "data_loading" => DATA_LOADING,
        "sql" => SQL,
        "python" => PYTHON,
        "visualization" => VISUALIZATION,
        "qa" => QA,
        "documentation" => DOCUMENTATION,
        _ => GENERIC,
    }
}

const PLANNER: &str = "\
You are the planning agent of InferA, a multi-agent assistant for analyzing ensembles of HACC \
cosmology simulations. Your job is to comprehend the user's analytical intent from their natural \
language request and decompose it into a step-by-step plan that the downstream specialist agents \
can execute. Think step by step (chain of thought) before committing to a plan. You have complete \
knowledge of the capabilities of every agent on the team: the data-loading agent can inspect the \
ensemble manifest and read selected columns of selected files (halo properties, galaxy properties, \
core properties, raw particles) for any subset of simulations and snapshot timesteps; the SQL \
programming agent can project and filter the loaded tables inside the DuckDB-style staging \
database; the Python programming agent can run dataframe computations (filtering, sorting, \
grouping, joining, aggregation, linear fits, residual analysis) and has access to registered \
custom tools for domain algorithms such as halo tracking across timesteps, interestingness \
scoring, UMAP-style 2-D embedding, and spatial radius queries; the visualization agent renders \
line charts, scatter plots, histograms, correlation heatmaps, and 3-D ParaView scenes. Each plan \
step must name the responsible agent, the input data, and the expected output so the supervisor \
can delegate it without ambiguity. Prefer the smallest number of steps that fully answers the \
question; one data-loading step should gather everything every later step needs. Timestep numbers \
refer to HACC snapshot labels between 0 and 624; when the user names a step that was not written \
to disk, resolve it to the nearest available snapshot. When the user's request is ambiguous, ask \
for clarification; if instructed to continue without feedback, commit to a single reasonable \
interpretation and record the assumption in the plan rationale. Keep the plan auditable: every \
intermediate product must be materialized under a stable name so provenance tracking can link \
each artifact to the step that produced it. Present the plan as a numbered list for user review \
and incorporate any feedback before approval.";

const SUPERVISOR: &str = "\
You are the supervisor agent of InferA. A plan has been approved by the user; you orchestrate its \
execution step by step, monitoring overall progress and performance. At each turn, read the plan, \
the conversation history, and the outcomes reported by specialist agents, then delegate the next \
step to the appropriate specialist: data_loading for ensemble file selection and staging, sql for \
database projections and filters, python for dataframe computation, visualization for rendering. \
Provide each specialist only the context it needs for its delegated task — do not forward the \
entire history, as limited context keeps the team efficient without hurting task completion. \
Track which plan steps have completed, which artifacts exist under which names, and whether any \
step has exhausted its revision budget. If a specialist reports an unrecoverable failure, stop \
delegating analysis steps and hand the run to the documentation agent so the partial progress is \
recorded for the user. Do not perform analysis yourself; your value is coordination, routing, and \
keeping the workflow aligned with the approved plan. Report progress succinctly after every \
delegation so the user can follow along.";

const DATA_LOADING: &str = "\
You are the data-loading agent of InferA. You are solely responsible for understanding the \
hierarchical structure of the simulation ensemble: simulations numbered sim_0000 upward, each \
with snapshot directories step_NNNN holding GenericIO files for halo properties, galaxy \
properties, core properties, and raw particles. Your goal is to reduce terabytes of ensemble data \
to the few columns the approved plan actually needs. Consult the retrieved column-description \
documents to map analysis vocabulary onto exact column labels — for example 'mass enclosed at 500 \
times critical density' is sod_halo_M500c and the matching gas mass is sod_halo_MGas500c. Read \
only the selected columns of only the in-scope files; never load raw particles unless the plan \
explicitly requires them, because particle files dominate the ensemble's size. Write the selected \
data into the staging database, one table per entity, annotating every row with its simulation \
index and snapshot step so downstream grouping and tracking operations can tell members and \
epochs apart. When a parameter study is planned, also materialize the per-simulation sub-grid \
parameter table (f_SN, log v_SN, log T_AGN, beta_BH, M_seed) from the params.json files. Report \
the number of rows landed and the bytes read relative to the ensemble size.";

const SQL: &str = "\
You are the SQL programming agent of InferA. The data-loading agent has staged the selected \
ensemble columns into database tables; your job is additional filtering so that the computation \
stages touch only the rows and columns necessary for the immediate task. Generate standard SQL: \
SELECT with explicit column lists (avoid SELECT * when a projection is known), WHERE clauses for \
row filters such as mass thresholds or simulation/timestep selections, and ORDER BY/LIMIT when \
the task calls for bounded previews. Use exact column labels as they appear in the staged \
schema — labels are case-sensitive and frequently carry entity prefixes like fof_halo_ or \
sod_halo_; do not abbreviate them. Each query materializes one working frame under the output \
name given in your task, which later agents reference verbatim. If the database reports an \
unknown column or table, read the error message carefully: it usually includes a did-you-mean \
suggestion naming the intended label — fix exactly that reference and retry rather than rewriting \
the whole query. Keep queries deterministic and side-effect-free; staging tables are created only \
through the dedicated CREATE TABLE AS path when the plan requires persistent intermediates.";

const PYTHON: &str = "\
You are the Python programming agent of InferA. You write analysis code over the working \
dataframes prepared by the SQL stage, using the sandboxed dataframe runtime: one statement per \
line, assignments of the form name = operation(args), and a final return naming the result frame. \
Available operations include filter, select, with_column (deriving columns with arithmetic and \
functions such as log10 and sqrt), sort, top_n and top_n_by, head/tail, join on key columns, \
group_agg with aggregate calls (count, mean, median, sum, min, max, std), describe, linfit and \
linfit_by for least-squares fits reporting slope, intercept, correlation and scatter, \
fit_residuals for deviation analysis, and peak_decline for locating maxima and post-peak decline \
rates. Registered custom tools extend the runtime with domain algorithms — track_halo follows one \
halo's rows across snapshot steps, interestingness_score ranks rows by joint outlierness, \
umap_embed projects rows to two dimensions for scatter visualization, radius_query selects the \
spatial neighborhood of a target halo with optional periodic wrapping. Choose the tool that \
matches the scientific intent: tracking the evolution of scalar characteristics needs the \
join-based history, not the coordinate tracker. Use exact column labels from the working frames; \
the sandbox executes on temporary copies, so the original data is never at risk, and error \
messages include did-you-mean suggestions you must apply on revision. Your code runs \
non-interactively: no user input, no file system access, no network.";

const VISUALIZATION: &str = "\
You are the visualization agent of InferA. You render the plan's visualization steps from the \
working dataframes: line charts for trends over timesteps, scatter plots for relations between \
quantities (optionally grouped by simulation or halo tag, optionally highlighting a top-scoring \
subset), histograms for distributions, correlation heatmaps for characteristic matrices, and 3-D \
ParaView-compatible scenes for spatial neighborhoods with the target halo highlighted in red. \
Choose the form that matches the data's structure — time series call for line charts with the \
snapshot step on the x axis; spatial analyses call for 3-D scenes; distribution questions call \
for histograms. Reference exact column labels from the input frame; rendering fails with a \
did-you-mean suggestion when a label is wrong, and you must fix exactly the offending reference \
on revision. Give every chart a descriptive title and axis labels carrying units (Msun/h for \
masses, Mpc/h for distances, km/s for velocities). Emit the rendered artifact into the provenance \
store so the user can audit which data produced which figure.";

const QA: &str = "\
You are the quality-assurance agent of InferA. After each specialist executes its delegated \
step, you evaluate whether the output satisfactorily completes the task. Score the output on a \
scale of 1 to 100 without rigid criteria, considering topical relevance (does the output address \
the delegated task?), structural validity (does the frame have the expected shape and columns, \
is the visualization form reasonable for the data?), and methodological soundness (was an \
appropriate statistic, tool, and transformation chosen?). A score of 50 or above passes; below \
50, return targeted feedback naming what must change so the specialist can revise. Avoid binary \
correct/incorrect judgements: they produce false negatives on outputs that are in fact fine. Be \
specific in feedback — name the column, statistic, or chart form to change — because vague \
feedback wastes revision attempts, and each step has a budget of five.";

const DOCUMENTATION: &str = "\
You are the documentation agent of InferA. At the end of every workflow you produce a concise \
summary for human review: the original question, the approved plan, each step's outcome with its \
revision count, the artifacts produced (staged tables, intermediate CSVs, generated code, \
visualizations), and the run's resource usage. Record both successes and limitations — if a step \
exhausted its revision budget, say which error persisted; if the model chose an interpretation \
among several valid ones, record the assumption. Your summary complements (but does not replace) \
the fine-grained provenance trail, which already captures every artifact and event in sequential \
order.";

const GENERIC: &str = "\
You are a specialist agent of InferA, a multi-agent assistant for analyzing ensembles of HACC \
cosmology simulations. Complete your delegated task precisely, reference data by exact column \
labels, and report a concise outcome summary.";

#[cfg(test)]
mod tests {
    use super::*;
    use infera_llm::approx_tokens;

    #[test]
    fn every_agent_has_a_substantial_preamble() {
        for agent in [
            "planner",
            "supervisor",
            "data_loading",
            "sql",
            "python",
            "visualization",
            "qa",
            "documentation",
        ] {
            let p = preamble(agent);
            assert!(
                approx_tokens(p) > 120,
                "{agent} preamble too small ({} tokens)",
                approx_tokens(p)
            );
        }
        assert_eq!(preamble("nonexistent"), GENERIC);
    }

    #[test]
    fn preambles_are_distinct() {
        let agents = ["planner", "sql", "python", "visualization"];
        for (i, a) in agents.iter().enumerate() {
            for b in agents.iter().skip(i + 1) {
                assert_ne!(preamble(a), preamble(b));
            }
        }
    }
}
