//! Natural-language question understanding.
//!
//! The planning agent's first job is to extract the user's analytical
//! intent from free text (§3: "chain-of-thought prompting to comprehend
//! and extract the user's intent"). This module implements that
//! extraction as a deterministic keyword/pattern analyzer over the
//! question wording, backed by RAG retrieval for mapping analysis
//! vocabulary ("size", "star formation activity", "gas content") onto
//! concrete column names. The stochastic LLM layer perturbs *artifact
//! generation*, not intent extraction, so a question's canonical intent
//! is stable — matching the paper's observation that precise questions
//! produce identical pipelines across runs while ambiguous ones diverge
//! at explicitly ambiguous decision points ([`Goal::ParamInference`]).

use infera_hacc::{EntityKind, Manifest};
use infera_rag::Retriever;
use serde::{Deserialize, Serialize};

/// Grouping dimension of trend questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrendDim {
    Step,
    Sim,
}

impl TrendDim {
    pub fn column(self) -> &'static str {
        match self {
            TrendDim::Step => "step",
            TrendDim::Sim => "sim",
        }
    }
}

/// The analytical goal of a question — one variant per pipeline family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Goal {
    /// Aggregate one column per step or per sim and plot the trend.
    GroupTrend {
        entity: String,
        column: String,
        agg: String,
        by: TrendDim,
    },
    /// Largest-N (or smallest-N) selection.
    TopN {
        entity: String,
        column: String,
        n: usize,
    },
    /// Distribution / histogram of one column.
    Distribution {
        entity: String,
        column: String,
        by_sim: bool,
    },
    /// Track the top-N halos' mass metrics across all timesteps (two
    /// plots: count + mass).
    TrackTopMass { n: usize },
    /// Top-N halos and galaxies, 3-D scene, alignment measurement.
    TopBothAlignment { n: usize },
    /// Interestingness scoring + UMAP embedding with highlights.
    InterestingnessUmap { top: usize, highlight: usize },
    /// Gas-mass-fraction relation slope/normalization evolution.
    GasFractionEvolution,
    /// Two largest halos, top galaxies of each, characteristic comparison.
    CompareTopHaloGalaxies { n_halos: usize, per_halo: usize },
    /// SMHM relation vs AGN seed mass study.
    SmhmSeedStudy,
    /// The ambiguous §4.5 f_SN / v_SN inference question.
    ParamInference,
    /// Fastest-moving halos (derived speed column).
    SpeedStudy { n: usize },
    /// Mass–velocity-dispersion relation fit.
    VelDispRelation,
    /// Gas-deficient systems relative to the mean trend.
    GasDeficient { n: usize },
    /// Assembly history of the most massive halo.
    AssemblyHistory,
    /// Star-formation peak epoch and decline rate.
    SfrPeakDecline,
    /// Median gas content of massive systems vs time, per sim + ensemble.
    MedianGasVsTime,
    /// All halos within a radius of a target halo, rendered 3-D.
    RadiusScene { rank: usize, radius: f64 },
}

/// Extracted intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intent {
    pub goal: Goal,
    /// Resolved simulation indices.
    pub sims: Vec<u32>,
    /// Resolved snapshot steps.
    pub steps: Vec<u32>,
}

/// Map spelled-out numerals to values ("two largest halos").
fn word_number(w: &str) -> Option<u64> {
    Some(match w {
        "one" => 1,
        "two" => 2,
        "three" => 3,
        "four" => 4,
        "five" => 5,
        "six" => 6,
        "seven" => 7,
        "eight" => 8,
        "nine" => 9,
        "ten" => 10,
        _ => return None,
    })
}

fn parse_count(w: &str) -> Option<u64> {
    w.trim_end_matches('.')
        .parse::<u64>()
        .ok()
        .or_else(|| word_number(w))
}

/// Find `prefix <number>` occurrences (e.g. "timestep 498").
fn number_after<'a>(text: &'a str, prefixes: &[&str]) -> Vec<u64> {
    let lower = text.to_ascii_lowercase();
    let words: Vec<&str> = lower
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '.'))
        .filter(|w| !w.is_empty())
        .collect();
    let mut out = Vec::new();
    for (i, w) in words.iter().enumerate() {
        if prefixes.contains(w) {
            if let Some(v) = words.get(i + 1).and_then(|next| parse_count(next)) {
                out.push(v);
            }
        }
    }
    out
}

/// Find `<number> <suffix>` occurrences (e.g. "100 largest", "20 mpc").
fn number_before<'a>(text: &'a str, suffixes: &[&str]) -> Vec<f64> {
    let lower = text.to_ascii_lowercase();
    let words: Vec<&str> = lower
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '.'))
        .filter(|w| !w.is_empty())
        .collect();
    let mut out = Vec::new();
    for (i, w) in words.iter().enumerate() {
        if suffixes.contains(w) && i > 0 {
            if let Ok(v) = words[i - 1].trim_end_matches('.').parse::<f64>() {
                out.push(v);
            } else if let Some(v) = word_number(words[i - 1]) {
                out.push(v as f64);
            }
        }
    }
    out
}

fn has(text: &str, needle: &str) -> bool {
    text.to_ascii_lowercase()
        .contains(&needle.to_ascii_lowercase())
}

fn has_any(text: &str, needles: &[&str]) -> bool {
    needles.iter().any(|n| has(text, n))
}

/// Resolve simulation scope from the wording.
pub fn parse_sims(text: &str, manifest: &Manifest) -> Vec<u32> {
    let all: Vec<u32> = (0..manifest.n_sims).collect();
    if has_any(
        text,
        &[
            "all the simulations",
            "all simulations",
            "each simulation",
            "across simulations",
            "across all simulations",
            "in all simulations",
            "for each simulation",
            "the ensemble",
            "every simulation",
            "as a function of seed mass",
            "vary as a function",
        ],
    ) {
        return all;
    }
    let named = number_after(text, &["simulation", "simulations", "sim"]);
    if !named.is_empty() {
        let mut sims: Vec<u32> = named
            .into_iter()
            .map(|v| (v as u32).min(manifest.n_sims.saturating_sub(1)))
            .collect();
        sims.sort_unstable();
        sims.dedup();
        return sims;
    }
    // Parameter-study wording implies the whole ensemble.
    if has_any(text, &["seed mass", "fsn", "f_sn", "parameters"]) {
        return all;
    }
    vec![0]
}

/// Resolve timestep scope from the wording (requested steps snap to the
/// nearest generated snapshot).
pub fn parse_steps(text: &str, manifest: &Manifest) -> Vec<u32> {
    if has_any(
        text,
        &[
            "all timesteps",
            "all time steps",
            "each time step",
            "each timestep",
            "every timestep",
            "over time",
            "over all timesteps",
            "evolve",
            "evolution",
            "assembly history",
            "change with time",
            "peaked",
            "across time",
        ],
    ) {
        return manifest.steps.clone();
    }
    if has(text, "earliest") && has(text, "latest") {
        let first = *manifest.steps.first().expect("non-empty steps");
        let last = *manifest.steps.last().expect("non-empty steps");
        // Evolution between endpoints still needs the in-between
        // snapshots to show the trend.
        if has_any(text, &["evolve", "from the earliest"]) {
            return manifest.steps.clone();
        }
        return vec![first, last];
    }
    let named = number_after(text, &["timestep", "timesteps", "step", "snapshot", "ts"]);
    if !named.is_empty() {
        let mut steps: Vec<u32> = named
            .into_iter()
            .map(|v| manifest.nearest_step(v as u32))
            .collect();
        steps.sort_unstable();
        steps.dedup();
        return steps;
    }
    vec![*manifest.steps.last().expect("non-empty steps")]
}

/// Which entity a question is about.
fn parse_entity(text: &str) -> EntityKind {
    let galaxies = has_any(text, &["galaxy", "galaxies", "stellar", "star formation"]);
    let halos = has_any(text, &["halo", "halos", "friends-of-friends", "fof"]);
    match (halos, galaxies) {
        (_, true) if !halos => EntityKind::Galaxies,
        (true, true) => EntityKind::Halos, // joins handled by the goal
        _ => EntityKind::Halos,
    }
}

/// Resolve a metric phrase to a concrete column of `entity`: exact
/// column-name mention wins; otherwise the top RAG hit among the entity's
/// columns.
pub fn resolve_metric(text: &str, entity: EntityKind, retriever: &Retriever) -> String {
    // Exact mention.
    for col in entity.column_names() {
        if has(text, col) {
            return col.to_string();
        }
    }
    // RAG: best-scoring column doc of this entity (pure relevance).
    let hits = retriever.top_hits(text, 20);
    for hit in &hits {
        if hit.doc.entity == entity.label()
            && entity.column_names().contains(&hit.doc.key.as_str())
        {
            return hit.doc.key.clone();
        }
    }
    // Sensible default mass proxy.
    match entity {
        EntityKind::Galaxies => "gal_mass".to_string(),
        _ => "fof_halo_mass".to_string(),
    }
}

/// First "top/largest N" style count in the text, or `default`.
fn top_count(text: &str, default: usize) -> usize {
    let hits = number_before(
        text,
        &["largest", "biggest", "most", "halos", "galaxies", "systems"],
    );
    let top = number_after(text, &["top", "largest", "first"]);
    top.first()
        .copied()
        .or(hits.first().map(|v| *v as u64))
        .map(|v| v as usize)
        .filter(|&v| v > 0 && v < 1_000_000)
        .unwrap_or(default)
}

/// Extract the full intent of a question.
pub fn parse_intent(text: &str, manifest: &Manifest, retriever: &Retriever) -> Intent {
    let sims = parse_sims(text, manifest);
    let mut steps = parse_steps(text, manifest);
    let entity = parse_entity(text);

    let goal = if has_any(text, &["within"]) && has_any(text, &["mpc", "megaparsec"]) {
        let radius = number_before(text, &["mpc", "megaparsec", "megaparsecs"])
            .first()
            .copied()
            .unwrap_or(20.0);
        Goal::RadiusScene { rank: 1, radius }
    } else if has_any(text, &["interestingness", "most unique", "most interesting"]) {
        let top = top_count(text, 1000);
        let highlight = number_after(text, &["top"])
            .iter()
            .map(|&v| v as usize)
            .find(|&v| v < top)
            .unwrap_or(20);
        Goal::InterestingnessUmap { top, highlight }
    } else if has_any(
        text,
        &["smhm", "stellar-to-halo", "stellar to halo", "seed mass"],
    ) {
        Goal::SmhmSeedStudy
    } else if has_any(text, &["fsn", "f_sn"]) && has_any(text, &["vel", "v_sn", "direction"]) {
        Goal::ParamInference
    } else if has_any(text, &["gas-mass fraction", "gas mass fraction"])
        || (has(text, "mgas500c") && has_any(text, &["slope", "normalization"]))
    {
        Goal::GasFractionEvolution
    } else if has_any(text, &["gas-deficient", "gas deficient", "baryon content"]) {
        Goal::GasDeficient {
            n: top_count(text, 50),
        }
    } else if has_any(text, &["assembly history", "when did it form"]) {
        Goal::AssemblyHistory
    } else if has_any(text, &["change in mass", "mass growth"])
        || (has(text, "largest") && has_any(text, &["all timesteps", "all time steps"]))
    {
        Goal::TrackTopMass {
            n: top_count(text, 5),
        }
    } else if has_any(text, &["aligned", "alignment", "paraview"]) && has(text, "galaxies") {
        Goal::TopBothAlignment {
            n: top_count(text, 100),
        }
    } else if has(text, "velocity dispersion") && has_any(text, &["slope", "relation", "normalization"]) {
        Goal::VelDispRelation
    } else if has_any(text, &["fastest", "speed"]) {
        Goal::SpeedStudy {
            n: top_count(text, 1000),
        }
    } else if has_any(text, &["star formation", "star-formation"]) {
        if has_any(text, &["peak", "peaked", "decline"]) {
            Goal::SfrPeakDecline
        } else {
            Goal::GroupTrend {
                entity: "galaxies".into(),
                column: "gal_sfr".into(),
                agg: "median".into(),
                by: TrendDim::Step,
            }
        }
    } else if has_any(text, &["gas content", "typical gas"]) && has_any(text, &["time", "change"])
    {
        Goal::MedianGasVsTime
    } else if has_any(text, &["differences", "compare", "characteristics"])
        && has(text, "galaxies")
        && has(text, "largest")
    {
        Goal::CompareTopHaloGalaxies {
            // "the two largest halos" / "the top 10 galaxies".
            n_halos: number_before(text, &["largest", "biggest"])
                .first()
                .map(|&v| v as usize)
                .unwrap_or(2),
            per_halo: number_after(text, &["top"])
                .first()
                .map(|&v| v as usize)
                .unwrap_or(10),
        }
    } else if has_any(text, &["average", "mean", "median"])
        && has_any(text, &["each time step", "each timestep", "at each"])
    {
        let column = resolve_metric(text, entity, retriever);
        Goal::GroupTrend {
            entity: entity.label().into(),
            column,
            agg: if has(text, "median") { "median" } else { "mean" }.into(),
            by: TrendDim::Step,
        }
    } else if has_any(text, &["how many", "number of", "count of"]) {
        let by = if has_any(text, &["across all simulations", "across simulations"]) {
            TrendDim::Sim
        } else {
            TrendDim::Step
        };
        Goal::GroupTrend {
            entity: entity.label().into(),
            column: if entity == EntityKind::Galaxies {
                "gal_tag".into()
            } else {
                "fof_halo_tag".into()
            },
            agg: "count".into(),
            by,
        }
    } else if has_any(text, &["average", "mean"])
        && has_any(text, &["across all simulations", "across simulations", "per simulation"])
    {
        Goal::GroupTrend {
            entity: entity.label().into(),
            column: resolve_metric(text, entity, retriever),
            agg: "mean".into(),
            by: TrendDim::Sim,
        }
    } else if has_any(text, &["histogram", "distribution"]) {
        Goal::Distribution {
            entity: entity.label().into(),
            column: resolve_metric(text, entity, retriever),
            by_sim: has_any(text, &["across all simulations", "across simulations"]),
        }
    } else if has_any(text, &["largest", "biggest", "top", "maximum", "max"]) {
        let n = if has_any(text, &["maximum", "max"]) && !has_any(text, &["top", "largest"]) {
            1
        } else {
            top_count(text, 20)
        };
        // Explicit column mention wins; otherwise "largest" means mass.
        let explicit = entity
            .column_names()
            .into_iter()
            .find(|c| has(text, c))
            .map(str::to_string);
        let column = explicit.unwrap_or_else(|| {
            if has_any(text, &["largest", "biggest", "size", "massive"]) {
                if entity == EntityKind::Galaxies {
                    "gal_mass".to_string()
                } else {
                    "fof_halo_mass".to_string()
                }
            } else {
                resolve_metric(text, entity, retriever)
            }
        });
        Goal::TopN {
            entity: entity.label().into(),
            column,
            n,
        }
    } else {
        // Fallback: summarize the most relevant metric's distribution.
        Goal::Distribution {
            entity: entity.label().into(),
            column: resolve_metric(text, entity, retriever),
            by_sim: false,
        }
    };

    // Goals that inherently span time force full step coverage.
    let needs_all_steps = matches!(
        goal,
        Goal::TrackTopMass { .. }
            | Goal::AssemblyHistory
            | Goal::SfrPeakDecline
            | Goal::MedianGasVsTime
            | Goal::GasFractionEvolution
    ) || matches!(
        goal,
        Goal::GroupTrend { by: TrendDim::Step, .. }
    );
    if needs_all_steps && steps.len() < 2 {
        steps = manifest.steps.clone();
    }

    Intent { goal, sims, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_hacc::EnsembleSpec;
    use infera_rag::Doc;
    use std::path::PathBuf;
    use std::sync::OnceLock;

    fn fixtures() -> &'static (Manifest, Retriever) {
        static FIX: OnceLock<(Manifest, Retriever)> = OnceLock::new();
        FIX.get_or_init(|| {
            let dir: PathBuf = std::env::temp_dir().join("infera_intent_tests_ens");
            std::fs::remove_dir_all(&dir).ok();
            let manifest = infera_hacc::generate(&EnsembleSpec::tiny(3), &dir).unwrap();
            let docs: Vec<Doc> = infera_hacc::column_dictionary()
                .into_iter()
                .map(|c| Doc::new(&c.column, &c.entity, &c.description, c.important))
                .collect();
            (manifest, Retriever::new(docs))
        })
    }

    fn intent(text: &str) -> Intent {
        let (m, r) = fixtures();
        parse_intent(text, m, r)
    }

    #[test]
    fn table1_average_size_question() {
        let i = intent(
            "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
        );
        assert_eq!(
            i.goal,
            Goal::GroupTrend {
                entity: "halos".into(),
                column: "fof_halo_count".into(),
                agg: "mean".into(),
                by: TrendDim::Step,
            }
        );
        assert_eq!(i.sims.len(), 2); // tiny ensemble: all sims
        assert_eq!(i.steps.len(), 4); // all steps
    }

    #[test]
    fn precise_top20_question() {
        let i = intent(
            "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
        );
        match i.goal {
            Goal::TopN { n, ref column, .. } => {
                assert_eq!(n, 20);
                assert!(column.starts_with("fof_halo_"), "{column}");
            }
            ref other => panic!("{other:?}"),
        }
        assert_eq!(i.sims, vec![0]);
        assert_eq!(i.steps.len(), 1);
    }

    #[test]
    fn track_top_mass_question() {
        let i = intent(
            "Can you plot the change in mass of the largest friends-of-friends halos for all timesteps in all simulations? Provide me two plots using both fof_halo_count and fof_halo_mass as metrics for mass.",
        );
        assert!(matches!(i.goal, Goal::TrackTopMass { .. }));
        assert_eq!(i.sims.len(), 2);
        assert!(i.steps.len() >= 4);
    }

    #[test]
    fn interestingness_question() {
        let i = intent(
            "I would like to find the most unique halos in simulation 0 at timestep 498. Using velocity, mass, and kinetic energy of the halos, generate an 'interestingness' score and plot the top 1000 halos as a UMAP plot, highlighting the top 20 halos in simulation 0 that are the most interesting.",
        );
        assert_eq!(
            i.goal,
            Goal::InterestingnessUmap {
                top: 1000,
                highlight: 20
            }
        );
        assert_eq!(i.sims, vec![0]);
    }

    #[test]
    fn gas_fraction_question() {
        let i = intent(
            "How does the slope and normalization of the gas-mass fraction\u{2014}mass relation (sod_halo_MGas500c/sod_halo_M500c) evolve from the earliest timestep to the latest timestep in simulation 0?",
        );
        assert_eq!(i.goal, Goal::GasFractionEvolution);
        assert!(i.steps.len() >= 2);
        assert_eq!(i.sims, vec![0]);
    }

    #[test]
    fn compare_galaxies_question() {
        let i = intent(
            "First find the two largest halos by their halo count in timestep 624 of simulation 0. Then find the top 10 galaxies associated to those two halos (related by fof_halo_tag). What are the differences in characteristics of the two groups of galaxies? For example, differences in gas-mass, mass, or kinetic energy?",
        );
        assert_eq!(
            i.goal,
            Goal::CompareTopHaloGalaxies {
                n_halos: 2,
                per_halo: 10
            }
        );
    }

    #[test]
    fn smhm_question() {
        let i = intent(
            "At timestep 624, how does the slope and intrinsic scatter of the stellar-to-halo mass (SMHM) relation vary as a function of seed mass? Which seed mass values produce the tightest SMHM correlation, and is there a threshold seed mass that maximizes stellar-mass assembly efficiency?",
        );
        assert_eq!(i.goal, Goal::SmhmSeedStudy);
        assert_eq!(i.sims.len(), 2); // all sims (parameter study)
    }

    #[test]
    fn ambiguous_param_question() {
        let i = intent(
            "Can you make an inference on the direction of the FSN and VEL parameters in order to increase the halo count of the 100 largest halos in timestep 624? Also plot a summary of the differences in halo characteristics between the two simulations.",
        );
        assert_eq!(i.goal, Goal::ParamInference);
    }

    #[test]
    fn radius_scene_question() {
        let i = intent(
            "Visualize the largest dark matter halo and all surrounding halos within a 20 megaparsec radius.",
        );
        assert_eq!(
            i.goal,
            Goal::RadiusScene {
                rank: 1,
                radius: 20.0
            }
        );
    }

    #[test]
    fn alignment_question() {
        let i = intent(
            "Please find the largest 100 galaxies and 100 halos at timestep 498 in simulation 0. I would like to plot all of them in Paraview and also see how well aligned those galaxies and halos are to each other.",
        );
        assert_eq!(i.goal, Goal::TopBothAlignment { n: 100 });
    }

    #[test]
    fn sfr_questions() {
        let i = intent(
            "How does the median star formation activity of galaxies evolve over time in simulation 1? Plot the trend.",
        );
        assert!(matches!(
            i.goal,
            Goal::GroupTrend { ref column, by: TrendDim::Step, .. } if column == "gal_sfr"
        ));
        assert_eq!(i.sims, vec![1]);

        let i = intent(
            "Identify the epoch when star formation peaked in simulation 0 and quantify how quickly it declines afterwards with a fitted rate.",
        );
        assert_eq!(i.goal, Goal::SfrPeakDecline);
    }

    #[test]
    fn speed_and_veldisp_questions() {
        let i = intent(
            "Find the 1000 fastest-moving halos at timestep 624 across all simulations and plot the distribution of their speeds.",
        );
        assert_eq!(i.goal, Goal::SpeedStudy { n: 1000 });
        let i = intent(
            "What are the slope and normalization of the relation between halo mass and velocity dispersion at timestep 624 in simulation 0? Show a scatter plot with the fit.",
        );
        assert_eq!(i.goal, Goal::VelDispRelation);
    }

    #[test]
    fn gas_deficient_and_assembly() {
        let i = intent(
            "Which halos at timestep 624 in simulation 0 have unusually low baryon content for their mass? Show the 50 most gas-deficient systems relative to the mean trend.",
        );
        assert_eq!(i.goal, Goal::GasDeficient { n: 50 });
        let i = intent(
            "Trace the assembly history of the most massive cluster in simulation 1: when did it form and how fast did it grow?",
        );
        assert_eq!(i.goal, Goal::AssemblyHistory);
        assert!(i.steps.len() >= 4);
    }

    #[test]
    fn counting_questions() {
        let i = intent("How many halos are there at each timestep in simulation 1? Plot the count over time.");
        assert!(matches!(
            i.goal,
            Goal::GroupTrend { ref agg, by: TrendDim::Step, .. } if agg == "count"
        ));
        let i = intent(
            "Compare the number of galaxies at timestep 624 across all simulations with a plot.",
        );
        assert!(matches!(
            i.goal,
            Goal::GroupTrend { ref agg, by: TrendDim::Sim, ref entity, .. }
                if agg == "count" && entity == "galaxies"
        ));
    }

    #[test]
    fn distribution_and_max_questions() {
        let i = intent(
            "Show the distribution of galaxy stellar masses (gal_stellar_mass) at timestep 624 of simulation 0 as a histogram.",
        );
        assert_eq!(
            i.goal,
            Goal::Distribution {
                entity: "galaxies".into(),
                column: "gal_stellar_mass".into(),
                by_sim: false
            }
        );
        let i = intent(
            "What is the maximum fof_halo_mass at timestep 624 in simulation 1, and which halo has it?",
        );
        assert!(matches!(i.goal, Goal::TopN { n: 1, .. }));
        assert_eq!(i.sims, vec![1]);
    }

    #[test]
    fn median_gas_question() {
        let i = intent(
            "For each simulation, how does the typical gas content of massive systems change with time? Summarize the trend across the ensemble.",
        );
        assert_eq!(i.goal, Goal::MedianGasVsTime);
        assert_eq!(i.sims.len(), 2);
    }

    #[test]
    fn metric_resolution_via_rag() {
        let (_, r) = fixtures();
        let col = resolve_metric(
            "what is the typical gas content of halos",
            EntityKind::Halos,
            r,
        );
        assert!(
            col == "sod_halo_MGas500c" || col == "gal_gas_mass" || col.contains("Gas"),
            "{col}"
        );
    }

    #[test]
    fn number_extraction_helpers() {
        assert_eq!(
            number_after("at timestep 498 and step 624", &["timestep", "step"]),
            vec![498, 624]
        );
        assert_eq!(number_before("within 20 Mpc", &["mpc"]), vec![20.0]);
        assert_eq!(top_count("the top 100 largest halos", 5), 100);
        assert_eq!(top_count("the largest halos", 5), 5);
    }
}
