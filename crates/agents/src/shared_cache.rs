//! Shared read-only ensemble cache for concurrent sessions.
//!
//! Under the serving layer, N concurrent questions against one ensemble
//! would each re-open and re-decode the same GenericIO catalogs. The
//! [`SharedEnsembleCache`] memoizes the deterministic part of the
//! data-loading stage — the decoded per-file column batches, *including
//! their byte accounting* — so the ensemble is read once per distinct
//! `(sim, step, entity, columns)` selection and every subsequent run
//! reuses the `Arc`-shared frame.
//!
//! The cache is read-mostly: lookups take a read lock; only an insert
//! (first load of a selection) takes the write lock. Cached entries are
//! immutable (`Arc<DataFrame>`), so hits never copy column data until a
//! run appends the batch into its private database. Because the cached
//! value carries the same `bytes_read` / `file_bytes` accounting the
//! uncached path computes, runs produce bit-identical reports whether or
//! not the cache is enabled — the concurrency tests rely on this.

use infera_frame::DataFrame;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key of one cached selective read: which file, which columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoadKey {
    pub sim: u32,
    pub step: u32,
    /// Entity label ("halos", "galaxies", "cores", "particles").
    pub entity: String,
    /// Selected columns, in selection order (order matters: it fixes the
    /// batch's column layout).
    pub columns: Vec<String>,
}

/// One cached batch: the decoded frame plus the byte accounting the
/// uncached read would have reported.
#[derive(Debug, Clone)]
pub struct CachedBatch {
    pub frame: Arc<DataFrame>,
    /// Bytes the selective read touched (selected columns only).
    pub bytes_read: u64,
    /// Total bytes of the file (all columns) — the reduction denominator.
    pub file_bytes: u64,
}

/// Process-wide cache of decoded ensemble batches, shared across all
/// concurrent runs of one session.
#[derive(Debug, Default)]
pub struct SharedEnsembleCache {
    entries: RwLock<HashMap<LoadKey, CachedBatch>>,
    /// Entry cap: inserts beyond it are skipped (the cache is an
    /// optimization; correctness never depends on a hit).
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedEnsembleCache {
    /// Cache bounded at `max_entries` distinct selections.
    pub fn new(max_entries: usize) -> SharedEnsembleCache {
        SharedEnsembleCache {
            entries: RwLock::new(HashMap::new()),
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a cached batch.
    pub fn get(&self, key: &LoadKey) -> Option<CachedBatch> {
        let found = self.entries.read().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert a freshly decoded batch (no-op once the cap is reached; a
    /// racing duplicate insert keeps the first value).
    pub fn insert(&self, key: LoadKey, batch: CachedBatch) {
        let mut entries = self.entries.write();
        if entries.len() >= self.max_entries && !entries.contains_key(&key) {
            return;
        }
        entries.entry(key).or_insert(batch);
    }

    /// Number of cached selections.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Lifetime hit count.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_frame::Column;

    fn key(sim: u32) -> LoadKey {
        LoadKey {
            sim,
            step: 498,
            entity: "halos".into(),
            columns: vec!["fof_halo_mass".into()],
        }
    }

    fn batch(v: f64) -> CachedBatch {
        CachedBatch {
            frame: Arc::new(
                DataFrame::from_columns([("fof_halo_mass", Column::from(vec![v]))]).unwrap(),
            ),
            bytes_read: 8,
            file_bytes: 64,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let c = SharedEnsembleCache::new(8);
        assert!(c.get(&key(0)).is_none());
        c.insert(key(0), batch(1.0));
        assert!(c.get(&key(0)).is_some());
        assert_eq!(c.hit_count(), 1);
        assert_eq!(c.miss_count(), 1);
    }

    #[test]
    fn cap_blocks_new_keys_but_not_existing() {
        let c = SharedEnsembleCache::new(1);
        c.insert(key(0), batch(1.0));
        c.insert(key(1), batch(2.0));
        assert_eq!(c.len(), 1);
        assert!(c.get(&key(1)).is_none());
        // Re-inserting an existing key is allowed and keeps the first value.
        c.insert(key(0), batch(9.0));
        let got = c.get(&key(0)).unwrap();
        assert_eq!(got.frame.cell("fof_halo_mass", 0).unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn distinct_column_sets_are_distinct_keys() {
        let c = SharedEnsembleCache::new(8);
        c.insert(key(0), batch(1.0));
        let mut k2 = key(0);
        k2.columns.push("fof_halo_count".into());
        assert!(c.get(&k2).is_none());
    }
}
