//! Shared per-run context: substrates, configuration, prompt assembly.

use crate::error::{AgentError, AgentResult, CancelKind};
use crate::shared_cache::SharedEnsembleCache;
use infera_hacc::Manifest;
use infera_shard::SessionDb;
use infera_llm::{BehaviorProfile, SemanticLevel, SimulatedLlm, TokenMeter};
use infera_provenance::ProvenanceStore;
use infera_rag::{Doc, Retriever};
use infera_sandbox::{SandboxServer, ToolRegistry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation handle shared between a run and its caller.
///
/// The serving layer arms a token per job (explicit cancel + optional
/// deadline); the supervisor checks it between plan steps, so a canceled
/// run stops at the next step boundary with [`AgentError::Canceled`]
/// rather than being killed mid-write. Clones share state.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug, Default)]
struct CancelInner {
    canceled: AtomicBool,
    deadline: Mutex<Option<Instant>>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent; takes effect at the next check).
    pub fn cancel(&self) {
        self.inner.canceled.store(true, Ordering::SeqCst);
    }

    /// Whether `cancel` has been called.
    pub fn is_canceled(&self) -> bool {
        self.inner.canceled.load(Ordering::SeqCst)
    }

    /// Arm a deadline `timeout` from now; the earliest armed deadline
    /// wins if called more than once.
    pub fn arm_deadline(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut slot = self.inner.deadline.lock();
        match *slot {
            Some(existing) if existing <= deadline => {}
            _ => *slot = Some(deadline),
        }
    }

    /// Error out if the token is canceled or past its deadline.
    pub fn check(&self) -> AgentResult<()> {
        if self.is_canceled() {
            return Err(AgentError::Canceled(CancelKind::Canceled));
        }
        if let Some(deadline) = *self.inner.deadline.lock() {
            if Instant::now() >= deadline {
                return Err(AgentError::Canceled(CancelKind::DeadlineExceeded));
            }
        }
        Ok(())
    }
}

/// How much conversation history each specialist prompt carries (§4.2.5:
/// only the supervisor sees full history by default; specialists get only
/// their delegated task, cutting token cost without hurting completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextPolicy {
    /// Every agent sees the full message history (the expensive baseline).
    FullHistory,
    /// Specialists see only their delegated task (InferA's design).
    LimitedContext,
}

/// Quality-assurance judgement mode (§4.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QaMode {
    /// 1–100 score against a threshold (InferA's design; threshold 50).
    Scored { threshold: u8 },
    /// Binary correct/incorrect (the rejected design, kept for the
    /// ablation bench).
    Binary,
}

/// Per-run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Maximum revision attempts per step (paper: 5).
    pub max_revisions: u32,
    pub context_policy: ContextPolicy,
    pub qa_mode: QaMode,
    /// Whether a human answers clarification requests (the evaluation
    /// runs with this off: "ignore missing requirements and continue").
    pub human_feedback: bool,
    /// Whether the documentation agent writes its workflow summary.
    /// §4.1.4 notes the summary "is not strictly necessary for core
    /// analysis" — disabling it is one of the paper's token savings.
    pub enable_documentation: bool,
    /// Fraction of each model call's virtual latency that is actually
    /// slept (0.0 = record only, the default). The serving benchmark
    /// sets this so concurrency wins come from overlapping model waits,
    /// the way a real LLM-backed deployment behaves. Sleeping never
    /// touches the RNG, so results are identical at any scale.
    #[serde(default)]
    pub llm_sleep_scale: f64,
    /// Shards the session database splits into (0 or 1 = a single
    /// database, no scatter-gather). With more, the loader partitions
    /// tables by simulation and `ask` queries scatter plan fragments
    /// across the shard set — bit-identical results, 1/N scans each.
    #[serde(default)]
    pub shards: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_revisions: 5,
            context_policy: ContextPolicy::LimitedContext,
            qa_mode: QaMode::Scored { threshold: 50 },
            human_feedback: false,
            enable_documentation: true,
            llm_sleep_scale: 0.0,
            shards: 0,
        }
    }
}

/// Everything an agent needs to act: model, retrieval, storage, sandbox,
/// provenance, configuration.
///
/// The context is `Send + Sync` (asserted below): sessions hand out
/// `Arc<AgentContext>` and the serving layer runs each one on a worker
/// thread. The manifest is `Arc`-shared across all concurrent runs of a
/// session — the ensemble metadata is opened once, not per run.
pub struct AgentContext {
    pub llm: SimulatedLlm,
    pub retriever: Retriever,
    pub manifest: Arc<Manifest>,
    pub db: SessionDb,
    pub sandbox: SandboxServer,
    pub prov: ProvenanceStore,
    pub config: RunConfig,
    /// The run's observability context: one trace tree + one metrics
    /// registry shared by the model, the database, the sandbox, and the
    /// workflow nodes.
    pub obs: infera_obs::Obs,
    /// Cooperative cancellation: the supervisor checks this between plan
    /// steps. Unarmed by default.
    pub cancel: CancelToken,
    /// Shared decoded-batch cache (serving layer); `None` means every
    /// load decodes from the ensemble files.
    pub shared_cache: Option<Arc<SharedEnsembleCache>>,
}

/// `AgentContext` must stay shareable across worker threads — the whole
/// serving layer rests on this bound.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AgentContext>();
};

impl AgentContext {
    /// Assemble a context for one run.
    ///
    /// `session_dir` receives the run's database and provenance store.
    /// The retriever indexes the ensemble's metadata dictionaries; the
    /// sandbox is loaded with the domain tools.
    pub fn new(
        manifest: Arc<Manifest>,
        session_dir: &Path,
        seed: u64,
        profile: BehaviorProfile,
        config: RunConfig,
    ) -> AgentResult<AgentContext> {
        AgentContext::new_with_obs(
            manifest,
            session_dir,
            seed,
            profile,
            config,
            infera_obs::Obs::new(),
        )
    }

    /// [`AgentContext::new`] with a caller-provided observability
    /// context. The serve scheduler uses this to hand each job an `Obs`
    /// it keeps a handle on — so the job's trace and metrics stay
    /// reachable even when the run fails and produces no `RunReport`,
    /// and the tracer can be bus-attached before the run starts.
    pub fn new_with_obs(
        manifest: Arc<Manifest>,
        session_dir: &Path,
        seed: u64,
        profile: BehaviorProfile,
        config: RunConfig,
        obs: infera_obs::Obs,
    ) -> AgentResult<AgentContext> {
        let meter = TokenMeter::new();
        // §4.2.2: interactive review suppresses approach-level error modes
        // at the profile level, so every agent inherits the gate.
        let profile = if config.human_feedback {
            profile.with_human_supervision()
        } else {
            profile
        };
        let llm = SimulatedLlm::new(seed, profile, meter)
            .with_tracer(obs.tracer.clone())
            .with_latency_sleep(config.llm_sleep_scale);
        let db = SessionDb::create(
            &session_dir.join("db"),
            config.shards,
            manifest.n_sims,
            manifest.fingerprint(),
            obs.clone(),
        )
        .map_err(|e| AgentError::Fatal(e.to_string()))?;
        let prov = ProvenanceStore::create(&session_dir.join("provenance"))
            .map_err(|e| AgentError::Fatal(e.to_string()))?;

        // Index the column + structure dictionaries.
        let mut docs: Vec<Doc> = infera_hacc::column_dictionary()
            .into_iter()
            .map(|c| Doc::new(&c.column, &c.entity, &c.description, c.important))
            .collect();
        for (i, s) in infera_hacc::structure_dictionary(&manifest)
            .into_iter()
            .enumerate()
        {
            docs.push(Doc::new(
                &format!("structure_{i}"),
                "structure",
                &format!("{}: {}", s.topic, s.description),
                false,
            ));
        }
        let retriever = Retriever::new(docs);

        let mut tools = ToolRegistry::new();
        infera_sandbox::domain::register_domain_tools(&mut tools);
        let sandbox = SandboxServer::new(tools).with_obs(obs.clone());

        Ok(AgentContext {
            llm,
            retriever,
            manifest,
            db,
            sandbox,
            prov,
            config,
            obs,
            cancel: CancelToken::new(),
            shared_cache: None,
        })
    }

    /// Semantic level shortcut used by the error model.
    pub fn semantic(&self, state: &crate::state::RunState) -> SemanticLevel {
        state.semantic
    }

    /// Build a specialist prompt respecting the context policy: the
    /// agent's system preamble + task + retrieved context (+ full history
    /// only under `FullHistory`).
    pub fn build_prompt(
        &self,
        agent: &str,
        state: &crate::state::RunState,
        task: &str,
        retrieved: &[Doc],
    ) -> String {
        let mut prompt = String::new();
        prompt.push_str(crate::prompts::preamble(agent));
        prompt.push_str("\n\n## Question\n");
        prompt.push_str(&state.question);
        prompt.push_str("\n\n## Delegated task\n");
        prompt.push_str(task);
        prompt.push_str("\n\n## Plan\n");
        prompt.push_str(&state.plan.to_text());
        if !retrieved.is_empty() {
            prompt.push_str("\n## Retrieved data context\n");
            for d in retrieved {
                prompt.push_str(&format!("- {} ({}): {}\n", d.key, d.entity, d.text));
            }
        }
        // Working-frame previews (`df.head()` style, the way agent
        // frameworks ground generation in actual data), in sorted order
        // for deterministic token accounting.
        if !state.frames.is_empty() {
            prompt.push_str("\n## Working dataframes\n");
            let mut names: Vec<&String> = state.frames.keys().collect();
            names.sort();
            for name in names.into_iter().take(8) {
                let frame = &state.frames[name];
                prompt.push_str(&format!(
                    "### {name} ({} rows x {} cols)\n{}\n",
                    frame.n_rows(),
                    frame.n_cols(),
                    frame.to_display(4)
                ));
            }
        }
        // Registered custom tools (shipped with every call, as LangChain
        // ships tool schemas).
        prompt.push_str("\n## Available custom tools\n");
        prompt.push_str(&self.sandbox.tools().catalog());
        prompt.push('\n');
        if self.config.context_policy == ContextPolicy::FullHistory {
            prompt.push_str("\n## Conversation history\n");
            for h in &state.history {
                prompt.push_str(h);
                prompt.push('\n');
            }
        }
        prompt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Plan, RunState};
    use infera_hacc::EnsembleSpec;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("infera_ctx_tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn manifest(name: &str) -> Arc<Manifest> {
        let root = tmp(&format!("{name}_ens"));
        Arc::new(infera_hacc::generate(&EnsembleSpec::tiny(5), &root).unwrap())
    }

    #[test]
    fn context_builds_with_all_substrates() {
        let m = manifest("builds");
        let dir = tmp("builds_session");
        let ctx = AgentContext::new(
            m,
            &dir,
            42,
            BehaviorProfile::default(),
            RunConfig::default(),
        )
        .unwrap();
        assert!(ctx.retriever.len() > 40, "retriever indexes all columns");
        assert!(ctx.sandbox.tools().names().contains(&"track_halo".to_string()));
        assert_eq!(ctx.db.list_tables().len(), 0);
    }

    #[test]
    fn prompt_respects_context_policy() {
        let m = manifest("policy");
        let dir = tmp("policy_session");
        let mut config = RunConfig::default();
        let mut state = RunState::new("find halos", SemanticLevel::Easy, Plan::default());
        state.history.push("supervisor: delegated step 1".into());

        config.context_policy = ContextPolicy::LimitedContext;
        let ctx = AgentContext::new(m.clone(), &dir, 1, BehaviorProfile::default(), config)
            .unwrap();
        let p = ctx.build_prompt("data_loading", &state, "load halo data", &[]);
        assert!(p.contains("Delegated task"));
        assert!(!p.contains("Conversation history"));

        let dir2 = tmp("policy_session2");
        let mut config2 = RunConfig::default();
        config2.context_policy = ContextPolicy::FullHistory;
        let ctx2 =
            AgentContext::new(m, &dir2, 1, BehaviorProfile::default(), config2).unwrap();
        let p2 = ctx2.build_prompt("data_loading", &state, "load halo data", &[]);
        assert!(p2.contains("Conversation history"));
        assert!(p2.len() > p.len());
    }

    #[test]
    fn cancel_token_checks() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        t.arm_deadline(std::time::Duration::from_secs(3600));
        assert!(t.check().is_ok());
        t.arm_deadline(std::time::Duration::from_millis(0));
        assert!(matches!(
            t.check(),
            Err(AgentError::Canceled(CancelKind::DeadlineExceeded))
        ));
        let t2 = CancelToken::new();
        let shared = t2.clone();
        shared.cancel();
        assert!(matches!(
            t2.check(),
            Err(AgentError::Canceled(CancelKind::Canceled))
        ));
    }

    #[test]
    fn default_config_matches_paper() {
        let c = RunConfig::default();
        assert_eq!(c.max_revisions, 5);
        assert_eq!(c.qa_mode, QaMode::Scored { threshold: 50 });
        assert!(!c.human_feedback);
    }
}
