//! A typed state-graph runtime — the LangGraph substitute.
//!
//! InferA's original implementation routes its agents with LangGraph:
//! named nodes mutate a shared state, and a router decides the next node
//! after each step. This module provides the same model: nodes are
//! closures over a state type `S`, edges are either static or computed by
//! a router closure, and `run` drives the graph from an entry point until
//! a node routes to [`END`] (with a step budget against livelock).

use crate::error::{AgentError, AgentResult};
use std::collections::HashMap;

/// Sentinel node name that terminates the run.
pub const END: &str = "__end__";

/// What a node handler tells the runtime.
pub enum NodeOutcome {
    /// Follow the node's configured edge (static or router).
    Continue,
    /// Jump to a specific node, overriding the configured edge.
    Goto(String),
    /// Terminate the graph run.
    End,
}

type Handler<S> = Box<dyn Fn(&mut S) -> AgentResult<NodeOutcome>>;
type Router<S> = Box<dyn Fn(&S) -> String>;

enum Edge<S> {
    Static(String),
    Conditional(Router<S>),
    None,
}

/// A state graph over state type `S`.
pub struct StateGraph<S> {
    nodes: HashMap<String, Handler<S>>,
    edges: HashMap<String, Edge<S>>,
    entry: Option<String>,
    /// Maximum node executions per run (default 256).
    pub max_steps: usize,
}

impl<S> Default for StateGraph<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> StateGraph<S> {
    pub fn new() -> StateGraph<S> {
        StateGraph {
            nodes: HashMap::new(),
            edges: HashMap::new(),
            entry: None,
            max_steps: 256,
        }
    }

    /// Add a node. Replaces any node of the same name.
    pub fn add_node(
        &mut self,
        name: &str,
        handler: impl Fn(&mut S) -> AgentResult<NodeOutcome> + 'static,
    ) -> &mut Self {
        self.nodes.insert(name.to_string(), Box::new(handler));
        self.edges.entry(name.to_string()).or_insert(Edge::None);
        self
    }

    /// Static edge `from -> to`.
    pub fn add_edge(&mut self, from: &str, to: &str) -> &mut Self {
        self.edges.insert(from.to_string(), Edge::Static(to.to_string()));
        self
    }

    /// Conditional edge: the router inspects the state and names the next
    /// node (or [`END`]).
    pub fn add_conditional_edge(
        &mut self,
        from: &str,
        router: impl Fn(&S) -> String + 'static,
    ) -> &mut Self {
        self.edges
            .insert(from.to_string(), Edge::Conditional(Box::new(router)));
        self
    }

    /// Set the entry node.
    pub fn set_entry(&mut self, name: &str) -> &mut Self {
        self.entry = Some(name.to_string());
        self
    }

    /// Names of all registered nodes, sorted.
    pub fn node_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.nodes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Run the graph to completion. Returns the visit trace.
    pub fn run(&self, state: &mut S) -> AgentResult<Vec<String>> {
        let mut current = self
            .entry
            .clone()
            .ok_or_else(|| AgentError::Fatal("graph has no entry point".into()))?;
        let mut trace = Vec::new();
        for _ in 0..self.max_steps {
            if current == END {
                return Ok(trace);
            }
            let handler = self.nodes.get(&current).ok_or_else(|| {
                AgentError::Fatal(format!("graph routed to unknown node '{current}'"))
            })?;
            trace.push(current.clone());
            let outcome = handler(state)?;
            current = match outcome {
                NodeOutcome::End => END.to_string(),
                NodeOutcome::Goto(next) => next,
                NodeOutcome::Continue => match self.edges.get(&current) {
                    Some(Edge::Static(next)) => next.clone(),
                    Some(Edge::Conditional(router)) => router(state),
                    Some(Edge::None) | None => {
                        return Err(AgentError::Fatal(format!(
                            "node '{current}' has no outgoing edge"
                        )))
                    }
                },
            };
        }
        Err(AgentError::Fatal(format!(
            "graph exceeded {} steps (livelock?)",
            self.max_steps
        )))
    }

    /// Export the topology as Graphviz DOT (Fig. 3 regeneration).
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = format!("digraph \"{title}\" {{\n  rankdir=LR;\n");
        for name in self.node_names() {
            out.push_str(&format!("  \"{name}\" [shape=box];\n"));
        }
        for (from, edge) in &self.edges {
            match edge {
                Edge::Static(to) => out.push_str(&format!("  \"{from}\" -> \"{to}\";\n")),
                Edge::Conditional(_) => {
                    out.push_str(&format!("  \"{from}\" -> \"{from}\" [label=\"router\", style=dashed];\n"));
                }
                Edge::None => {}
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        value: i32,
        log: Vec<&'static str>,
    }

    #[test]
    fn linear_graph_runs_to_end() {
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("a", |s: &mut Counter| {
            s.value += 1;
            s.log.push("a");
            Ok(NodeOutcome::Continue)
        });
        g.add_node("b", |s: &mut Counter| {
            s.value *= 10;
            s.log.push("b");
            Ok(NodeOutcome::End)
        });
        g.add_edge("a", "b");
        g.set_entry("a");
        let mut state = Counter::default();
        let trace = g.run(&mut state).unwrap();
        assert_eq!(trace, vec!["a", "b"]);
        assert_eq!(state.value, 10);
    }

    #[test]
    fn conditional_loop_until_condition() {
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("inc", |s: &mut Counter| {
            s.value += 1;
            Ok(NodeOutcome::Continue)
        });
        g.add_conditional_edge("inc", |s: &Counter| {
            if s.value >= 5 {
                END.to_string()
            } else {
                "inc".to_string()
            }
        });
        g.set_entry("inc");
        let mut state = Counter::default();
        let trace = g.run(&mut state).unwrap();
        assert_eq!(state.value, 5);
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn goto_overrides_edges() {
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("a", |_s: &mut Counter| Ok(NodeOutcome::Goto("c".into())));
        g.add_node("b", |s: &mut Counter| {
            s.value = -1;
            Ok(NodeOutcome::End)
        });
        g.add_node("c", |s: &mut Counter| {
            s.value = 42;
            Ok(NodeOutcome::End)
        });
        g.add_edge("a", "b");
        g.set_entry("a");
        let mut state = Counter::default();
        g.run(&mut state).unwrap();
        assert_eq!(state.value, 42);
    }

    #[test]
    fn livelock_guard_trips() {
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("loop", |_s: &mut Counter| Ok(NodeOutcome::Continue));
        g.add_edge("loop", "loop");
        g.set_entry("loop");
        g.max_steps = 16;
        let err = g.run(&mut Counter::default()).unwrap_err();
        assert!(matches!(err, AgentError::Fatal(_)));
    }

    #[test]
    fn missing_entry_and_unknown_node_error() {
        let g: StateGraph<Counter> = StateGraph::new();
        assert!(matches!(
            g.run(&mut Counter::default()).unwrap_err(),
            AgentError::Fatal(_)
        ));
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("a", |_s| Ok(NodeOutcome::Goto("ghost".into())));
        g.set_entry("a");
        assert!(g.run(&mut Counter::default()).is_err());
    }

    #[test]
    fn node_error_propagates() {
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("bad", |_s: &mut Counter| {
            Err(AgentError::Recoverable("boom".into()))
        });
        g.set_entry("bad");
        assert!(matches!(
            g.run(&mut Counter::default()).unwrap_err(),
            AgentError::Recoverable(_)
        ));
    }

    #[test]
    fn dot_export_lists_nodes() {
        let mut g: StateGraph<Counter> = StateGraph::new();
        g.add_node("supervisor", |_s| Ok(NodeOutcome::End));
        g.add_node("sql", |_s| Ok(NodeOutcome::End));
        g.add_edge("supervisor", "sql");
        let dot = g.to_dot("infera");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"supervisor\" -> \"sql\""));
    }
}
