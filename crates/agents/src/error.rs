//! Unified agent-layer error type.

use std::fmt;

/// Result alias.
pub type AgentResult<T> = Result<T, AgentError>;

/// Why a run was interrupted before finishing on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// An explicit `CancelToken::cancel` call (job aborted by the caller).
    Canceled,
    /// The run's deadline elapsed (per-job timeout in the serving layer).
    DeadlineExceeded,
}

/// Errors surfaced by agents and the workflow driver.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentError {
    /// A substrate failed in a way the redo loop can address (sandbox /
    /// SQL errors with actionable messages).
    Recoverable(String),
    /// A step exhausted its revision budget (§4.1.1: "maximum threshold
    /// of five revision attempts").
    RevisionBudgetExhausted { step: usize, attempts: u32 },
    /// The run was interrupted between steps: canceled by its caller or
    /// past its deadline (checked by the supervisor before each step).
    Canceled(CancelKind),
    /// An infrastructure component (storage, network) failed underneath
    /// the run. Unlike [`AgentError::Recoverable`], the redo loop must
    /// NOT absorb this: redos consume RNG and change the run's digest,
    /// while a scheduler-level retry replays the whole run bit-identically.
    /// `transient` distinguishes retry-worthy faults (I/O hiccups) from
    /// permanent ones (quarantined corrupt chunks).
    Infra { message: String, transient: bool },
    /// Infrastructure failure (I/O, provenance, malformed plan).
    Fatal(String),
}

impl fmt::Display for AgentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentError::Recoverable(m) => write!(f, "recoverable agent error: {m}"),
            AgentError::RevisionBudgetExhausted { step, attempts } => write!(
                f,
                "step {step} failed after {attempts} revision attempts"
            ),
            AgentError::Canceled(CancelKind::Canceled) => write!(f, "run canceled by caller"),
            AgentError::Canceled(CancelKind::DeadlineExceeded) => {
                write!(f, "run exceeded its deadline")
            }
            AgentError::Infra { message, transient } => {
                let class = if *transient { "transient" } else { "permanent" };
                write!(f, "{class} infrastructure failure: {message}")
            }
            AgentError::Fatal(m) => write!(f, "fatal agent error: {m}"),
        }
    }
}

impl std::error::Error for AgentError {}

impl From<infera_columnar::DbError> for AgentError {
    fn from(e: infera_columnar::DbError) -> Self {
        match &e {
            // SQL-level problems (bad column, parse error) are what the
            // error-guided redo loop exists to fix.
            // Infrastructure failures are not: a retry of the whole run
            // is the right recovery, so they must escape the redo loop.
            infera_columnar::DbError::Io(_) => AgentError::Infra {
                message: e.to_string(),
                transient: true,
            },
            infera_columnar::DbError::CorruptChunk { .. }
            | infera_columnar::DbError::Corrupt(_) => AgentError::Infra {
                message: e.to_string(),
                transient: false,
            },
            _ => AgentError::Recoverable(e.to_string()),
        }
    }
}

impl From<infera_sandbox::SandboxError> for AgentError {
    fn from(e: infera_sandbox::SandboxError) -> Self {
        AgentError::Recoverable(e.to_string())
    }
}

impl From<infera_hacc::HaccError> for AgentError {
    fn from(e: infera_hacc::HaccError) -> Self {
        AgentError::Fatal(e.to_string())
    }
}

impl From<infera_provenance::ProvenanceError> for AgentError {
    fn from(e: infera_provenance::ProvenanceError) -> Self {
        AgentError::Fatal(e.to_string())
    }
}

impl From<infera_frame::FrameError> for AgentError {
    fn from(e: infera_frame::FrameError) -> Self {
        AgentError::Recoverable(e.to_string())
    }
}
