//! The Python-programming agent.
//!
//! Generates analysis code (in this reproduction, the sandbox DSL that
//! stands in for generated pandas code) from the plan's typed computation
//! templates, executes it in the sandboxed gateway, and drives the
//! error-guided revision loop. Two of the paper's failure modes inject
//! here: column-name corruption (via the shared corruption channel) and
//! wrong-custom-tool selection — "asking the LLM to track the evolution
//! of characteristics ... and the LLM incorrectly uses the particle
//! coordinate tracking tool, resulting in valid but unsatisfactory
//! output" (§4.1.2).

use crate::context::AgentContext;
use crate::error::{AgentError, AgentResult};
use crate::qa::{run_generation_step, GenOutcome};
use crate::state::{ComputeKind, RunState};
use infera_provenance::ArtifactKind;
use infera_sandbox::ExecutionRequest;

/// Synthesize the DSL program implementing `kind` on frame `input`,
/// binding the result to `output`. `wrong_tool` selects the
/// plausible-but-wrong variant for tool-selection-sensitive templates.
pub fn synthesize_program(
    kind: &ComputeKind,
    input: &str,
    output: &str,
    wrong_tool: bool,
    bad_analysis: bool,
) -> String {
    match kind {
        ComputeKind::GroupAgg { by, aggs } => {
            let keys = by.join(", ");
            let agg_calls: Vec<String> = aggs
                .iter()
                .map(|(agg, col)| {
                    // The bad-analysis variant computes a different
                    // statistic but keeps the expected alias — valid code,
                    // unsatisfactory analysis.
                    let actual = if bad_analysis {
                        match agg.as_str() {
                            "mean" => "sum",
                            "median" => "mean",
                            _ => "mean",
                        }
                    } else {
                        agg.as_str()
                    };
                    format!("{actual}({col}, alias={agg}_{col})")
                })
                .collect();
            format!(
                "{output} = group_agg({input}, by=[{keys}], {})\nreturn {output}\n",
                agg_calls.join(", ")
            )
        }
        ComputeKind::AggregateAll { aggs } => {
            let agg_calls: Vec<String> = aggs
                .iter()
                .map(|(agg, col)| format!("{agg}({col})"))
                .collect();
            format!(
                "{output} = agg({input}, {})\nreturn {output}\n",
                agg_calls.join(", ")
            )
        }
        ComputeKind::TopN { column, n, ascending } => {
            if *ascending {
                format!(
                    "sorted_rows = sort({input}, {column})\n{output} = head(sorted_rows, {n})\nreturn {output}\n"
                )
            } else {
                format!("{output} = top_n({input}, {column}, {n})\nreturn {output}\n")
            }
        }
        ComputeKind::WithColumn { name, expr } => {
            format!("{output} = with_column({input}, {name}, {expr})\nreturn {output}\n")
        }
        ComputeKind::TrackTop { metric, n, anchor_step } => {
            if wrong_tool {
                // The coordinate-tracking tool instead of scalar history.
                format!(
                    "anchor = filter({input}, step == {anchor_step})\n\
                     top = top_n(anchor, {metric}, 1)\n\
                     target = head(top, 1)\n\
                     {output} = track_halo({input}, target)\n\
                     return {output}\n"
                )
            } else {
                format!(
                    "anchor = filter({input}, step == {anchor_step})\n\
                     top = top_n(anchor, {metric}, {n})\n\
                     tags = select(top, [fof_halo_tag])\n\
                     {output} = join({input}, tags, on=fof_halo_tag)\n\
                     return {output}\n"
                )
            }
        }
        ComputeKind::LinFit { x, y, log_x, log_y, by } => {
            let lx = if *log_x { format!("log10({x})") } else { x.clone() };
            let ly = if *log_y { format!("log10({y})") } else { y.clone() };
            let fit_call = match by {
                Some(g) => format!("linfit_by({output}_pts, x=fit_x, y=fit_y, by={g})"),
                None => format!("linfit({output}_pts, x=fit_x, y=fit_y)"),
            };
            format!(
                "tmp_x = with_column({input}, fit_x, {lx})\n\
                 {output}_pts = with_column(tmp_x, fit_y, {ly})\n\
                 {output} = {fit_call}\n\
                 return {output}\n"
            )
        }
        ComputeKind::FitResiduals { x, y, log_x, n_lowest } => {
            let lx = if *log_x { format!("log10({x})") } else { x.clone() };
            format!(
                "tmp_x = with_column({input}, fit_x, {lx})\n\
                 {output}_fitted = fit_residuals(tmp_x, x=fit_x, y={y})\n\
                 deficient = sort({output}_fitted, residual)\n\
                 {output} = head(deficient, {n_lowest})\n\
                 return {output}\n"
            )
        }
        ComputeKind::JoinTopGalaxies { galaxies, n_halos, per_halo } => {
            format!(
                "top_h = top_n({input}, fof_halo_count, {n_halos})\n\
                 keys = select(top_h, [fof_halo_tag])\n\
                 assoc = join({galaxies}, keys, on=fof_halo_tag)\n\
                 {output} = top_n_by(assoc, gal_stellar_mass, {per_halo}, by=fof_halo_tag)\n\
                 return {output}\n"
            )
        }
        ComputeKind::CompareGroups { group, metrics } => {
            let aggs: Vec<String> = metrics
                .iter()
                .flat_map(|m| vec![format!("mean({m})"), format!("std({m})")])
                .collect();
            format!(
                "{output} = group_agg({input}, by=[{group}], {})\nreturn {output}\n",
                aggs.join(", ")
            )
        }
        ComputeKind::AlignmentTopBoth { galaxies, n } => {
            format!(
                "top_h = top_n({input}, fof_halo_mass, {n})\n\
                 top_g = top_n({galaxies}, gal_mass, {n})\n\
                 hsel = select(top_h, [fof_halo_tag, fof_halo_center_x, fof_halo_center_y, fof_halo_center_z, fof_halo_mass])\n\
                 j = join(top_g, hsel, on=fof_halo_tag)\n\
                 j1 = with_column(j, dx, gal_center_x - fof_halo_center_x)\n\
                 j2 = with_column(j1, dy, gal_center_y - fof_halo_center_y)\n\
                 j3 = with_column(j2, dz, gal_center_z - fof_halo_center_z)\n\
                 {output} = with_column(j3, offset_mpc, sqrt(dx*dx + dy*dy + dz*dz))\n\
                 return {output}\n"
            )
        }
        ComputeKind::SmhmPrepare { galaxies } => {
            format!(
                "centrals = filter({galaxies}, gal_is_central == 1)\n\
                 j = join(centrals, {input}, on=fof_halo_tag)\n\
                 p1 = with_column(j, lmh, log10(fof_halo_mass))\n\
                 {output} = with_column(p1, lms, log10(gal_stellar_mass))\n\
                 return {output}\n"
            )
        }
        ComputeKind::SmhmFit => {
            format!(
                "fits = linfit_by({input}, x=lmh, y=lms, by=sim)\n\
                 withp = join(fits, params, on=sim)\n\
                 ratios = with_column({input}, eff_ratio, lms - lmh)\n\
                 eff = group_agg(ratios, by=[sim], mean(eff_ratio))\n\
                 effj = join(withp, eff, on=sim)\n\
                 {output} = with_column(effj, efficiency, pow(10.0, mean_eff_ratio))\n\
                 return {output}\n"
            )
        }
        ComputeKind::Interestingness { columns, n } => {
            let cols = columns.join(", ");
            format!(
                "s1 = with_column({input}, speed, sqrt(fof_halo_mean_vx*fof_halo_mean_vx + fof_halo_mean_vy*fof_halo_mean_vy + fof_halo_mean_vz*fof_halo_mean_vz))\n\
                 s2 = with_column(s1, kinetic_energy, 0.5 * fof_halo_mass * speed * speed)\n\
                 {output} = interestingness_score(s2, [{cols}], {n})\n\
                 return {output}\n"
            )
        }
        ComputeKind::Umap { columns } => {
            let cols = columns.join(", ");
            format!("{output} = umap_embed({input}, [{cols}])\nreturn {output}\n")
        }
        ComputeKind::TrackHalo { tag_rank, anchor_step } => {
            if wrong_tool {
                // Generic join-based tracking of several halos instead of
                // the requested single-target history.
                format!(
                    "anchor = filter({input}, step == {anchor_step})\n\
                     top = top_n(anchor, fof_halo_mass, 5)\n\
                     tags = select(top, [fof_halo_tag])\n\
                     {output} = join({input}, tags, on=fof_halo_tag)\n\
                     return {output}\n"
                )
            } else {
                format!(
                    "anchor = filter({input}, step == {anchor_step})\n\
                     ranked = top_n(anchor, fof_halo_mass, {tag_rank})\n\
                     target = tail(ranked, 1)\n\
                     {output} = track_halo({input}, target)\n\
                     return {output}\n"
                )
            }
        }
        ComputeKind::RadiusSelect { rank, radius, box_size } => {
            format!(
                "ranked = top_n({input}, fof_halo_mass, {rank})\n\
                 target = tail(ranked, 1)\n\
                 {output} = radius_query({input}, target, {radius}, box_size={box_size})\n\
                 return {output}\n"
            )
        }
        ComputeKind::PeakAndDecline { x, column } => {
            format!(
                "{output} = peak_decline({input}, x={x}, y={column})\nreturn {output}\n"
            )
        }
        ComputeKind::ParamCorrelation { strategy } => {
            let base = format!(
                "top = top_n_by({input}, fof_halo_count, 100, by=sim)\n"
            );
            let metric = match strategy % 4 {
                0 | 1 => (
                    "m = group_agg(top, by=[sim], mean(fof_halo_count))\n",
                    "mean_fof_halo_count",
                ),
                2 => (
                    "m = group_agg(top, by=[sim], median(fof_halo_count))\n",
                    "median_fof_halo_count",
                ),
                _ => (
                    "m = group_agg(top, by=[sim], mean(fof_halo_count))\n",
                    "mean_fof_halo_count",
                ),
            };
            let mut program = base;
            program.push_str(metric.0);
            program.push_str("j = join(m, params, on=sim)\n");
            program.push_str(&format!(
                "jm = with_column(j, metric, {})\n",
                metric.1
            ));
            match strategy % 4 {
                1 => {
                    program.push_str("fit_fsn = linfit(jm, x=f_sn, y=metric)\n");
                    program.push_str("fit_vsn = linfit(jm, x=log_v_sn, y=metric)\n");
                }
                3 => {
                    program.push_str(
                        "jc = join(top, params, on=sim)\ncm = corr_matrix(jc, [fof_halo_count, fof_halo_mass, f_sn, log_v_sn])\n",
                    );
                }
                _ => {}
            }
            program.push_str(&format!("{output} = jm\nreturn {output}\n"));
            program
        }
        ComputeKind::Describe => {
            format!("{output} = describe({input})\nreturn {output}\n")
        }
    }
}

/// Execute one compute step: synthesize, corrupt, run in the sandbox,
/// revise; on success merge the sandbox environment back into the working
/// frames and record provenance.
pub fn run_compute(
    ctx: &AgentContext,
    state: &mut RunState,
    kind: &ComputeKind,
    input: &str,
    output: &str,
) -> AgentResult<GenOutcome> {
    let level = state.semantic;
    // Tool-selection and approach errors are decided once per step.
    let tool_sensitive = matches!(
        kind,
        ComputeKind::TrackTop { .. } | ComputeKind::TrackHalo { .. }
    );
    let wrong_tool = tool_sensitive && ctx.llm.wrong_tool(level);
    // An inappropriate analytical approach can be chosen on any compute
    // step (decided at most once per run); only the GroupAgg template
    // materializes a concrete wrong statistic, the rest carry the flag.
    let bad_analysis = !state.flags.bad_analysis && ctx.llm.bad_analysis_choice(level);

    let task = format!(
        "write analysis code: {} on frame '{input}' into '{output}'",
        kind.label()
    );
    let inputs = state.frames.clone();
    let mut produced_env: Option<std::collections::HashMap<String, infera_frame::DataFrame>> =
        None;
    let mut produced_result: Option<infera_frame::DataFrame> = None;
    let mut executed_program = String::new();

    let sandbox = &ctx.sandbox;
    let outcome = run_generation_step(
        ctx,
        state,
        "python",
        &task,
        &|_attempt| synthesize_program(kind, input, output, wrong_tool, bad_analysis),
        &mut |program| {
            match sandbox.execute(ExecutionRequest {
                program: program.to_string(),
                inputs: inputs.clone(),
            }) {
                Ok(report) => {
                    let summary = format!(
                        "{} rows x {} cols in {} steps",
                        report.result.n_rows(),
                        report.result.n_cols(),
                        report.steps.len()
                    );
                    produced_result = Some(report.result);
                    produced_env = Some(report.env);
                    executed_program = program.to_string();
                    Ok(summary)
                }
                Err(e) => Err(e.to_string()),
            }
        },
        1.0,
        if wrong_tool || bad_analysis { 0.62 } else { 0.92 },
    );

    if outcome.success {
        if wrong_tool {
            state.flags.wrong_tool = true;
        }
        if bad_analysis {
            state.flags.bad_analysis = true;
        }
        let (Some(env), Some(result)) = (produced_env, produced_result) else {
            return Err(AgentError::Fatal(
                "compute step reported success without producing a result".into(),
            ));
        };
        // Merge every named frame back (checkpointability + later steps
        // referencing `<out>_pts` side frames).
        for (name, frame) in env {
            state.frames.insert(name, frame);
        }
        let prog_art = ctx.prov.put_text(ArtifactKind::Program, &executed_program)?;
        let result_art = ctx.prov.put_frame(&result)?;
        ctx.prov.log_event(
            "python",
            "execute_program",
            vec![prog_art],
            vec![result_art.clone()],
            &outcome.message,
            0,
            0,
        )?;
        state.data_outputs.push(result_art);
        state.frames.insert(output.to_string(), result);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RunConfig;
    use crate::state::Plan;
    use infera_frame::{Column, DataFrame, Value};
    use infera_hacc::EnsembleSpec;
    use infera_llm::{BehaviorProfile, SemanticLevel};
    use std::path::PathBuf;

    fn ctx(name: &str, profile: BehaviorProfile) -> AgentContext {
        let base: PathBuf = std::env::temp_dir().join("infera_py_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(17), &base.join("ens")).unwrap();
        AgentContext::new(
            std::sync::Arc::new(manifest),
            &base.join("session"),
            5,
            profile,
            RunConfig::default(),
        )
        .unwrap()
    }

    fn state() -> RunState {
        let mut s = RunState::new("q", SemanticLevel::Easy, Plan::default());
        s.frames.insert(
            "halos".to_string(),
            DataFrame::from_columns([
                ("fof_halo_tag", Column::from(vec![1i64, 2, 3, 4])),
                ("step", Column::from(vec![100i64, 100, 624, 624])),
                ("sim", Column::from(vec![0i64, 0, 0, 0])),
                (
                    "fof_halo_mass",
                    Column::from(vec![1e12, 2e13, 3e12, 5e13]),
                ),
                ("fof_halo_count", Column::from(vec![769i64, 15384, 2307, 38461])),
            ])
            .unwrap(),
        );
        s
    }

    #[test]
    fn group_agg_template_runs() {
        let c = ctx("groupagg", BehaviorProfile::perfect());
        let mut s = state();
        let kind = ComputeKind::GroupAgg {
            by: vec!["step".into()],
            aggs: vec![("mean".into(), "fof_halo_count".into())],
        };
        let out = run_compute(&c, &mut s, &kind, "halos", "r1").unwrap();
        assert!(out.success, "{out:?}");
        let r1 = &s.frames["r1"];
        assert_eq!(r1.n_rows(), 2);
        assert!(r1.has_column("mean_fof_halo_count"));
    }

    #[test]
    fn bad_analysis_keeps_alias_but_changes_statistic() {
        let kind = ComputeKind::GroupAgg {
            by: vec!["step".into()],
            aggs: vec![("mean".into(), "fof_halo_count".into())],
        };
        let bad = synthesize_program(&kind, "halos", "r1", false, true);
        assert!(bad.contains("sum(fof_halo_count, alias=mean_fof_halo_count)"));
        let good = synthesize_program(&kind, "halos", "r1", false, false);
        assert!(good.contains("mean(fof_halo_count, alias=mean_fof_halo_count)"));
    }

    #[test]
    fn track_top_template_and_wrong_tool_variant() {
        let c = ctx("track", BehaviorProfile::perfect());
        let mut s = state();
        let kind = ComputeKind::TrackTop {
            metric: "fof_halo_mass".into(),
            n: 2,
            anchor_step: 624,
        };
        let out = run_compute(&c, &mut s, &kind, "halos", "r1").unwrap();
        assert!(out.success, "{out:?}");
        // 2 anchor halos, each appearing at most twice (2 steps).
        let r1 = &s.frames["r1"];
        assert!(r1.n_rows() >= 2);
        assert!(!s.flags.wrong_tool);

        // Wrong-tool variant uses track_halo and still executes.
        let wrong = synthesize_program(&kind, "halos", "r1", true, false);
        assert!(wrong.contains("track_halo"));
    }

    #[test]
    fn linfit_template_leaves_points_frame() {
        let c = ctx("linfit", BehaviorProfile::perfect());
        let mut s = state();
        let kind = ComputeKind::LinFit {
            x: "fof_halo_mass".into(),
            y: "fof_halo_count".into(),
            log_x: true,
            log_y: true,
            by: None,
        };
        let out = run_compute(&c, &mut s, &kind, "halos", "r2").unwrap();
        assert!(out.success, "{out:?}");
        assert!(s.frames.contains_key("r2_pts"));
        let slope = s.frames["r2"].cell("slope", 0).unwrap().as_f64().unwrap();
        assert!((slope - 1.0).abs() < 0.01, "slope {slope}");
    }

    #[test]
    fn errors_exhaust_budget_and_do_not_pollute_frames() {
        let mut p = BehaviorProfile::perfect();
        p.column_error_rate = [10.0; 3];
        p.p_redo_fixes = 0.0;
        let c = ctx("exhaust", p);
        let mut s = state();
        let kind = ComputeKind::TopN {
            column: "fof_halo_mass".into(),
            n: 2,
            ascending: false,
        };
        let out = run_compute(&c, &mut s, &kind, "halos", "r1").unwrap();
        assert!(!out.success);
        assert!(!s.frames.contains_key("r1"));
        assert_eq!(out.redos, c.config.max_revisions);
    }

    #[test]
    fn param_correlation_strategies_all_execute() {
        for strategy in 0..4u8 {
            let c = ctx(&format!("param{strategy}"), BehaviorProfile::perfect());
            let mut s = state();
            // Multi-sim frame + params frame.
            let halos = DataFrame::from_columns([
                ("fof_halo_tag", Column::from(vec![1i64, 2, 3, 4])),
                ("sim", Column::from(vec![0i64, 0, 1, 1])),
                ("fof_halo_count", Column::from(vec![100i64, 200, 150, 250])),
                (
                    "fof_halo_mass",
                    Column::from(vec![1e12, 2e12, 1.5e12, 2.5e12]),
                ),
            ])
            .unwrap();
            s.frames.insert("halos".to_string(), halos);
            s.frames.insert(
                "params".to_string(),
                crate::data_loading::params_frame(&c, &[0, 1]).unwrap(),
            );
            let out = run_compute(
                &c,
                &mut s,
                &ComputeKind::ParamCorrelation { strategy },
                "halos",
                "r1",
            )
            .unwrap();
            assert!(out.success, "strategy {strategy}: {out:?}");
            let r1 = &s.frames["r1"];
            assert!(r1.has_column("metric"));
            assert!(r1.has_column("f_sn"));
            assert_eq!(r1.n_rows(), 2);
        }
    }

    #[test]
    fn peak_decline_template() {
        let c = ctx("peak", BehaviorProfile::perfect());
        let mut s = state();
        s.frames.insert(
            "r1".to_string(),
            DataFrame::from_columns([
                ("step", Column::from(vec![100.0, 200.0, 300.0, 400.0])),
                ("mean_gal_sfr", Column::from(vec![1.0, 5.0, 2.5, 1.2])),
            ])
            .unwrap(),
        );
        let out = run_compute(
            &c,
            &mut s,
            &ComputeKind::PeakAndDecline {
                x: "step".into(),
                column: "mean_gal_sfr".into(),
            },
            "r1",
            "r2",
        )
        .unwrap();
        assert!(out.success, "{out:?}");
        assert_eq!(s.frames["r2"].cell("peak_x", 0).unwrap(), Value::F64(200.0));
    }
}
