//! The documentation agent.
//!
//! "A documentation agent maintains comprehensive records of operations,
//! including AI-generated code and the successes and limitations
//! encountered by each agent throughout the workflow." (§3) The summary
//! is a workflow digest for human review; the paper notes it is useful
//! but not strictly necessary for provenance (§4.1.4) — which is why the
//! token-ablation bench can disable it.

use crate::context::AgentContext;
use crate::error::AgentResult;
use crate::state::RunState;
use infera_provenance::ArtifactKind;

/// Produce the final workflow summary, store it, and charge its tokens.
pub fn run_documentation(ctx: &AgentContext, state: &mut RunState) -> AgentResult<()> {
    let mut summary = String::new();
    summary.push_str(&format!("# InferA workflow summary\n\n## Question\n{}\n", state.question));
    summary.push_str("\n## Plan\n");
    summary.push_str(&state.plan.to_text());
    summary.push_str("\n## Step outcomes\n");
    for o in &state.outcomes {
        summary.push_str(&format!(
            "- step {} [{}]: {} after {} redo(s){}\n",
            o.step + 1,
            o.agent,
            if o.success { "completed" } else { "FAILED" },
            o.redos,
            if o.message.is_empty() {
                String::new()
            } else {
                format!(" — {}", o.message)
            }
        ));
    }
    if state.failed {
        summary.push_str("\n## Status\nRun terminated early after exhausting the revision budget.\n");
    } else {
        summary.push_str("\n## Status\nAll planned steps completed.\n");
    }
    summary.push_str(&format!(
        "\n## Resources\n- tokens so far: {}\n- visualizations: {}\n- data outputs: {}\n",
        ctx.llm.meter().total_tokens(),
        state.visualizations.len(),
        state.data_outputs.len()
    ));

    if ctx.config.enable_documentation {
        let prompt = ctx.build_prompt(
            "documentation",
            state,
            "summarize the workflow for human review",
            &[],
        );
        ctx.llm.charge("documentation", &prompt, &summary);
    }

    // Failed workflows get a postmortem: the supervisor and QA walk the
    // full history and every artifact to pin down what went wrong — extra
    // work that makes failed runs the most token-hungry (§4.1.4).
    if state.failed {
        let mut diagnosis = ctx.build_prompt(
            "supervisor",
            state,
            "diagnose why the workflow failed: identify the exhausted step, the persistent error, and what a human should fix",
            &[],
        );
        // Under FullHistory the prompt already carries the history; only
        // the limited policy needs it appended for the postmortem.
        if ctx.config.context_policy == crate::context::ContextPolicy::LimitedContext {
            diagnosis.push_str("\n## Full message history\n");
            for h in &state.history {
                diagnosis.push_str(h);
                diagnosis.push('\n');
            }
        }
        let failing = state
            .outcomes
            .iter()
            .find(|o| !o.success)
            .map(|o| o.message.clone())
            .unwrap_or_default();
        ctx.llm.charge(
            "supervisor",
            &diagnosis,
            &format!("failure analysis: {failing}"),
        );
        ctx.llm.charge(
            "qa",
            &diagnosis,
            "root-cause assessment and recommended human intervention",
        );
    }

    if ctx.config.enable_documentation {
        let art = ctx.prov.put_text(ArtifactKind::Text, &summary)?;
        ctx.prov.log_event(
            "documentation",
            "summarize",
            vec![],
            vec![art],
            "workflow summary recorded",
            0,
            0,
        )?;
    }
    state.summary = summary;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RunConfig;
    use crate::state::{Plan, StepOutcome};
    use infera_hacc::EnsembleSpec;
    use infera_llm::{BehaviorProfile, SemanticLevel};
    use std::path::PathBuf;

    #[test]
    fn documentation_summarizes_outcomes() {
        let base: PathBuf = std::env::temp_dir().join("infera_doc_tests/doc");
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(23), &base.join("ens")).unwrap();
        let ctx = AgentContext::new(
            std::sync::Arc::new(manifest),
            &base.join("session"),
            3,
            BehaviorProfile::perfect(),
            RunConfig::default(),
        )
        .unwrap();
        let mut state = RunState::new("the question", SemanticLevel::Easy, Plan::default());
        state.outcomes.push(StepOutcome {
            step: 0,
            agent: "sql".into(),
            redos: 2,
            success: true,
            message: "120 rows".into(),
        });
        state.failed = true;
        run_documentation(&ctx, &mut state).unwrap();
        assert!(state.summary.contains("the question"));
        assert!(state.summary.contains("2 redo(s)"));
        assert!(state.summary.contains("terminated early"));
        assert!(ctx.prov.events().iter().any(|e| e.action == "summarize"));
        assert!(ctx.llm.meter().total_tokens() > 0);
    }
}
