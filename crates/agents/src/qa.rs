//! Quality assurance: the error-guided revision loop (§3.2, §4.2.4).
//!
//! Every code-generating step runs through [`run_generation_step`]:
//! synthesize an artifact, pass it through the model's corruption channel
//! (column-name errors sampled per semantic level), execute it, and on
//! failure feed the structured error back for a redo — up to the
//! five-revision budget. After a *successful* execution the QA agent
//! scores the output 1–100 (threshold 50); the rejected binary-judgement
//! design is kept behind [`QaMode::Binary`] for the ablation bench.

use crate::context::{AgentContext, QaMode};
use crate::state::RunState;
use infera_llm::SimulatedLlm;
use infera_obs::metric_names;

/// Outcome of one generation step's revision loop.
#[derive(Debug, Clone, PartialEq)]
pub struct GenOutcome {
    /// Redo iterations consumed (0 = first attempt passed).
    pub redos: u32,
    pub success: bool,
    /// Final error (on failure) or completion note.
    pub message: String,
    /// The artifact text that finally executed (empty on failure) —
    /// appended to the message history, where the FullHistory context
    /// policy makes every later prompt carry it.
    pub artifact: String,
}

impl GenOutcome {
    pub fn new(redos: u32, success: bool, message: impl Into<String>) -> GenOutcome {
        GenOutcome {
            redos,
            success,
            message: message.into(),
            artifact: String::new(),
        }
    }
}

/// Corrupt `k` distinct column names occurring in `text`.
///
/// `vocabulary` is the set of real column names the corruption can target
/// (schema columns + derived columns). Replacement is whole-word.
pub fn corrupt_columns(llm: &SimulatedLlm, text: &str, vocabulary: &[String], k: usize) -> String {
    if k == 0 {
        return text.to_string();
    }
    // Which vocabulary entries actually occur (whole-word) in the text?
    let present: Vec<&String> = vocabulary
        .iter()
        .filter(|col| occurs_whole_word(text, col))
        .collect();
    if present.is_empty() {
        return text.to_string();
    }
    // Pick k distinct targets.
    let mut targets: Vec<&String> = Vec::new();
    let mut pool: Vec<&String> = present;
    for _ in 0..k.min(pool.len()) {
        let idx = llm.pick(pool.len());
        targets.push(pool.swap_remove(idx));
    }
    let mut out = text.to_string();
    for t in targets {
        let wrong = llm.corrupt_column_name(t);
        out = replace_whole_word(&out, t, &wrong);
    }
    out
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn occurs_whole_word(text: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = text[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0 || !is_word_char(text[..abs].chars().last().expect("non-empty"));
        let after = abs + word.len();
        let after_ok = after >= text.len()
            || !is_word_char(text[after..].chars().next().expect("non-empty"));
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len().max(1);
    }
    false
}

fn replace_whole_word(text: &str, word: &str, replacement: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(pos) = rest.find(word) {
        let before_ok =
            pos == 0 || !is_word_char(rest[..pos].chars().last().expect("non-empty"));
        let after = pos + word.len();
        let after_ok =
            after >= rest.len() || !is_word_char(rest[after..].chars().next().expect("non-empty"));
        out.push_str(&rest[..pos]);
        if before_ok && after_ok {
            out.push_str(replacement);
        } else {
            out.push_str(word);
        }
        rest = &rest[after..];
    }
    out.push_str(rest);
    out
}

/// QA judgement of a *successfully executed* output of true quality
/// `quality` (flags already folded in by the caller). Returns pass/fail.
pub fn qa_passes(ctx: &AgentContext, quality: f64) -> bool {
    match ctx.config.qa_mode {
        QaMode::Scored { threshold } => ctx.llm.qa_score(quality) >= threshold,
        QaMode::Binary => ctx.llm.qa_binary(quality >= 0.5),
    }
}

/// Drive one generation step through the corruption + revision loop.
///
/// * `synth(attempt)` regenerates the artifact text (deterministic);
/// * `exec(text)` executes it, returning a short success summary or the
///   error message that feeds the next revision;
/// * `error_rate_scale` scales the per-level column-error Poisson rate
///   (SQL is less error-prone than freeform analysis code);
/// * `quality` is the output's true quality in [0, 1] for QA scoring.
#[allow(clippy::too_many_arguments)]
pub fn run_generation_step(
    ctx: &AgentContext,
    state: &RunState,
    agent: &str,
    task: &str,
    synth: &dyn Fn(u32) -> String,
    exec: &mut dyn FnMut(&str) -> Result<String, String>,
    error_rate_scale: f64,
    quality: f64,
) -> GenOutcome {
    let level = state.semantic;
    let rate = ctx.llm.profile().column_error_rate[level.index()] * error_rate_scale;
    let mut outstanding = ctx.llm.poisson(rate);

    // Vocabulary the corruption may target: columns of every working
    // frame plus the full entity schemas.
    let mut vocabulary: Vec<String> = Vec::new();
    for kind in infera_hacc::EntityKind::ALL {
        for c in kind.column_names() {
            vocabulary.push(c.to_string());
        }
    }
    // Frames are visited in sorted-name order: the vocabulary's element
    // order feeds the corruption target pick, so it must not depend on
    // HashMap iteration order.
    let mut frame_names: Vec<&String> = state.frames.keys().collect();
    frame_names.sort();
    for name in frame_names {
        for col in state.frames[name].names() {
            if !vocabulary.contains(col) {
                vocabulary.push(col.clone());
            }
        }
    }
    // An artifact can only carry as many distinct column errors as it has
    // distinct corruptable columns.
    let max_targets = vocabulary
        .iter()
        .filter(|c| occurs_whole_word(&synth(0), c))
        .count();
    outstanding = outstanding.min(max_targets);

    let retrieved = ctx
        .retriever
        .retrieve_for_task(&state.question, task, &state.plan.to_text());
    let mut last_error = String::new();
    // Chat-style agents resend the whole exchange on every retry, so the
    // attempt transcript accumulates into each prompt — the mechanism
    // behind the paper's failed-runs token blow-up (§4.1.4).
    let mut attempt_log = String::new();
    let max_attempts = ctx.config.max_revisions + 1;
    for attempt in 0..max_attempts {
        // One span per redo iteration: the trace shows exactly where a
        // step's revision budget went.
        let span = ctx.obs.tracer.span("attempt");
        span.set_attr("agent", agent);
        span.set_attr("attempt", attempt);
        let clean = synth(attempt);
        let text = corrupt_columns(&ctx.llm, &clean, &vocabulary, outstanding);
        let mut prompt = ctx.build_prompt(agent, state, task, &retrieved);
        if !attempt_log.is_empty() {
            prompt.push_str("\n## Previous attempts\n");
            prompt.push_str(&attempt_log);
        }
        if !last_error.is_empty() {
            prompt.push_str("\n## Last error\n");
            prompt.push_str(&last_error);
        }
        ctx.llm.charge(agent, &prompt, &text);
        attempt_log.push_str(&format!("--- attempt {} ---\n{text}\n", attempt + 1));

        match exec(&text) {
            Ok(summary) => {
                // QA pass on the executed output: the assessor sees the
                // same task context the generator saw, plus the code and
                // its output.
                let qa_prompt = format!(
                    "{}\n\nAssess whether this output satisfactorily completes the task.\n\
                     ## Generated code\n{text}\n## Output summary\n{summary}",
                    ctx.build_prompt("qa", state, task, &retrieved)
                );
                ctx.llm
                    .charge("qa", &qa_prompt, "assessment: scored with rationale");
                if qa_passes(ctx, quality) {
                    span.set_attr("outcome", "passed");
                    return GenOutcome {
                        redos: attempt,
                        success: true,
                        message: summary,
                        artifact: text,
                    };
                }
                span.set_attr("outcome", "qa_rejected");
                last_error = "qa: output judged unsatisfactory, revise the approach".into();
                // A QA-driven revision can also shake loose a latent
                // error or introduce one.
                if outstanding > 0 && ctx.llm.redo_fixes() {
                    outstanding -= 1;
                }
            }
            Err(err) => {
                span.set_attr("outcome", "error");
                span.set_attr("error", err.as_str());
                attempt_log.push_str(&format!("error: {err}\n"));
                last_error = err;
                if ctx.config.human_feedback {
                    // §4.2.2: a human reading the error supplies the exact
                    // fix ("directly providing the correct name resolves
                    // the issue, avoiding multiple correction attempts").
                    outstanding = 0;
                } else {
                    // Error-guided redo: the message usually pinpoints
                    // the bad column.
                    if outstanding > 0 && ctx.llm.redo_fixes() {
                        outstanding -= 1;
                    }
                    if ctx.llm.redo_introduces(level) {
                        outstanding = (outstanding + 1).min(max_targets);
                    }
                }
            }
        }
    }
    ctx.obs.metrics.inc(metric_names::QA_BUDGET_EXHAUSTED, 1);
    GenOutcome::new(max_attempts - 1, false, last_error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infera_llm::{BehaviorProfile, SimulatedLlm, TokenMeter};

    fn llm() -> SimulatedLlm {
        SimulatedLlm::new(3, BehaviorProfile::default(), TokenMeter::new())
    }

    #[test]
    fn whole_word_replacement() {
        let text = "x = filter(halos, fof_halo_mass > 1)\ny = top_n(x, fof_halo_mass, 5)";
        let out = replace_whole_word(text, "fof_halo_mass", "mass");
        assert_eq!(out.matches("fof_halo_mass").count(), 0);
        assert_eq!(out.matches("mass").count(), 2);
        // Substring inside a longer identifier survives.
        let out = replace_whole_word("gal_gas_mass + mass", "mass", "m");
        assert_eq!(out, "gal_gas_mass + m");
    }

    #[test]
    fn occurs_whole_word_checks_boundaries() {
        assert!(occurs_whole_word("a + step", "step"));
        assert!(!occurs_whole_word("a + steps", "step"));
        assert!(!occurs_whole_word("infall_step", "step"));
        assert!(occurs_whole_word("step", "step"));
    }

    #[test]
    fn corrupt_zero_is_identity() {
        let m = llm();
        let text = "return top_n(halos, fof_halo_mass, 5)";
        assert_eq!(
            corrupt_columns(&m, text, &["fof_halo_mass".into()], 0),
            text
        );
    }

    #[test]
    fn corrupt_changes_present_columns_only() {
        let m = llm();
        let text = "return top_n(halos, fof_halo_mass, 5)";
        let vocab = vec!["fof_halo_mass".to_string(), "gal_sfr".into()];
        let out = corrupt_columns(&m, text, &vocab, 1);
        assert_ne!(out, text);
        assert!(!out.contains("fof_halo_mass"));
        // Nothing present to corrupt -> unchanged.
        let out = corrupt_columns(&m, "return head(df, 1)", &vocab, 3);
        assert_eq!(out, "return head(df, 1)");
    }
}
