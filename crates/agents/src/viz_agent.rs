//! The visualization agent.
//!
//! Renders the plan's visualization templates through the `infera-viz`
//! substrate (SVG charts, VTK scenes). Generated plot specs pass through
//! the corruption channel (wrong column names fail rendering and drive
//! redos) and the model occasionally picks a valid-but-wrong chart form
//! (§4.1.2: unsatisfactory visualization choices) — flagged for the QA
//! metrics.

use crate::context::AgentContext;
use crate::error::{AgentError, AgentResult};
use crate::qa::{run_generation_step, GenOutcome};
use crate::state::{RunState, VizKind};
use infera_frame::DataFrame;
use infera_provenance::ArtifactKind;
use infera_viz::{histogram_plot, line_plot, scatter_plot, Chart, Scene, Series};

/// Render a plot-spec line (the "generated code" of this agent; a compact
/// `key=value` format so corruption can target column tokens).
pub fn synthesize_spec(kind: &VizKind, input: &str, title: &str) -> String {
    match kind {
        VizKind::Line { x, y, group, log_y } => format!(
            "plot kind=line input={input} x={x} y={y} group={} log_y={log_y} title={title}",
            group.as_deref().unwrap_or("-")
        ),
        VizKind::Scatter { x, y, group, highlight_top } => {
            let hl = highlight_top
                .as_ref()
                .map(|(c, n)| format!("{c}:{n}"))
                .unwrap_or_else(|| "-".into());
            format!(
                "plot kind=scatter input={input} x={x} y={y} group={} highlight={hl} title={title}",
                group.as_deref().unwrap_or("-")
            )
        }
        VizKind::Histogram { column, bins, group } => format!(
            "plot kind=histogram input={input} x={column} bins={bins} group={} title={title}",
            group.as_deref().unwrap_or("-")
        ),
        VizKind::Heatmap { columns } => format!(
            "plot kind=heatmap input={input} cols={} title={title}",
            columns.join(",")
        ),
        VizKind::Scene3D => format!("plot kind=scene3d input={input} title={title}"),
    }
}

fn spec_field<'a>(spec: &'a str, key: &str) -> Option<&'a str> {
    spec.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .filter(|v| !v.is_empty() && *v != "-")
}

/// Render a spec against the working frames. Returns `(artifact text,
/// kind)` — SVG for charts, VTK for scenes.
pub fn render_spec(
    spec: &str,
    frames: &std::collections::HashMap<String, DataFrame>,
) -> Result<(String, ArtifactKind), String> {
    let kind = spec_field(spec, "kind").ok_or("spec missing kind")?;
    let input = spec_field(spec, "input").ok_or("spec missing input")?;
    let title = spec
        .split_once("title=")
        .map(|(_, t)| t)
        .unwrap_or("untitled");
    let frame = frames.get(input).ok_or_else(|| {
        let suggestion =
            infera_frame::error::suggest(input, frames.keys().map(String::as_str));
        match suggestion {
            Some(s) => format!("unknown frame '{input}' — did you mean '{s}'?"),
            None => format!("unknown frame '{input}'"),
        }
    })?;
    match kind {
        "line" | "scatter" => {
            let x = spec_field(spec, "x").ok_or("spec missing x")?;
            let y = spec_field(spec, "y").ok_or("spec missing y")?;
            let group = spec_field(spec, "group");
            let mut chart = if kind == "line" {
                line_plot(frame, x, y, group, title).map_err(|e| e.to_string())?
            } else {
                scatter_plot(frame, x, y, group, title).map_err(|e| e.to_string())?
            };
            if spec_field(spec, "log_y") == Some("true") {
                chart = chart.with_log_y();
            }
            // Highlight top-n rows as an extra series.
            if let Some(hl) = spec_field(spec, "highlight") {
                let (col, n) = hl.split_once(':').ok_or("bad highlight spec")?;
                let n: usize = n.parse().map_err(|_| "bad highlight count")?;
                let top = frame.top_n(col, n).map_err(|e| e.to_string())?;
                let xs = top
                    .column(x)
                    .and_then(|c| c.to_f64_vec())
                    .map_err(|e| e.to_string())?;
                let ys = top
                    .column(y)
                    .and_then(|c| c.to_f64_vec())
                    .map_err(|e| e.to_string())?;
                let pts: Vec<(f64, f64)> = xs.into_iter().zip(ys).collect();
                chart.add_series(Series::scatter("highlighted", pts, 0).highlighted());
            }
            Ok((chart.render(), ArtifactKind::Svg))
        }
        "histogram" => {
            let column = spec_field(spec, "x").ok_or("spec missing x")?;
            let bins: usize = spec_field(spec, "bins")
                .and_then(|b| b.parse().ok())
                .unwrap_or(30);
            match spec_field(spec, "group") {
                None => {
                    let chart =
                        histogram_plot(frame, column, bins, title).map_err(|e| e.to_string())?;
                    Ok((chart.render(), ArtifactKind::Svg))
                }
                Some(g) => {
                    // One histogram series per group value.
                    let gcol = frame.column(g).map_err(|e| e.to_string())?;
                    let mut chart = Chart::new(title).with_labels(column, "count");
                    let mut keys: Vec<infera_frame::Value> = Vec::new();
                    for v in gcol.iter_values() {
                        if !keys.contains(&v) {
                            keys.push(v);
                        }
                    }
                    for (ci, key) in keys.into_iter().enumerate() {
                        let mask: Vec<bool> =
                            gcol.iter_values().map(|v| v == key).collect();
                        let sub = frame.filter_mask(&mask).map_err(|e| e.to_string())?;
                        let vals = sub
                            .column(column)
                            .and_then(|c| c.to_f64_vec())
                            .map_err(|e| e.to_string())?;
                        let pts = infera_viz::histogram(&vals, bins);
                        chart.add_series(Series::line(format!("{g}={key}"), pts, ci));
                    }
                    Ok((chart.render(), ArtifactKind::Svg))
                }
            }
        }
        "heatmap" => {
            let cols: Vec<&str> = spec_field(spec, "cols")
                .ok_or("spec missing cols")?
                .split(',')
                .collect();
            let matrix = frame.corr_matrix(&cols).map_err(|e| e.to_string())?;
            let svg = infera_viz::corr_heatmap(&matrix, title).map_err(|e| e.to_string())?;
            Ok((svg, ArtifactKind::Svg))
        }
        "scene3d" => {
            let mut scene = Scene::new(title);
            let read = |name: &str| -> Result<Option<Vec<f64>>, String> {
                if frame.has_column(name) {
                    frame
                        .column(name)
                        .and_then(|c| c.to_f64_vec())
                        .map(Some)
                        .map_err(|e| e.to_string())
                } else {
                    Ok(None)
                }
            };
            let hx = read("fof_halo_center_x")?;
            let hy = read("fof_halo_center_y")?;
            let hz = read("fof_halo_center_z")?;
            let radius = read("sod_halo_radius")?;
            let distance = read("distance_mpc")?;
            if let (Some(hx), Some(hy), Some(hz)) = (hx, hy, hz) {
                for i in 0..hx.len() {
                    // The target (distance 0, or the first row) renders
                    // highlighted — the Fig. 5 red halo.
                    let highlight = match &distance {
                        Some(d) => f32::from(d[i] <= f64::EPSILON),
                        None => f32::from(i == 0),
                    };
                    let r = radius.as_ref().map_or(0.3, |r| r[i]) as f32;
                    scene.add_point([hx[i] as f32, hy[i] as f32, hz[i] as f32], highlight, r);
                }
            }
            // Galaxies (if present) as small mid-scalar points.
            let gx = read("gal_center_x")?;
            let gy = read("gal_center_y")?;
            let gz = read("gal_center_z")?;
            if let (Some(gx), Some(gy), Some(gz)) = (gx, gy, gz) {
                for i in 0..gx.len() {
                    scene.add_point([gx[i] as f32, gy[i] as f32, gz[i] as f32], 0.5, 0.1);
                }
            }
            if scene.is_empty() {
                return Err("scene3d: input frame has no spatial columns \
                            (need fof_halo_center_x/y/z)"
                    .into());
            }
            Ok((scene.to_vtk(), ArtifactKind::Scene))
        }
        other => Err(format!("unknown plot kind '{other}'")),
    }
}

/// The valid-but-wrong chart-form variant.
fn degrade_kind(kind: &VizKind) -> VizKind {
    match kind {
        VizKind::Line { x, y, group, .. } => VizKind::Scatter {
            x: x.clone(),
            y: y.clone(),
            group: group.clone(),
            highlight_top: None,
        },
        VizKind::Scatter { x, y, group, .. } => VizKind::Line {
            x: x.clone(),
            y: y.clone(),
            group: group.clone(),
            log_y: false,
        },
        VizKind::Histogram { column, .. } => VizKind::Line {
            x: column.clone(),
            y: column.clone(),
            group: None,
            log_y: false,
        },
        VizKind::Heatmap { columns } => VizKind::Scatter {
            x: columns.first().cloned().unwrap_or_default(),
            y: columns.get(1).cloned().unwrap_or_default(),
            group: None,
            highlight_top: None,
        },
        VizKind::Scene3D => VizKind::Scatter {
            x: "fof_halo_center_x".into(),
            y: "fof_halo_center_y".into(),
            group: None,
            highlight_top: None,
        },
    }
}

/// Execute one visualization step with the revision loop.
pub fn run_visualize(
    ctx: &AgentContext,
    state: &mut RunState,
    kind: &VizKind,
    input: &str,
    title: &str,
) -> AgentResult<GenOutcome> {
    let level = state.semantic;
    let bad_viz = ctx.llm.bad_viz_choice(level);
    let effective_kind = if bad_viz { degrade_kind(kind) } else { kind.clone() };

    let task = format!("render a {} visualization of '{input}'", kind.label());
    let frames = state.frames.clone();
    let mut produced: Option<(String, ArtifactKind)> = None;
    let mut executed_spec = String::new();
    let outcome = run_generation_step(
        ctx,
        state,
        "visualization",
        &task,
        &|_attempt| synthesize_spec(&effective_kind, input, title),
        &mut |spec| match render_spec(spec, &frames) {
            Ok((text, akind)) => {
                let summary = format!("rendered {} ({} bytes)", kind.label(), text.len());
                produced = Some((text, akind));
                executed_spec = spec.to_string();
                Ok(summary)
            }
            Err(e) => Err(e),
        },
        0.8,
        if bad_viz { 0.62 } else { 0.92 },
    );

    if outcome.success {
        if bad_viz {
            state.flags.bad_viz = true;
        }
        let Some((text, akind)) = produced else {
            return Err(AgentError::Fatal(
                "visualization step reported success without producing an artifact".into(),
            ));
        };
        let spec_art = ctx.prov.put_text(ArtifactKind::Text, &executed_spec)?;
        let viz_art = ctx.prov.put_text(akind, &text)?;
        ctx.prov.log_event(
            "visualization",
            "render",
            vec![spec_art],
            vec![viz_art.clone()],
            &outcome.message,
            0,
            0,
        )?;
        state.visualizations.push(viz_art);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RunConfig;
    use crate::state::Plan;
    use infera_frame::Column;
    use infera_hacc::EnsembleSpec;
    use infera_llm::{BehaviorProfile, SemanticLevel};
    use std::collections::HashMap;
    use std::path::PathBuf;

    fn ctx(name: &str, profile: BehaviorProfile) -> AgentContext {
        let base: PathBuf = std::env::temp_dir().join("infera_vizagent_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(19), &base.join("ens")).unwrap();
        AgentContext::new(
            std::sync::Arc::new(manifest),
            &base.join("session"),
            9,
            profile,
            RunConfig::default(),
        )
        .unwrap()
    }

    fn frames() -> HashMap<String, DataFrame> {
        let mut m = HashMap::new();
        m.insert(
            "r1".to_string(),
            DataFrame::from_columns([
                ("step", Column::from(vec![100.0, 300.0, 624.0])),
                ("mean_count", Column::from(vec![10.0, 40.0, 90.0])),
                ("sim", Column::from(vec![0i64, 0, 0])),
                ("fof_halo_center_x", Column::from(vec![1.0, 2.0, 3.0])),
                ("fof_halo_center_y", Column::from(vec![1.0, 2.0, 3.0])),
                ("fof_halo_center_z", Column::from(vec![1.0, 2.0, 3.0])),
                ("distance_mpc", Column::from(vec![0.0, 5.0, 12.0])),
            ])
            .unwrap(),
        );
        m
    }

    #[test]
    fn render_line_and_histogram() {
        let f = frames();
        let (svg, kind) = render_spec(
            "plot kind=line input=r1 x=step y=mean_count group=- log_y=false title=t",
            &f,
        )
        .unwrap();
        assert!(svg.contains("<svg"));
        assert_eq!(kind, ArtifactKind::Svg);
        let (svg, _) = render_spec(
            "plot kind=histogram input=r1 x=mean_count bins=5 group=- title=h",
            &f,
        )
        .unwrap();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn render_scene_highlights_target() {
        let f = frames();
        let (vtk, kind) = render_spec("plot kind=scene3d input=r1 title=s", &f).unwrap();
        assert_eq!(kind, ArtifactKind::Scene);
        assert!(vtk.contains("POINTS 3 float"));
        // Exactly one highlighted point (distance 0).
        let highlight_section = vtk.split("SCALARS highlight").nth(1).unwrap();
        let ones = highlight_section
            .lines()
            .skip(1)
            .take(3)
            .filter(|l| *l == "1")
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn bad_column_fails_with_suggestion() {
        let f = frames();
        let err = render_spec(
            "plot kind=line input=r1 x=step y=mean_coun group=- log_y=false title=t",
            &f,
        )
        .unwrap_err();
        assert!(err.contains("mean_count"), "{err}");
        let err = render_spec("plot kind=line input=r9 x=a y=b title=t", &f).unwrap_err();
        assert!(err.contains("unknown frame"), "{err}");
    }

    #[test]
    fn run_visualize_records_artifact() {
        let c = ctx("records", BehaviorProfile::perfect());
        let mut s = RunState::new("q", SemanticLevel::Easy, Plan::default());
        s.frames = frames();
        let out = run_visualize(
            &c,
            &mut s,
            &VizKind::Line {
                x: "step".into(),
                y: "mean_count".into(),
                group: None,
                log_y: false,
            },
            "r1",
            "test plot",
        )
        .unwrap();
        assert!(out.success, "{out:?}");
        assert_eq!(s.visualizations.len(), 1);
        assert!(!s.flags.bad_viz);
        let svg = c.prov.get_text(&s.visualizations[0]).unwrap();
        assert!(svg.contains("<svg"));
    }

    #[test]
    fn degraded_forms_still_render() {
        let f = frames();
        for kind in [
            VizKind::Line {
                x: "step".into(),
                y: "mean_count".into(),
                group: None,
                log_y: false,
            },
            VizKind::Scene3D,
        ] {
            let degraded = degrade_kind(&kind);
            let spec = synthesize_spec(&degraded, "r1", "t");
            assert!(render_spec(&spec, &f).is_ok(), "degraded {kind:?}");
        }
    }

    #[test]
    fn highlight_spec_renders_extra_series() {
        let f = frames();
        let (svg, _) = render_spec(
            "plot kind=scatter input=r1 x=step y=mean_count group=- highlight=mean_count:1 title=t",
            &f,
        )
        .unwrap();
        assert!(svg.contains("#D00000"));
    }
}
