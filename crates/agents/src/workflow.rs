//! The analysis-stage workflow: supervisor-routed execution of the
//! approved plan through the state graph (Fig. 3 of the paper).
//!
//! The supervisor interprets the next plan step and delegates it to the
//! matching specialist node; specialists run their revision loops and
//! report back; exhausting a step's budget aborts the run; the
//! documentation agent closes every run. The graph shape is exactly the
//! paper's: planning happens before this stage, QA is embedded in each
//! specialist's loop.

use crate::context::{AgentContext, ContextPolicy};
use crate::documentation::run_documentation;
use crate::error::{AgentError, AgentResult};
use crate::graph::{NodeOutcome, StateGraph};
use crate::planner::plan_question;
use crate::qa::GenOutcome;
use crate::state::{PlanStep, QualityFlags, RunState, StepOutcome};
use infera_llm::SemanticLevel;
use infera_obs::{metric_names, render_breakdown, stage_breakdown, StageCost, Tracer};
use std::sync::Arc;

/// Per-run report: the raw material of every Table 2 metric.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub question: String,
    /// Analysis steps in the executed plan.
    pub plan_steps: usize,
    /// Run completed all planned steps (Table 2 "% of Runs Completed").
    pub completed: bool,
    /// Fraction of planned steps completed (Table 2 "% Complete").
    pub completion_fraction: f64,
    /// Total redo iterations (Table 2 "Redo Iterations").
    pub redos: u32,
    /// Data analysis success (Table 2 "% Satisfactory Data").
    pub satisfactory_data: bool,
    /// Visualization success (Table 2 "% Satisfactory Visual").
    pub satisfactory_viz: bool,
    /// Token usage at termination.
    pub tokens: u64,
    /// Virtual LLM latency (ms) accumulated by the model.
    pub llm_latency_ms: u64,
    /// Real wall-clock of the data pipeline (ms).
    pub wall_ms: u64,
    /// Storage overhead: database + provenance artifacts (bytes on
    /// disk — database chunks are compressed, format v2).
    pub storage_bytes: u64,
    /// Storage the run would need with the uncompressed (v1) chunk
    /// layout; `storage_bytes / storage_logical_bytes` is the realized
    /// compression ratio.
    pub storage_logical_bytes: u64,
    pub flags: QualityFlags,
    /// The final result frame, when the last compute/sql step succeeded.
    pub result: Option<infera_frame::DataFrame>,
    /// Visualization artifact ids.
    pub visualizations: Vec<infera_provenance::ArtifactId>,
    /// Provenance/documentation summary.
    pub summary: String,
    /// Per-agent cost attribution derived from the run's trace: wall
    /// time, token usage, model calls, and redos per pipeline stage.
    pub stage_costs: Vec<StageCost>,
    /// Snapshot of the run's metrics registry: execution-kernel timings
    /// (`join.build_ms`, `join.probe_ms`), partition/partial counters,
    /// and dictionary fast-path hit counts.
    pub metrics: infera_obs::MetricsSnapshot,
    /// The run's full trace, for JSONL export and post-hoc analysis.
    pub trace: Tracer,
}

impl RunReport {
    /// The per-stage breakdown as an aligned text table (time / tokens /
    /// redos per agent node, plus a totals row).
    pub fn breakdown_text(&self) -> String {
        render_breakdown(&self.stage_costs)
    }

    /// Execution-kernel breakdown: join build/probe timings, radix
    /// partition count, group-by partials, and dictionary fast-path
    /// savings. Empty string when the run executed no join/group-by.
    pub fn kernel_breakdown_text(&self) -> String {
        use infera_obs::metric_names as names;
        use std::fmt::Write as _;
        let mut out = String::new();
        for (label, name) in [
            ("join build", names::JOIN_BUILD_MS),
            ("join probe", names::JOIN_PROBE_MS),
        ] {
            if let Some(h) = self.metrics.histograms.get(name) {
                let _ = writeln!(
                    out,
                    "{label:<22} {:>6} obs  total {:>9.3} ms  p50 {:>8.3} ms  max {:>8.3} ms",
                    h.count, h.sum, h.p50, h.max
                );
            }
        }
        if let Some(parts) = self.metrics.gauges.get(names::JOIN_PARTITIONS) {
            let _ = writeln!(out, "{:<22} {parts:>6}", "join partitions");
        }
        for (label, name) in [
            ("plan candidates", names::PLAN_CANDIDATES_CONSIDERED),
            ("predicates pushed", names::PLAN_PREDICATES_PUSHED),
            ("preagg applied", names::PLAN_PREAGG_APPLIED),
            ("morsels dispatched", names::MORSEL_COUNT),
            ("group-by partials", names::GROUPBY_PARTIALS_MERGED),
            ("dict group-by chunks", names::GROUPBY_DICT_FASTPATH_CHUNKS),
            ("dict join chunks", names::JOIN_DICT_FASTPATH_CHUNKS),
            ("dict strings decoded", names::DICT_STRINGS_DECODED),
            ("scan rows pruned", names::SCAN_ROWS_PRUNED),
            ("faults recovered", names::FAULT_RECOVERED),
            ("chunks quarantined", names::STORAGE_CHUNKS_QUARANTINED),
        ] {
            if let Some(v) = self.metrics.counters.get(name) {
                let _ = writeln!(out, "{label:<22} {v:>6}");
            }
        }
        out
    }
}

/// Stamp a specialist node's span with its outcome and bump the run
/// counters (redos consumed, step failures).
fn finish_node(ctx: &AgentContext, span: &infera_obs::SpanGuard, out: &GenOutcome) {
    span.set_attr("redos", out.redos);
    span.set_attr("success", out.success);
    if out.redos > 0 {
        ctx.obs.metrics.inc(metric_names::RUN_REDOS, u64::from(out.redos));
    }
    if !out.success {
        ctx.obs.metrics.inc(metric_names::RUN_STEP_FAILURES, 1);
    }
}

fn record(state: &mut RunState, agent: &str, out: GenOutcome) {
    let step = state.step_idx;
    state.outcomes.push(StepOutcome {
        step,
        agent: agent.to_string(),
        redos: out.redos,
        success: out.success,
        message: out.message,
    });
    if out.success {
        state.step_idx += 1;
    } else {
        state.failed = true;
    }
}

/// Build the supervisor-routed analysis graph.
pub fn build_workflow(ctx: Arc<AgentContext>) -> StateGraph<RunState> {
    let mut g: StateGraph<RunState> = StateGraph::new();

    // Supervisor: monitors progress, charges its routing call, and the
    // conditional edge picks the next specialist.
    {
        let ctx = ctx.clone();
        g.add_node("supervisor", move |state: &mut RunState| {
            // Cancellation is cooperative: the supervisor fronts every
            // step, so a canceled or past-deadline run stops at the next
            // step boundary rather than mid-specialist.
            ctx.cancel.check()?;
            // Fault-injection boundary for the virtual LLM: the
            // supervisor fronts every step, so an injected failure here
            // models a provider outage at a step boundary. It aborts the
            // run (transient infra error) instead of feeding the redo
            // loop, so a scheduler-level retry replays bit-identically.
            match infera_faults::check(infera_faults::sites::LLM_CALL) {
                Some(infera_faults::FaultMode::Panic) => {
                    panic!("{}", infera_faults::injected_error("llm.call"));
                }
                Some(_) => {
                    return Err(AgentError::Infra {
                        message: infera_faults::injected_error("llm.call"),
                        transient: true,
                    });
                }
                None => {}
            }
            let span = ctx.obs.tracer.span("node:supervisor");
            span.set_attr("stage", "supervisor");
            span.set_attr("step", state.step_idx);
            let step_desc = state
                .plan
                .steps
                .get(state.step_idx)
                .map(|s| s.describe())
                .unwrap_or_else(|| "all steps complete".to_string());
            // The supervisor is the one agent that always sees history
            // (§4.2.5).
            // The supervisor always sees the full picture: plan, working
            // frames, and the complete message history (§4.2.5 notes this
            // is the expensive part of the token budget).
            let mut prompt = ctx.build_prompt(
                "supervisor",
                state,
                &format!("delegate the next step: {step_desc}"),
                &[],
            );
            prompt.push_str("\n## Message history\n");
            for h in &state.history {
                prompt.push_str(h);
                prompt.push('\n');
            }
            ctx.llm
                .charge("supervisor", &prompt, &format!("delegate: {step_desc}"));
            state
                .history
                .push(format!("supervisor: delegated '{step_desc}'"));
            // Trim runaway history under the limited-context policy.
            if ctx.config.context_policy == ContextPolicy::LimitedContext
                && state.history.len() > 40
            {
                state.history.drain(..20);
            }
            Ok(NodeOutcome::Continue)
        });
    }
    g.add_conditional_edge("supervisor", |state: &RunState| {
        if state.failed {
            return "documentation".to_string();
        }
        match state.plan.steps.get(state.step_idx) {
            Some(step) => match step {
                PlanStep::Load(_) => "data_loading".to_string(),
                PlanStep::Sql(_) => "sql".to_string(),
                PlanStep::Compute { .. } => "python".to_string(),
                PlanStep::Visualize { .. } => "visualization".to_string(),
            },
            None => "documentation".to_string(),
        }
    });

    {
        let ctx = ctx.clone();
        g.add_node("data_loading", move |state: &mut RunState| {
            let span = ctx.obs.tracer.span("node:data_loading");
            span.set_attr("stage", "data_loading");
            span.set_attr("step", state.step_idx);
            let Some(PlanStep::Load(spec)) = state.plan.steps.get(state.step_idx).cloned()
            else {
                return Err(AgentError::Fatal("data_loading routed off-plan".into()));
            };
            let out = match crate::data_loading::run_load(&ctx, state, &spec) {
                Ok(stats) => GenOutcome::new(0, true, format!("loaded {} rows", stats.rows_loaded)),
                Err(AgentError::Fatal(m)) => return Err(AgentError::Fatal(m)),
                // Infrastructure failures abort the run for a clean
                // scheduler-level replay (see the supervisor note).
                Err(infra @ AgentError::Infra { .. }) => return Err(infra),
                Err(e) => GenOutcome::new(0, false, e.to_string()),
            };
            finish_node(&ctx, &span, &out);
            state.history.push(format!("data_loading: {}", out.message));
            record(state, "data_loading", out);
            Ok(NodeOutcome::Continue)
        });
        g.add_edge("data_loading", "supervisor");
    }

    {
        let ctx = ctx.clone();
        g.add_node("sql", move |state: &mut RunState| {
            let span = ctx.obs.tracer.span("node:sql");
            span.set_attr("stage", "sql");
            span.set_attr("step", state.step_idx);
            let Some(PlanStep::Sql(spec)) = state.plan.steps.get(state.step_idx).cloned()
            else {
                return Err(AgentError::Fatal("sql routed off-plan".into()));
            };
            let out = crate::sql_agent::run_sql(&ctx, state, &spec)?;
            // Live-progress hook: each materialized frame is announced
            // as it lands, so streaming clients see partial results.
            for sel in &spec.selects {
                if let Some(frame) = state.frames.get(&sel.output) {
                    span.event(
                        "frame_ready",
                        &[
                            ("frame", infera_obs::AttrValue::from(sel.output.as_str())),
                            ("rows", infera_obs::AttrValue::from(frame.n_rows())),
                            ("cols", infera_obs::AttrValue::from(frame.n_cols())),
                        ],
                    );
                }
            }
            finish_node(&ctx, &span, &out);
            state.history.push(format!("sql: {}\n{}", out.message, out.artifact));
            record(state, "sql", out);
            Ok(NodeOutcome::Continue)
        });
        g.add_edge("sql", "supervisor");
    }

    {
        let ctx = ctx.clone();
        g.add_node("python", move |state: &mut RunState| {
            let span = ctx.obs.tracer.span("node:python");
            span.set_attr("stage", "python");
            span.set_attr("step", state.step_idx);
            let Some(PlanStep::Compute { kind, input, output }) =
                state.plan.steps.get(state.step_idx).cloned()
            else {
                return Err(AgentError::Fatal("python routed off-plan".into()));
            };
            let out = crate::python_agent::run_compute(&ctx, state, &kind, &input, &output)?;
            if let Some(frame) = state.frames.get(&output) {
                span.event(
                    "frame_ready",
                    &[
                        ("frame", infera_obs::AttrValue::from(output.as_str())),
                        ("rows", infera_obs::AttrValue::from(frame.n_rows())),
                        ("cols", infera_obs::AttrValue::from(frame.n_cols())),
                    ],
                );
            }
            finish_node(&ctx, &span, &out);
            state.history.push(format!(
                "python[{}]: {}\n{}",
                kind.label(),
                out.message,
                out.artifact
            ));
            record(state, "python", out);
            Ok(NodeOutcome::Continue)
        });
        g.add_edge("python", "supervisor");
    }

    {
        let ctx = ctx.clone();
        g.add_node("visualization", move |state: &mut RunState| {
            let span = ctx.obs.tracer.span("node:visualization");
            span.set_attr("stage", "visualization");
            span.set_attr("step", state.step_idx);
            let Some(PlanStep::Visualize { kind, input, title }) =
                state.plan.steps.get(state.step_idx).cloned()
            else {
                return Err(AgentError::Fatal("visualization routed off-plan".into()));
            };
            let out = crate::viz_agent::run_visualize(&ctx, state, &kind, &input, &title)?;
            finish_node(&ctx, &span, &out);
            state.history.push(format!(
                "visualization[{}]: {}\n{}",
                kind.label(),
                out.message,
                out.artifact
            ));
            record(state, "visualization", out);
            Ok(NodeOutcome::Continue)
        });
        g.add_edge("visualization", "supervisor");
    }

    {
        let ctx = ctx.clone();
        g.add_node("documentation", move |state: &mut RunState| {
            let span = ctx.obs.tracer.span("node:documentation");
            span.set_attr("stage", "documentation");
            run_documentation(&ctx, state)?;
            Ok(NodeOutcome::End)
        });
    }

    g.set_entry("supervisor");
    g
}

/// Assess the Table 2 quality metrics from the final state.
fn assess(state: &RunState) -> (bool, bool) {
    let compute_ok = state
        .plan
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, PlanStep::Compute { .. } | PlanStep::Sql(_)))
        .all(|(i, _)| {
            state
                .outcomes
                .iter()
                .any(|o| o.step == i && o.success)
        });
    let satisfactory_data = compute_ok
        && !state.data_outputs.is_empty()
        && !state.flags.wrong_tool
        && !state.flags.bad_analysis;

    let viz_steps: Vec<usize> = state
        .plan
        .steps
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, PlanStep::Visualize { .. }))
        .map(|(i, _)| i)
        .collect();
    let viz_ok = !viz_steps.is_empty()
        && viz_steps.iter().all(|&i| {
            state
                .outcomes
                .iter()
                .any(|o| o.step == i && o.success)
        });
    let satisfactory_viz = viz_ok && !state.flags.bad_viz && !state.visualizations.is_empty();
    (satisfactory_data, satisfactory_viz)
}

/// Run one question end to end: planning stage + analysis stage +
/// reporting. This is the unit the evaluation harness calls 10 times per
/// question.
pub fn run_question(
    ctx: Arc<AgentContext>,
    question: &str,
    semantic: SemanticLevel,
) -> AgentResult<RunReport> {
    let plan = {
        let span = ctx.obs.tracer.span("node:planning");
        span.set_attr("stage", "planner");
        let (_intent, plan) = plan_question(&ctx, question);
        span.set_attr("plan_steps", plan.steps.len());
        // Live-progress hook: a subscriber watching the bus sees the
        // plan land before any step executes.
        span.event(
            "plan_ready",
            &[("plan_steps", infera_obs::AttrValue::from(plan.steps.len()))],
        );
        plan
    };
    run_question_with_plan(ctx, question, semantic, plan)
}

/// Run a user-reviewed (possibly edited) plan — the planning-stage
/// feedback loop's output (§3: the plan is "a road map for both the user
/// and the downstream agents"; users can modify it before approval).
pub fn run_question_with_plan(
    ctx: Arc<AgentContext>,
    question: &str,
    semantic: SemanticLevel,
    plan: crate::state::Plan,
) -> AgentResult<RunReport> {
    // The analysis span is the run's wall-clock authority: `wall_ms`
    // below is this span's duration, so the trace and the report can
    // never disagree (the old parallel `Instant::now()` path is gone).
    let analysis_span = ctx.obs.tracer.span("analysis");
    analysis_span.set_attr("question", question);
    let mut state = RunState::new(question, semantic, plan);

    let graph = build_workflow(ctx.clone());
    graph.run(&mut state)?;

    // Stateful architecture: checkpoint the final environment so analysts
    // can branch from it (§4.2.1).
    let state_json = serde_json::to_string(&serde_json::json!({
        "question": state.question,
        "completed_steps": state.outcomes.iter().filter(|o| o.success).count(),
        "failed": state.failed,
    }))
    .map_err(|e| AgentError::Fatal(format!("checkpoint state serialization: {e}")))?;
    infera_provenance::save_checkpoint(&ctx.prov, "final", None, &state.frames, &state_json)
        .map_err(AgentError::from)?;

    let (satisfactory_data, satisfactory_viz) = assess(&state);
    let completed = !state.failed
        && state.outcomes.iter().filter(|o| o.success).count() == state.plan.steps.len();
    let result = state
        .plan
        .steps
        .iter()
        .rev()
        .find_map(|s| match s {
            PlanStep::Compute { output, .. } => state.frames.get(output).cloned(),
            _ => None,
        });

    if state.failed {
        ctx.obs.metrics.inc(metric_names::RUN_ABORTS, 1);
    }
    analysis_span.set_attr("completed", completed);
    analysis_span.set_attr("redos", u64::from(state.total_redos()));
    // Live-progress hook: the terminal per-question event a streaming
    // client keys on.
    analysis_span.event(
        if state.failed { "run_failed" } else { "run_completed" },
        &[
            ("completed", infera_obs::AttrValue::from(completed)),
            (
                "redos",
                infera_obs::AttrValue::from(u64::from(state.total_redos())),
            ),
        ],
    );
    let wall_us = analysis_span.finish();
    let stage_costs = stage_breakdown(&ctx.obs.tracer);

    Ok(RunReport {
        question: question.to_string(),
        plan_steps: state.plan.n_analysis_steps(),
        completed,
        completion_fraction: state.completion_fraction(),
        redos: state.total_redos(),
        satisfactory_data,
        satisfactory_viz,
        tokens: ctx.llm.meter().total_tokens(),
        llm_latency_ms: ctx.llm.meter().total_latency_ms(),
        wall_ms: wall_us / 1000,
        storage_bytes: ctx.db.total_bytes() + ctx.prov.storage_bytes(),
        storage_logical_bytes: ctx.db.total_logical_bytes() + ctx.prov.storage_bytes(),
        flags: state.flags,
        result,
        visualizations: state.visualizations.clone(),
        summary: state.summary.clone(),
        stage_costs,
        metrics: ctx.obs.metrics.snapshot(),
        trace: ctx.obs.tracer.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{AgentContext, RunConfig};
    use infera_hacc::EnsembleSpec;
    use infera_llm::BehaviorProfile;
    use std::path::PathBuf;

    fn ctx(name: &str, seed: u64, profile: BehaviorProfile) -> Arc<AgentContext> {
        let base: PathBuf = std::env::temp_dir().join("infera_workflow_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest =
            infera_hacc::generate(&EnsembleSpec::tiny(29), &base.join("ens")).unwrap();
        Arc::new(
            AgentContext::new(
                Arc::new(manifest),
                &base.join("session"),
                seed,
                profile,
                RunConfig::default(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn perfect_run_completes_group_trend_question() {
        let c = ctx("grouptrend", 1, BehaviorProfile::perfect());
        let report = run_question(
            c.clone(),
            "Across all the simulations, what is the average size (fof_halo_count) of halos at each time step?",
            SemanticLevel::Easy,
        )
        .unwrap();
        assert!(report.completed, "{:?}", report.summary);
        assert_eq!(report.completion_fraction, 1.0);
        assert_eq!(report.redos, 0);
        assert!(report.satisfactory_data);
        assert!(report.satisfactory_viz);
        assert!(report.tokens > 5_000, "tokens {}", report.tokens);
        assert!(report.storage_bytes > 0);
        assert!(report.storage_logical_bytes >= report.storage_bytes);
        // The result is the per-step mean count with one row per step.
        let result = report.result.unwrap();
        assert_eq!(result.n_rows(), c.manifest.steps.len());
        assert!(result.has_column("mean_fof_halo_count"));
        // Mean count grows with time in the synthetic cosmology.
        let means = result
            .column("mean_fof_halo_count")
            .unwrap()
            .to_f64_vec()
            .unwrap();
        assert!(means.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn perfect_run_completes_top_n_question() {
        let c = ctx("topn", 2, BehaviorProfile::perfect());
        let report = run_question(
            c.clone(),
            "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
            SemanticLevel::Easy,
        )
        .unwrap();
        assert!(report.completed, "{}", report.summary);
        let result = report.result.unwrap();
        assert!(result.n_rows() <= 20);
        // Verify against ground truth: the model's own catalog.
        let model = c.manifest.spec().model(0);
        let step = c.manifest.nearest_step(498);
        let truth = model
            .catalog_frame(infera_hacc::EntityKind::Halos, step)
            .top_n("fof_halo_mass", 20)
            .unwrap();
        let got_top = result.cell("fof_halo_mass", 0).unwrap().as_f64().unwrap();
        let want_top = truth.cell("fof_halo_mass", 0).unwrap().as_f64().unwrap();
        assert!((got_top - want_top).abs() / want_top < 1e-9);
    }

    #[test]
    fn failed_runs_report_partial_completion() {
        let mut p = BehaviorProfile::perfect();
        p.column_error_rate = [20.0; 3];
        p.p_redo_fixes = 0.0;
        let c = ctx("fails", 3, p);
        let report = run_question(
            c,
            "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?",
            SemanticLevel::Easy,
        )
        .unwrap();
        assert!(!report.completed);
        assert!(report.completion_fraction < 1.0);
        assert!(report.completion_fraction > 0.0, "load step still succeeds");
        assert!(report.redos >= 5);
        assert!(!report.satisfactory_data);
        assert!(report.summary.contains("terminated early"));
    }

    #[test]
    fn provenance_trail_covers_all_agents() {
        let c = ctx("trail", 4, BehaviorProfile::perfect());
        run_question(
            c.clone(),
            "How many halos are there at each timestep in simulation 0? Plot the count over time.",
            SemanticLevel::Easy,
        )
        .unwrap();
        let events = c.prov.events();
        let agents: std::collections::HashSet<&str> =
            events.iter().map(|e| e.agent.as_str()).collect();
        for required in ["data_loading", "sql", "python", "visualization", "documentation"] {
            assert!(agents.contains(required), "missing {required} in trail");
        }
        // Checkpoint saved for branching.
        assert!(!infera_provenance::list_checkpoints(&c.prov).unwrap().is_empty());
    }

    #[test]
    fn trace_reconciles_with_report() {
        let c = ctx("tracerec", 5, BehaviorProfile::default());
        let report = run_question(
            c.clone(),
            "How many halos are there at each timestep in simulation 0? Plot the count over time.",
            SemanticLevel::Easy,
        )
        .unwrap();

        // Every model call is charged to the meter AND traced as an
        // `llm_call` event, so the per-stage token/latency sums must
        // reconcile exactly with the report totals.
        let token_sum: u64 = report.stage_costs.iter().map(|s| s.tokens).sum();
        assert_eq!(token_sum, report.tokens);
        let latency_sum: u64 = report.stage_costs.iter().map(|s| s.llm_latency_ms).sum();
        assert_eq!(latency_sum, report.llm_latency_ms);
        let redo_sum: u64 = report.stage_costs.iter().map(|s| s.redos).sum();
        assert_eq!(redo_sum, u64::from(report.redos));

        let stages: Vec<&str> = report.stage_costs.iter().map(|s| s.stage.as_str()).collect();
        for required in ["planner", "supervisor", "sql", "documentation"] {
            assert!(stages.contains(&required), "missing stage {required} in {stages:?}");
        }

        // wall_ms is the analysis span's duration; specialist stage spans
        // nest inside it, planning runs just before it.
        let analysis_wall_us: u64 = report
            .stage_costs
            .iter()
            .filter(|s| s.stage != "planner")
            .map(|s| s.wall_us)
            .sum();
        assert!(
            analysis_wall_us / 1000 <= report.wall_ms + 1,
            "stage wall {analysis_wall_us}us exceeds run wall {}ms",
            report.wall_ms
        );

        // The trace exports as parseable JSONL covering every span.
        let jsonl = infera_obs::trace_to_jsonl(&report.trace, &std::collections::BTreeMap::new());
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v["type"] == "span" || v["type"] == "event");
        }
        assert!(c.obs.metrics.counter("sql.queries") > 0);
    }

    #[test]
    fn full_run_metric_names_are_all_declared_constants() {
        // An error-prone profile exercises the redo/failure counters too.
        let mut p = BehaviorProfile::default();
        p.column_error_rate = [8.0; 3];
        let c = ctx("hygiene", 6, p);
        let report = run_question(
            c,
            "How many halos are there at each timestep in simulation 0? Plot the count over time.",
            SemanticLevel::Easy,
        )
        .unwrap();
        let snap = &report.metrics;
        let undeclared: Vec<&String> = snap
            .counters
            .keys()
            .chain(snap.gauges.keys())
            .chain(snap.histograms.keys())
            .filter(|name| !metric_names::is_declared(name))
            .collect();
        assert!(
            undeclared.is_empty(),
            "metric names not declared in obs::metric_names: {undeclared:?}"
        );
        // A full run executes SQL, so the cost-based planner and the
        // morsel executor must have reported their counters.
        for required in [
            metric_names::PLAN_CANDIDATES_CONSIDERED,
            metric_names::MORSEL_COUNT,
        ] {
            assert!(
                snap.counters.get(required).copied().unwrap_or(0) > 0,
                "expected counter {required} in a full run: {:?}",
                snap.counters.keys().collect::<Vec<_>>()
            );
        }
        assert!(
            snap.histograms.contains_key(metric_names::MORSEL_QUEUE_WAIT_MS),
            "morsel pool must report queue-wait time"
        );
    }

    #[test]
    fn bus_streams_live_progress_for_a_full_run() {
        let c = ctx("busrun", 7, BehaviorProfile::perfect());
        let bus = infera_obs::EventBus::new();
        c.obs
            .tracer
            .attach_bus(bus.clone(), &[("job", infera_obs::AttrValue::from(1u64))]);
        let sub = bus.subscribe(4096);
        run_question(
            c,
            "How many halos are there at each timestep in simulation 0? Plot the count over time.",
            SemanticLevel::Easy,
        )
        .unwrap();
        let events = sub.drain();
        assert!(events.len() > 10, "only {} events streamed", events.len());
        let names: Vec<String> = events
            .iter()
            .filter_map(|e| match &e.kind {
                infera_obs::BusEventKind::Point { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert!(names.iter().any(|n| n == "plan_ready"), "{names:?}");
        assert!(names.iter().any(|n| n == "run_completed"), "{names:?}");
        // Span lifecycle arrives in open/close pairs for the same ids.
        let opened = events
            .iter()
            .filter(|e| matches!(e.kind, infera_obs::BusEventKind::SpanOpened { .. }))
            .count();
        let closed = events
            .iter()
            .filter(|e| matches!(e.kind, infera_obs::BusEventKind::SpanClosed { .. }))
            .count();
        assert_eq!(opened, closed);
        assert_eq!(sub.dropped(), 0, "capacity was ample; nothing dropped");
    }

    #[test]
    fn deterministic_given_seed() {
        let q = "Can you find me the top 20 largest friends-of-friends halos from timestep 498 in simulation 0?";
        let r1 = run_question(ctx("det_a", 77, BehaviorProfile::default()), q, SemanticLevel::Easy)
            .unwrap();
        let r2 = run_question(ctx("det_b", 77, BehaviorProfile::default()), q, SemanticLevel::Easy)
            .unwrap();
        assert_eq!(r1.completed, r2.completed);
        assert_eq!(r1.redos, r2.redos);
        assert_eq!(r1.tokens, r2.tokens);
    }
}
