//! The SQL-programming agent.
//!
//! "Once the database is created, an SQL programming agent performs
//! additional filtering through generated SQL queries, evaluating whether
//! all loaded columns and rows are necessary for immediate computation."
//! (§3) The agent synthesizes `SELECT` text from its typed spec, runs it
//! against the columnar database, and materializes the working frames the
//! computation stages use. Generated SQL passes through the model's
//! corruption channel; database errors (unknown column, with suggestion)
//! drive the redo loop.

use crate::context::AgentContext;
use crate::error::{AgentError, AgentResult};
use crate::qa::{run_generation_step, GenOutcome};
use crate::state::{RunState, SqlSpec, TableSelect};
use infera_provenance::ArtifactKind;

/// Render one SELECT from its spec.
pub fn synthesize_sql(sel: &TableSelect) -> String {
    let cols = if sel.columns.is_empty() {
        "*".to_string()
    } else {
        sel.columns.join(", ")
    };
    let mut sql = format!("SELECT {cols} FROM {}", sel.table);
    if !sel.filters.is_empty() {
        let preds: Vec<String> = sel
            .filters
            .iter()
            .map(|f| format!("{} {} {}", f.column, f.op, f.value))
            .collect();
        sql.push_str(&format!(" WHERE {}", preds.join(" AND ")));
    }
    sql
}

/// Execute a SQL step (all its SELECTs) with the revision loop.
pub fn run_sql(ctx: &AgentContext, state: &mut RunState, spec: &SqlSpec) -> AgentResult<GenOutcome> {
    let mut total_redos = 0;
    let mut last_message = String::new();
    let mut all_sql: Vec<String> = Vec::new();
    for sel in &spec.selects {
        let task = format!(
            "write SQL projecting the needed columns of table '{}' into frame '{}'",
            sel.table, sel.output
        );
        let mut produced: Option<infera_frame::DataFrame> = None;
        let mut executed_sql = String::new();
        // Infrastructure failures (I/O, corrupt chunks) must abort the
        // run rather than feed the redo loop: a redo consumes RNG and
        // shifts the digest, while a scheduler-level retry replays the
        // run bit-identically. The executor closure can't abort the
        // revision loop directly, so it stashes the error here.
        let mut infra_error: Option<AgentError> = None;
        let outcome = run_generation_step(
            ctx,
            state,
            "sql",
            &task,
            &|_attempt| synthesize_sql(sel),
            &mut |sql_text| match ctx.db.query(sql_text) {
                Ok(frame) => {
                    let summary =
                        format!("{} rows x {} cols", frame.n_rows(), frame.n_cols());
                    produced = Some(frame);
                    executed_sql = sql_text.to_string();
                    Ok(summary)
                }
                Err(e) => {
                    let msg = e.to_string();
                    if let infra @ AgentError::Infra { .. } = AgentError::from(e) {
                        infra_error.get_or_insert(infra);
                    }
                    Err(msg)
                }
            },
            0.7, // SQL is a narrower generation task than freeform code
            0.92,
        );
        if let Some(infra) = infra_error {
            return Err(infra);
        }
        total_redos += outcome.redos;
        last_message = outcome.message.clone();
        if !outcome.success {
            return Ok(GenOutcome::new(total_redos, false, outcome.message));
        }
        let Some(frame) = produced else {
            return Err(AgentError::Fatal(
                "sql step reported success without producing a frame".into(),
            ));
        };
        // Provenance: the executed SQL + the materialized frame.
        let sql_art = ctx.prov.put_text(ArtifactKind::Sql, &executed_sql)?;
        let frame_art = ctx.prov.put_frame(&frame)?;
        ctx.prov.log_event(
            "sql",
            "execute_sql",
            vec![sql_art],
            vec![frame_art.clone()],
            &last_message,
            0,
            0,
        )?;
        state.data_outputs.push(frame_art);
        state.frames.insert(sel.output.clone(), frame);
        all_sql.push(executed_sql);
    }
    let mut out = GenOutcome::new(total_redos, true, last_message);
    out.artifact = all_sql.join("\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RunConfig;
    use crate::state::{Plan, SqlFilter};
    use infera_frame::{Column, DataFrame};
    use infera_hacc::EnsembleSpec;
    use infera_llm::{BehaviorProfile, SemanticLevel};
    use std::path::PathBuf;

    fn ctx(name: &str, profile: BehaviorProfile) -> AgentContext {
        let base: PathBuf = std::env::temp_dir().join("infera_sqlagent_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest = infera_hacc::generate(&EnsembleSpec::tiny(13), &base.join("ens")).unwrap();
        let ctx = AgentContext::new(
            std::sync::Arc::new(manifest),
            &base.join("session"),
            21,
            profile,
            RunConfig::default(),
        )
        .unwrap();
        let df = DataFrame::from_columns([
            ("fof_halo_tag", Column::from(vec![1i64, 2, 3])),
            ("fof_halo_mass", Column::from(vec![1e12, 5e13, 2e14])),
            ("sim", Column::from(vec![0i64, 0, 1])),
        ])
        .unwrap();
        ctx.db.create_table("halos", &df.schema()).unwrap();
        ctx.db.append("halos", &df).unwrap();
        ctx
    }

    fn spec() -> SqlSpec {
        SqlSpec {
            selects: vec![TableSelect {
                table: "halos".into(),
                columns: vec!["fof_halo_tag".into(), "fof_halo_mass".into()],
                filters: vec![SqlFilter {
                    column: "fof_halo_mass".into(),
                    op: ">".into(),
                    value: 1e13,
                }],
                output: "working".into(),
            }],
        }
    }

    #[test]
    fn synthesize_renders_filters() {
        let sql = synthesize_sql(&spec().selects[0]);
        assert_eq!(
            sql,
            "SELECT fof_halo_tag, fof_halo_mass FROM halos WHERE fof_halo_mass > 10000000000000"
        );
        let all = synthesize_sql(&TableSelect {
            table: "t".into(),
            columns: vec![],
            filters: vec![],
            output: "o".into(),
        });
        assert_eq!(all, "SELECT * FROM t");
    }

    #[test]
    fn perfect_model_executes_first_try() {
        let c = ctx("perfect", BehaviorProfile::perfect());
        let mut state = RunState::new("q", SemanticLevel::Easy, Plan::default());
        let out = run_sql(&c, &mut state, &spec()).unwrap();
        assert!(out.success);
        assert_eq!(out.redos, 0);
        let frame = &state.frames["working"];
        assert_eq!(frame.n_rows(), 2);
        // Provenance has the SQL artifact.
        assert!(c.prov.events().iter().any(|e| e.action == "execute_sql"));
    }

    #[test]
    fn corrupted_sql_recovers_through_redos() {
        // A profile that always injects exactly one error and always
        // fixes it on redo: success with >= 1 redo.
        let mut p = BehaviorProfile::perfect();
        p.column_error_rate = [50.0, 50.0, 50.0]; // Poisson(50) ~ always > 0
        p.p_redo_fixes = 1.0;
        let c = ctx("recovers", p);
        let mut state = RunState::new("q", SemanticLevel::Easy, Plan::default());
        let out = run_sql(&c, &mut state, &spec()).unwrap();
        // Poisson(50) injects ~50 errors; only ~2 distinct columns exist
        // in the text, so corruption collapses to <= 2 distinct targets,
        // and each redo fixes one.
        assert!(out.redos >= 1, "{out:?}");
        assert!(out.success, "{out:?}");
    }

    #[test]
    fn storage_corruption_aborts_instead_of_redoing() {
        let c = ctx("corrupt_abort", BehaviorProfile::perfect());
        // Flip a byte in every column file of the halos table: the next
        // read fails checksum verification with a quarantine error.
        let root = c.db.root().to_path_buf();
        let mut flipped = 0;
        for entry in std::fs::read_dir(root.join("halos")).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "bin") {
                let mut raw = std::fs::read(&path).unwrap();
                if raw.is_empty() {
                    continue;
                }
                let mid = raw.len() / 2;
                raw[mid] ^= 0xFF;
                std::fs::write(&path, &raw).unwrap();
                flipped += 1;
            }
        }
        assert!(flipped > 0, "no column files found to corrupt");
        let mut state = RunState::new("q", SemanticLevel::Easy, Plan::default());
        // The redo loop must NOT absorb the corruption (that would burn
        // revisions on an unfixable failure); the run aborts typed.
        match run_sql(&c, &mut state, &spec()) {
            Err(AgentError::Infra { transient: false, message }) => {
                assert!(message.contains("corrupt chunk"), "{message}");
            }
            other => panic!("expected permanent infra abort, got {other:?}"),
        }
    }

    #[test]
    fn unfixable_errors_exhaust_budget() {
        let mut p = BehaviorProfile::perfect();
        p.column_error_rate = [10.0, 10.0, 10.0];
        p.p_redo_fixes = 0.0; // never fixes
        let c = ctx("exhausts", p);
        let mut state = RunState::new("q", SemanticLevel::Easy, Plan::default());
        let out = run_sql(&c, &mut state, &spec()).unwrap();
        assert!(!out.success);
        assert_eq!(out.redos, c.config.max_revisions);
        assert!(!state.frames.contains_key("working"));
    }
}
