//! The data-loading agent.
//!
//! "The data-loading agent assesses the entire ensemble context ... and
//! determines which files and columns are necessary to load for all
//! downstream tasks. This filtering reduces the required data from
//! multiple terabytes to a few gigabytes at most. Selected data is
//! written to a DuckDB database, avoiding in-memory storage." (§3)
//!
//! Here: for each (sim, step) in scope it opens the entity's GenericIO
//! file, reads *only the selected columns*, annotates the batch with
//! `sim`/`step`, and appends it to a columnar-database table. The agent
//! also reports its data-reduction ratio (selective bytes vs total
//! ensemble bytes) — the quantity behind the paper's headline
//! 0.35%-of-dataset storage overhead.

use crate::context::AgentContext;
use crate::error::{AgentError, AgentResult};
use crate::shared_cache::{CachedBatch, LoadKey};
use crate::state::{LoadSpec, RunState};
use infera_frame::{Column, DataFrame};
use infera_hacc::{EntityKind, GenioReader};
use infera_obs::metric_names;
use infera_provenance::ArtifactKind;
use std::sync::Arc;

/// Result of the load stage.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStats {
    /// Bytes actually read from the ensemble (selected columns only).
    pub bytes_read: u64,
    /// Total bytes of the files touched (all columns).
    pub bytes_touched_files: u64,
    /// Rows landed in the database.
    pub rows_loaded: u64,
    /// Bytes the landed rows occupy on disk (post-compression).
    pub bytes_on_disk: u64,
    /// Bytes the same rows would occupy in the raw chunk layout;
    /// `bytes_on_disk / bytes_logical` is the realized compression ratio.
    pub bytes_logical: u64,
}

/// Columns the agent will load for one table: the plan's required columns
/// plus RAG-retrieved context columns of the same entity, capped so the
/// reduction property holds.
pub fn select_columns(
    ctx: &AgentContext,
    state: &RunState,
    entity: EntityKind,
    required: &[String],
) -> Vec<String> {
    const MAX_COLUMNS: usize = 12;
    let mut cols: Vec<String> = required.to_vec();
    // Most-relevant columns first (pure cosine ranking), then the broader
    // MMR union for diversity — the cap keeps the reduction property.
    let mut candidates = ctx.retriever.top_hits(&state.question, 12);
    candidates.extend(
        ctx.retriever
            .retrieve_for_task(
                &state.question,
                &format!("select {} columns to load", entity.label()),
                &state.plan.to_text(),
            )
            .into_iter()
            .map(|doc| infera_rag::Hit { doc, score: 0.0 }),
    );
    for hit in candidates {
        if cols.len() >= MAX_COLUMNS {
            break;
        }
        let doc = hit.doc;
        if doc.entity == entity.label()
            && entity.column_names().contains(&doc.key.as_str())
            && !cols.contains(&doc.key)
        {
            cols.push(doc.key);
        }
    }
    cols
}

/// Execute a load step: read selective columns from every in-scope file
/// into database tables (+ the params table when requested) and register
/// the tables as working frames via the catalog (the SQL stage
/// materializes them).
pub fn run_load(ctx: &AgentContext, state: &mut RunState, spec: &LoadSpec) -> AgentResult<LoadStats> {
    let mut stats = LoadStats {
        bytes_read: 0,
        bytes_touched_files: 0,
        rows_loaded: 0,
        bytes_on_disk: 0,
        bytes_logical: 0,
    };
    let multi_step = spec.steps.len() > 1;

    for tspec in &spec.tables {
        let entity = tspec.entity_kind();
        let columns = select_columns(ctx, state, entity, &tspec.columns);
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();

        // Charge the column-selection reasoning call, with the retrieved
        // metadata documents the selection is grounded in.
        let retrieved = ctx.retriever.retrieve_for_task(
            &state.question,
            &format!("select {} columns to load", entity.label()),
            &state.plan.to_text(),
        );
        let prompt = ctx.build_prompt(
            "data_loading",
            state,
            &format!(
                "determine the files and columns of '{}' needed for the plan",
                entity.label()
            ),
            &retrieved,
        );
        ctx.llm
            .charge("data_loading", &prompt, &format!("columns: {columns:?}"));

        // Parallel selective reads across every in-scope file (the
        // paper's "parallelized workflow execution" future work applied
        // to the I/O-bound stage), followed by ordered appends so table
        // chunk layout stays deterministic.
        use rayon::prelude::*;
        let files: Vec<(u32, u32)> = spec
            .sims
            .iter()
            .flat_map(|&sim| spec.steps.iter().map(move |&step| (sim, step)))
            .collect();
        let batches: Vec<(u64, u64, Arc<DataFrame>)> = files
            .par_iter()
            .map(|&(sim, step)| -> AgentResult<(u64, u64, Arc<DataFrame>)> {
                // Shared-cache fast path: under the serving layer many
                // concurrent runs load the same selections; the cache
                // carries the byte accounting alongside the decoded
                // frame, so hits report identically to cold reads.
                let key = LoadKey {
                    sim,
                    step,
                    entity: entity.label().to_string(),
                    columns: columns.clone(),
                };
                if let Some(cache) = &ctx.shared_cache {
                    // A forced miss falls through to the cold-read path,
                    // which must produce identical frames — the recovery
                    // IS the reload, so count it immediately.
                    if infera_faults::check(infera_faults::sites::CACHE_SHARED).is_some() {
                        ctx.obs.metrics.inc(metric_names::FAULT_RECOVERED, 1);
                    } else if let Some(hit) = cache.get(&key) {
                        ctx.obs.metrics.inc(metric_names::LOAD_SHARED_CACHE_HITS, 1);
                        return Ok((hit.bytes_read, hit.file_bytes, hit.frame));
                    }
                }
                let path = ctx.manifest.file_path(sim, step, entity)?;
                let file_bytes = ctx
                    .manifest
                    .files
                    .iter()
                    .find(|f| f.sim == sim && f.step == step && f.kind == entity.label())
                    .map_or(0, |f| f.n_bytes);
                let mut reader = GenioReader::open(&path)?;
                // Selective-read byte accounting.
                let widths: u64 = reader
                    .header()
                    .schema
                    .iter()
                    .filter(|(n, _)| columns.contains(n))
                    .map(|(_, d)| d.width() as u64)
                    .sum();
                let bytes_read = widths * reader.header().n_rows();

                let mut batch = reader.read_columns(&col_refs)?;
                let n = batch.n_rows();
                batch
                    .add_column("sim".into(), Column::I64(vec![i64::from(sim); n]))
                    .map_err(AgentError::from)?;
                batch
                    .add_column("step".into(), Column::I64(vec![i64::from(step); n]))
                    .map_err(AgentError::from)?;
                let batch = Arc::new(batch);
                if let Some(cache) = &ctx.shared_cache {
                    cache.insert(
                        key,
                        CachedBatch {
                            frame: batch.clone(),
                            bytes_read,
                            file_bytes,
                        },
                    );
                }
                Ok((bytes_read, file_bytes, batch))
            })
            .collect::<AgentResult<_>>()?;

        let mut table_created = false;
        for (bytes_read, file_bytes, batch) in batches {
            stats.bytes_read += bytes_read;
            stats.bytes_touched_files += file_bytes;
            if !table_created {
                ctx.db.create_table(&tspec.output, &batch.schema())?;
                table_created = true;
            }
            ctx.db.append(&tspec.output, &batch)?;
            stats.rows_loaded += batch.n_rows() as u64;
        }
        let _ = multi_step;
    }

    if spec.include_params {
        let params = params_frame(ctx, &spec.sims)?;
        ctx.db.create_table("params", &params.schema())?;
        ctx.db.append("params", &params)?;
        state.frames.insert("params".to_string(), params);
    }

    // Byte accounting of what actually landed: encoded chunks on disk vs
    // the raw layout they replace.
    stats.bytes_on_disk = ctx.db.total_bytes();
    stats.bytes_logical = ctx.db.total_logical_bytes();

    // Provenance: record the load with its reduction and compression
    // ratios.
    let total = ctx.manifest.total_bytes().max(1);
    let note = format!(
        "loaded {} rows; selective read {} B of {} B touched ({} B ensemble, reduction to {:.4}%); stored {} B on disk for {} B logical ({:.2}x compression)",
        stats.rows_loaded,
        stats.bytes_read,
        stats.bytes_touched_files,
        total,
        100.0 * stats.bytes_read as f64 / total as f64,
        stats.bytes_on_disk,
        stats.bytes_logical,
        stats.bytes_logical as f64 / stats.bytes_on_disk.max(1) as f64,
    );
    let spec_json = serde_json::to_string(&spec)
        .map_err(|e| AgentError::Fatal(format!("load spec serialization: {e}")))?;
    let manifest_art = ctx.prov.put_text(ArtifactKind::Json, &spec_json)?;
    ctx.prov
        .log_event("data_loading", "load_selective", vec![manifest_art], vec![], &note, 0, 0)?;
    Ok(stats)
}

/// The per-sim sub-grid parameter table. Sim indices come from the plan
/// (ultimately the user's question), so an out-of-range index is a
/// recoverable agent error, not a panic.
pub fn params_frame(ctx: &AgentContext, sims: &[u32]) -> AgentResult<DataFrame> {
    let mut sim_col = Vec::new();
    let (mut f_sn, mut log_v_sn, mut log_t_agn, mut beta_bh, mut m_seed) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for &s in sims {
        let p = *ctx.manifest.params.get(s as usize).ok_or_else(|| {
            AgentError::Recoverable(format!(
                "simulation {s} does not exist (ensemble has {})",
                ctx.manifest.params.len()
            ))
        })?;
        sim_col.push(i64::from(s));
        f_sn.push(p.f_sn);
        log_v_sn.push(p.log_v_sn);
        log_t_agn.push(p.log_t_agn);
        beta_bh.push(p.beta_bh);
        m_seed.push(p.m_seed);
    }
    DataFrame::from_columns([
        ("sim", Column::I64(sim_col)),
        ("f_sn", Column::F64(f_sn)),
        ("log_v_sn", Column::F64(log_v_sn)),
        ("log_t_agn", Column::F64(log_t_agn)),
        ("beta_bh", Column::F64(beta_bh)),
        ("m_seed", Column::F64(m_seed)),
    ])
    .map_err(|e| AgentError::Fatal(format!("params frame construction: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RunConfig;
    use crate::state::{Plan, TableLoad};
    use infera_hacc::EnsembleSpec;
    use infera_llm::{BehaviorProfile, SemanticLevel};
    use std::path::PathBuf;

    fn ctx(name: &str) -> AgentContext {
        let base: PathBuf = std::env::temp_dir().join("infera_load_tests").join(name);
        std::fs::remove_dir_all(&base).ok();
        let manifest = infera_hacc::generate(&EnsembleSpec::tiny(11), &base.join("ens")).unwrap();
        AgentContext::new(
            Arc::new(manifest),
            &base.join("session"),
            7,
            BehaviorProfile::perfect(),
            RunConfig::default(),
        )
        .unwrap()
    }

    fn spec(ctx: &AgentContext) -> LoadSpec {
        LoadSpec {
            sims: vec![0, 1],
            steps: ctx.manifest.steps.clone(),
            tables: vec![TableLoad {
                entity: "halos".into(),
                columns: vec!["fof_halo_tag".into(), "fof_halo_mass".into()],
                output: "halos".into(),
            }],
            include_params: true,
        }
    }

    #[test]
    fn load_lands_rows_in_database() {
        let c = ctx("lands");
        let mut state = RunState::new("q", SemanticLevel::Easy, Plan::default());
        let stats = run_load(&c, &mut state, &spec(&c)).unwrap();
        assert!(stats.rows_loaded > 0);
        assert_eq!(c.db.n_rows("halos").unwrap(), stats.rows_loaded);
        // Compression accounting: something landed on disk, and the
        // encoded form never exceeds the raw layout.
        assert!(stats.bytes_on_disk > 0);
        assert!(stats.bytes_on_disk <= stats.bytes_logical);
        // sim/step annotation columns exist.
        let schema = c.db.table_schema("halos").unwrap();
        let names: Vec<&str> = schema.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"sim"));
        assert!(names.contains(&"step"));
        // Params table for both sims.
        assert_eq!(c.db.n_rows("params").unwrap(), 2);
        assert!(state.frames.contains_key("params"));
    }

    #[test]
    fn selective_read_is_a_small_fraction() {
        let c = ctx("fraction");
        let mut state = RunState::new(
            "average halo mass per step",
            SemanticLevel::Easy,
            Plan::default(),
        );
        let stats = run_load(&c, &mut state, &spec(&c)).unwrap();
        let total = c.manifest.total_bytes();
        // Loading a few halo columns must touch far less than the full
        // ensemble (particles dominate).
        assert!(
            (stats.bytes_read as f64) < 0.25 * total as f64,
            "read {} of {}",
            stats.bytes_read,
            total
        );
        assert!(stats.bytes_read > 0);
    }

    #[test]
    fn rag_augments_but_caps_columns() {
        let c = ctx("caps");
        let state = RunState::new(
            "what is the gas mass fraction of massive halos",
            SemanticLevel::Medium,
            Plan::default(),
        );
        let cols = select_columns(
            &c,
            &state,
            EntityKind::Halos,
            &["fof_halo_tag".to_string()],
        );
        assert!(cols.len() > 1, "retrieval adds context columns");
        assert!(cols.len() <= 12);
        assert!(cols.iter().all(|col| {
            EntityKind::Halos.column_names().contains(&col.as_str())
        }));
        // Gas-related wording pulls the gas column in.
        assert!(
            cols.iter().any(|col| col.contains("Gas")),
            "{cols:?}"
        );
    }

    #[test]
    fn load_charges_tokens_and_logs_provenance() {
        let c = ctx("tokens");
        let mut state = RunState::new("q", SemanticLevel::Easy, Plan::default());
        run_load(&c, &mut state, &spec(&c)).unwrap();
        assert!(c.llm.meter().total_tokens() > 0);
        let events = c.prov.events();
        assert!(events.iter().any(|e| e.action == "load_selective"));
    }

    #[test]
    fn params_frame_matches_manifest() {
        let c = ctx("params");
        let p = params_frame(&c, &[1]).unwrap();
        assert_eq!(p.n_rows(), 1);
        assert!(params_frame(&c, &[999]).is_err(), "out-of-range sim is an error");
        let expected = c.manifest.params[1];
        assert_eq!(
            p.cell("f_sn", 0).unwrap().as_f64().unwrap(),
            expected.f_sn
        );
    }
}
