//! # infera-agents
//!
//! The multi-agent layer of InferA: a typed state-graph runtime
//! (LangGraph substitute, [`graph`]) plus the paper's agents —
//! planning ([`intent`], [`planner`]), supervisor-routed analysis
//! ([`workflow`]), data loading ([`data_loading`]), SQL programming
//! ([`sql_agent`]), Python programming ([`python_agent`]),
//! visualization ([`viz_agent`]), quality assurance with the 5-revision
//! error-guided loop ([`qa`]) and documentation ([`documentation`]).
//!
//! All language-model behaviour flows through the seeded
//! [`infera_llm::SimulatedLlm`]: agents synthesize their artifacts from
//! typed templates and pass them through the model's corruption channel,
//! reproducing the paper's failure dynamics (column-name errors, wrong
//! tool selection, unsatisfactory analysis/visualization choices).

pub mod context;
pub mod data_loading;
pub mod documentation;
pub mod error;
pub mod graph;
pub mod intent;
pub mod planner;
pub mod prompts;
pub mod python_agent;
pub mod qa;
pub mod shared_cache;
pub mod sql_agent;
pub mod state;
pub mod viz_agent;
pub mod workflow;

pub use context::{AgentContext, CancelToken, ContextPolicy, QaMode, RunConfig};
pub use error::{AgentError, AgentResult, CancelKind};
pub use shared_cache::{CachedBatch, LoadKey, SharedEnsembleCache};
pub use graph::{NodeOutcome, StateGraph, END};
pub use intent::{parse_intent, Goal, Intent, TrendDim};
pub use planner::{compile_plan, plan_question};
pub use state::{
    ComputeKind, LoadSpec, Plan, PlanStep, QualityFlags, RunState, SqlFilter, SqlSpec,
    StepOutcome, TableLoad, TableSelect, VizKind,
};
pub use workflow::{build_workflow, run_question, run_question_with_plan, RunReport};
